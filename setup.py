"""Setup shim for editable installs on environments without the `wheel`
package (offline): keeps ``pip install -e .`` on the legacy setuptools
path, which needs no wheel building."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "NetScatter (NSDI 2019) reproduction: distributed CSS coding "
        "for large-scale backscatter networks"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
