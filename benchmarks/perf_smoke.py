"""Perf smoke: time the bin-domain fast paths, append BENCH_fastpath.json.

Runs reduced versions of the hot sweeps several ways and records
wall-clock:

* Fig. 12: ``per_round_fft`` (the seed implementation's cost profile:
  one round at a time, full zero-padded FFT readout, time-domain AWGN)
  vs ``batched_sparse`` (the PR-1 engine);
* Fig. 15b: the batched sparse path;
* Fig. 17 network sweep: ``time_engine`` (compose_rounds waveform
  tensors + time-domain AWGN + sparse readout) vs ``analytic`` (the
  waveform-free Dirichlet-kernel engine) vs ``analytic_float32``
  (complex64 operators for the largest points);
* the Fig. 17/18/19 figure drivers end to end, and the vectorised
  Section 2.2 Monte-Carlo block.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py

``BENCH_fastpath.json`` is *append-only*: each invocation adds one run
entry under ``runs``, so the perf trajectory accumulates across PRs
instead of being overwritten (a legacy single-run v1 file is imported
as the first entry). Numbers are machine-dependent; ratios within one
run are the signal.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_round_matrix
from repro.core.receiver import NetScatterReceiver
from repro.experiments import (
    fig12_nearfar_ber,
    fig15_doppler_dr,
    fig17_phy_rate,
    fig18_linklayer,
    fig19_latency,
    sec22_analytics,
)
from repro.protocol.network import sweep_device_counts

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fastpath.json"

FIG12_SNRS = (-20, -16, -12)
FIG12_SYMBOLS = 2000
FIG15_SEPARATIONS = (2, 16, 256)
FIG15_SYMBOLS = 400
FRAME_PAYLOAD = 40
N_PREAMBLE = 6

FIG17_COUNTS = (1, 16, 32, 64, 96, 128, 160, 192, 224, 256)
FIG17_ROUNDS = 3


def _legacy_ber_point(config, snr_db, power_delta_db, n_symbols, rng):
    """Seed-style Fig. 12 point: per-round loop, FFT readout, AWGN."""
    params = config.chirp_params
    assignments = {0: fig12_nearfar_ber.WEAK_SHIFT}
    if power_delta_db is not None:
        assignments[1] = fig12_nearfar_ber.STRONG_SHIFT
    receiver = NetScatterReceiver(
        config, assignments, detection_snr_db=-100.0, readout="fft"
    )
    n_devices = len(assignments)
    cfo_to_bins = params.n_samples / params.bandwidth_hz
    errors, total = 0, 0
    while total < n_symbols:
        bits = rng.integers(0, 2, size=(FRAME_PAYLOAD, n_devices))
        bit_matrix = np.ones((N_PREAMBLE + FRAME_PAYLOAD, n_devices))
        bit_matrix[N_PREAMBLE:] = bits
        cfos_hz = rng.normal(scale=300.0, size=n_devices)
        bins = (
            np.array([2, 258][:n_devices], dtype=float)
            + cfos_hz * cfo_to_bins
        )
        amplitudes = np.ones(n_devices)
        if power_delta_db is not None:
            amplitudes[1] = 10.0 ** (power_delta_db / 20.0)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        symbols = compose_round_matrix(
            params, bins, amplitudes, phases, bit_matrix
        )
        decode = receiver.decode_round_matrix(
            awgn(symbols, snr_db, rng), n_preamble_upchirps=N_PREAMBLE
        )
        got = decode.devices[0].bits
        errors += sum(1 for s, g in zip(bits[:, 0].tolist(), got) if s != g)
        total += FRAME_PAYLOAD
    return errors / total


def _time_fig12_legacy() -> dict:
    config = NetScatterConfig()
    rng = np.random.default_rng(12)
    start = time.perf_counter()
    for snr in FIG12_SNRS:
        for delta in (None, 35.0, 45.0):
            _legacy_ber_point(config, float(snr), delta, FIG12_SYMBOLS, rng)
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig12_batched() -> dict:
    start = time.perf_counter()
    fig12_nearfar_ber.run(
        snrs_db=FIG12_SNRS,
        power_deltas_db=(None, 35.0, 45.0),
        n_symbols=FIG12_SYMBOLS,
        rng=12,
    )
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig15_batched() -> dict:
    start = time.perf_counter()
    result = fig15_doppler_dr.run_dynamic_range(
        separations_bins=FIG15_SEPARATIONS,
        n_symbols=FIG15_SYMBOLS,
        rng=16,
    )
    elapsed = time.perf_counter() - start
    # One baseline point plus however many deltas each separation needed.
    n_points = 1 + sum(1 for _ in result.rows)
    return {
        "wall_clock_s": round(elapsed, 3),
        "sweep_points_lower_bound": n_points,
        "symbols_per_point": FIG15_SYMBOLS,
    }


def _time_fig17_sweep(engine: str, float32_min_devices=None) -> dict:
    deployment = paper_deployment(n_devices=256, rng=2026)
    config = NetScatterConfig(n_association_shifts=0)
    start = time.perf_counter()
    metrics = sweep_device_counts(
        deployment,
        FIG17_COUNTS,
        config=config,
        n_rounds=FIG17_ROUNDS,
        rng=17,
        engine=engine,
        float32_min_devices=float32_min_devices,
    )
    elapsed = time.perf_counter() - start
    return {
        "wall_clock_s": round(elapsed, 3),
        "sweep_points": len(FIG17_COUNTS),
        "n_rounds": FIG17_ROUNDS,
        "phy_rate_kbps_at_256": round(metrics[-1].phy_rate_bps / 1e3, 1),
    }


def _time_callable(fn, **kwargs) -> dict:
    start = time.perf_counter()
    fn(**kwargs)
    return {"wall_clock_s": round(time.perf_counter() - start, 3)}


def _load_previous_runs() -> list:
    """Existing run history; a legacy v1 file becomes the first entry.

    The file is append-only across PRs, so never silently drop what is
    there: unparsable JSON aborts with instructions instead of letting
    the subsequent write clobber the trajectory, and an unrecognised
    schema is preserved verbatim as an opaque entry.
    """
    if not OUTPUT.exists():
        return []
    try:
        data = json.loads(OUTPUT.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"{OUTPUT} exists but is not valid JSON ({error}); fix or "
            "move it aside before benchmarking — refusing to overwrite "
            "the accumulated perf history"
        )
    if not isinstance(data, dict):
        return [
            {"note": "unrecognised schema, preserved as-is", "data": data}
        ]
    if data.get("schema") == "bench-fastpath-v2":
        return list(data.get("runs", []))
    if data.get("schema") == "bench-fastpath-v1":
        legacy = {
            key: data[key]
            for key in ("host", "fig12", "fig15b")
            if key in data
        }
        legacy["note"] = "imported from single-run bench-fastpath-v1"
        return [legacy]
    return [{"note": "unrecognised schema, preserved as-is", "data": data}]


def main() -> dict:
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fig12": {
            "per_round_fft": _time_fig12_legacy(),
            "batched_sparse": _time_fig12_batched(),
        },
        "fig15b": {
            "batched_sparse": _time_fig15_batched(),
        },
        "fig17_sweep": {
            "time_engine": _time_fig17_sweep("time"),
            "analytic": _time_fig17_sweep("analytic"),
            "analytic_float32": _time_fig17_sweep(
                "analytic", float32_min_devices=160
            ),
        },
        "figure_drivers": {
            "fig17": _time_callable(fig17_phy_rate.run, rng=17),
            "fig18": _time_callable(fig18_linklayer.run, rng=18),
            "fig19": _time_callable(fig19_latency.run, rng=19),
            "sec22": _time_callable(sec22_analytics.run, rng=22),
        },
    }
    fig12 = run["fig12"]
    fig12["speedup"] = round(
        fig12["per_round_fft"]["wall_clock_s"]
        / fig12["batched_sparse"]["wall_clock_s"],
        2,
    )
    fig17 = run["fig17_sweep"]
    fig17["speedup_analytic"] = round(
        fig17["time_engine"]["wall_clock_s"]
        / fig17["analytic"]["wall_clock_s"],
        2,
    )
    fig17["speedup_analytic_float32"] = round(
        fig17["time_engine"]["wall_clock_s"]
        / fig17["analytic_float32"]["wall_clock_s"],
        2,
    )
    runs = _load_previous_runs()
    runs.append(run)
    report = {"schema": "bench-fastpath-v2", "runs": runs}
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(run, indent=2))
    print(f"\nappended run {len(runs)} to {OUTPUT}")
    return report


if __name__ == "__main__":
    main()
