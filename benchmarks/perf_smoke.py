"""Perf smoke: time the bin-domain fast path, write BENCH_fastpath.json.

Runs reduced Fig. 12 / Fig. 15b sweeps two ways and records wall-clock
plus payload symbols decoded per second:

* ``per_round_fft`` — the pre-engine shape of the hot loop: one round at
  a time, full zero-padded FFT readout, time-domain AWGN per round (the
  seed implementation's cost profile);
* ``batched_sparse`` — the current production path: whole sweep point
  batched, sparse readout, readout-domain noise.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py

The JSON lands next to this file's repo root as ``BENCH_fastpath.json``
so future PRs have a perf trajectory to compare against. Numbers are
machine-dependent; the ratio is the signal.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.channel.awgn import awgn
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_round_matrix
from repro.core.receiver import NetScatterReceiver
from repro.experiments import fig12_nearfar_ber, fig15_doppler_dr

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fastpath.json"

FIG12_SNRS = (-20, -16, -12)
FIG12_SYMBOLS = 2000
FIG15_SEPARATIONS = (2, 16, 256)
FIG15_SYMBOLS = 400
FRAME_PAYLOAD = 40
N_PREAMBLE = 6


def _legacy_ber_point(config, snr_db, power_delta_db, n_symbols, rng):
    """Seed-style Fig. 12 point: per-round loop, FFT readout, AWGN."""
    params = config.chirp_params
    assignments = {0: fig12_nearfar_ber.WEAK_SHIFT}
    if power_delta_db is not None:
        assignments[1] = fig12_nearfar_ber.STRONG_SHIFT
    receiver = NetScatterReceiver(
        config, assignments, detection_snr_db=-100.0, readout="fft"
    )
    n_devices = len(assignments)
    cfo_to_bins = params.n_samples / params.bandwidth_hz
    errors, total = 0, 0
    while total < n_symbols:
        bits = rng.integers(0, 2, size=(FRAME_PAYLOAD, n_devices))
        bit_matrix = np.ones((N_PREAMBLE + FRAME_PAYLOAD, n_devices))
        bit_matrix[N_PREAMBLE:] = bits
        cfos_hz = rng.normal(scale=300.0, size=n_devices)
        bins = (
            np.array([2, 258][:n_devices], dtype=float)
            + cfos_hz * cfo_to_bins
        )
        amplitudes = np.ones(n_devices)
        if power_delta_db is not None:
            amplitudes[1] = 10.0 ** (power_delta_db / 20.0)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        symbols = compose_round_matrix(
            params, bins, amplitudes, phases, bit_matrix
        )
        decode = receiver.decode_round_matrix(
            awgn(symbols, snr_db, rng), n_preamble_upchirps=N_PREAMBLE
        )
        got = decode.devices[0].bits
        errors += sum(1 for s, g in zip(bits[:, 0].tolist(), got) if s != g)
        total += FRAME_PAYLOAD
    return errors / total


def _time_fig12_legacy() -> dict:
    config = NetScatterConfig()
    rng = np.random.default_rng(12)
    start = time.perf_counter()
    for snr in FIG12_SNRS:
        for delta in (None, 35.0, 45.0):
            _legacy_ber_point(config, float(snr), delta, FIG12_SYMBOLS, rng)
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig12_batched() -> dict:
    start = time.perf_counter()
    fig12_nearfar_ber.run(
        snrs_db=FIG12_SNRS,
        power_deltas_db=(None, 35.0, 45.0),
        n_symbols=FIG12_SYMBOLS,
        rng=12,
    )
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig15_batched() -> dict:
    start = time.perf_counter()
    result = fig15_doppler_dr.run_dynamic_range(
        separations_bins=FIG15_SEPARATIONS,
        n_symbols=FIG15_SYMBOLS,
        rng=16,
    )
    elapsed = time.perf_counter() - start
    # One baseline point plus however many deltas each separation needed.
    n_points = 1 + sum(1 for _ in result.rows)
    return {
        "wall_clock_s": round(elapsed, 3),
        "sweep_points_lower_bound": n_points,
        "symbols_per_point": FIG15_SYMBOLS,
    }


def main() -> dict:
    report = {
        "schema": "bench-fastpath-v1",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fig12": {
            "per_round_fft": _time_fig12_legacy(),
            "batched_sparse": _time_fig12_batched(),
        },
        "fig15b": {
            "batched_sparse": _time_fig15_batched(),
        },
    }
    fig12 = report["fig12"]
    fig12["speedup"] = round(
        fig12["per_round_fft"]["wall_clock_s"]
        / fig12["batched_sparse"]["wall_clock_s"],
        2,
    )
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")
    return report


if __name__ == "__main__":
    main()
