"""Perf smoke: time the bin-domain fast paths, append BENCH_fastpath.json.

Runs reduced versions of the hot sweeps several ways and records
wall-clock:

* Fig. 12: ``per_round_fft`` (the seed implementation's cost profile:
  one round at a time, full zero-padded FFT readout, time-domain AWGN)
  vs ``batched_sparse`` (the PR-1 engine);
* Fig. 15b: the batched sparse path;
* Fig. 17 network sweep: ``time_engine`` (compose_rounds waveform
  tensors + time-domain AWGN + sparse readout) vs ``analytic`` (the
  waveform-free Dirichlet-kernel engine) vs ``analytic_float32``
  (complex64 operators for the largest points) vs ``auto`` (the
  occupancy-adaptive backend planner, per-point backends recorded);
* the Fig. 17 sweep's 256-device point alone, ``auto`` vs ``analytic``
  (the planner's headline crossover win at ``D = N/2``);
* fading rounds at 100 rounds x 64 devices: the batched AR(1)-track
  path vs the in-tree ``fading_mode="per_round"`` execution vs a
  seed-style reconstruction (per-round Python loop, full-FFT readout,
  time-domain AWGN, per-device Python scoring — the same baseline
  styling as ``fig12.per_round_fft``);
* the same batched fading decode under the two engine-noise streams:
  ``noise_mode="payload"`` (located ``±1``-bin payload draws, stream
  version 2) vs ``noise_mode="full"`` (every readout bin, version 1 —
  the pre-PR-4 draws, pinned bit-identical by the regression goldens);
* the campaign layer (``repro.campaign``) against a throwaway store:
  a cold Fig. 17 campaign (every point computed + checkpointed), the
  same campaign re-run warm (zero points recomputed — the validator
  gates on this), and the Fig. 18 campaign over the same store (its
  points are content-identical to Fig. 17's, so the cross-figure
  reuse is total);
* the population-scale path: flat-array office deployments at 256 /
  10^4 / 10^5 devices (10^4 max under ``--quick``), one hybrid
  fidelity schedule cycle each (closed-form bulk + seeded Monte-Carlo
  tail — the PR-10 scaling headline, see ``docs/SCALING.md``);
* the Fig. 17/18/19 figure drivers end to end (the 17/18 drivers now
  execute through the campaign runner), and the vectorised Section
  2.2 Monte-Carlo block.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py          # full
    PYTHONPATH=src python benchmarks/perf_smoke.py --quick  # sub-10 s

``--quick`` times only the occupancy-adaptive headline comparisons
(fig17 256-point + fading) at reduced sizes — the mode
``tests/test_perf_guard.py`` exercises against a temporary output file.
``--output PATH`` redirects the report (defaults to the repo's
``BENCH_fastpath.json``).

``BENCH_fastpath.json`` is *append-only*: each invocation adds one run
entry under ``runs``, so the perf trajectory accumulates across PRs
instead of being overwritten (a legacy single-run v1 file is imported
as the first entry). Numbers are machine-dependent; ratios within one
run are the signal. Every report is checked by :func:`validate_report`
before it is written (and by the tier-1 docs-consistency tests), so
the schema documented in ``docs/PERFORMANCE.md`` cannot silently
drift from what the tool emits.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.campaign import (
    CampaignRunner,
    CampaignStore,
    fig17_campaign,
    fig18_campaign,
)
from repro.channel.awgn import awgn
from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_round_matrix
from repro.core.receiver import NetScatterReceiver
from repro.experiments import (
    fig12_nearfar_ber,
    fig15_doppler_dr,
    fig17_phy_rate,
    fig18_linklayer,
    fig19_latency,
    sec22_analytics,
)
from repro.protocol.network import NetworkSimulator, sweep_device_counts

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fastpath.json"

FIG12_SNRS = (-20, -16, -12)
FIG12_SYMBOLS = 2000
FIG15_SEPARATIONS = (2, 16, 256)
FIG15_SYMBOLS = 400
FRAME_PAYLOAD = 40
N_PREAMBLE = 6

FIG17_COUNTS = (1, 16, 32, 64, 96, 128, 160, 192, 224, 256)
FIG17_ROUNDS = 3

FADING_ROUNDS = 100
FADING_DEVICES = 64


def _legacy_ber_point(config, snr_db, power_delta_db, n_symbols, rng):
    """Seed-style Fig. 12 point: per-round loop, FFT readout, AWGN."""
    params = config.chirp_params
    assignments = {0: fig12_nearfar_ber.WEAK_SHIFT}
    if power_delta_db is not None:
        assignments[1] = fig12_nearfar_ber.STRONG_SHIFT
    receiver = NetScatterReceiver(
        config, assignments, detection_snr_db=-100.0, readout="fft"
    )
    n_devices = len(assignments)
    cfo_to_bins = params.n_samples / params.bandwidth_hz
    errors, total = 0, 0
    while total < n_symbols:
        bits = rng.integers(0, 2, size=(FRAME_PAYLOAD, n_devices))
        bit_matrix = np.ones((N_PREAMBLE + FRAME_PAYLOAD, n_devices))
        bit_matrix[N_PREAMBLE:] = bits
        cfos_hz = rng.normal(scale=300.0, size=n_devices)
        bins = (
            np.array([2, 258][:n_devices], dtype=float)
            + cfos_hz * cfo_to_bins
        )
        amplitudes = np.ones(n_devices)
        if power_delta_db is not None:
            amplitudes[1] = 10.0 ** (power_delta_db / 20.0)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        symbols = compose_round_matrix(
            params, bins, amplitudes, phases, bit_matrix
        )
        decode = receiver.decode_round_matrix(
            awgn(symbols, snr_db, rng), n_preamble_upchirps=N_PREAMBLE
        )
        got = decode.devices[0].bits
        errors += sum(1 for s, g in zip(bits[:, 0].tolist(), got) if s != g)
        total += FRAME_PAYLOAD
    return errors / total


def _time_fig12_legacy() -> dict:
    config = NetScatterConfig()
    rng = np.random.default_rng(12)
    start = time.perf_counter()
    for snr in FIG12_SNRS:
        for delta in (None, 35.0, 45.0):
            _legacy_ber_point(config, float(snr), delta, FIG12_SYMBOLS, rng)
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig12_batched() -> dict:
    start = time.perf_counter()
    fig12_nearfar_ber.run(
        snrs_db=FIG12_SNRS,
        power_deltas_db=(None, 35.0, 45.0),
        n_symbols=FIG12_SYMBOLS,
        rng=12,
    )
    elapsed = time.perf_counter() - start
    n_symbols = len(FIG12_SNRS) * 3 * FIG12_SYMBOLS
    return {
        "wall_clock_s": round(elapsed, 3),
        "symbols_decoded": n_symbols,
        "symbols_per_s": round(n_symbols / elapsed, 1),
    }


def _time_fig15_batched() -> dict:
    start = time.perf_counter()
    result = fig15_doppler_dr.run_dynamic_range(
        separations_bins=FIG15_SEPARATIONS,
        n_symbols=FIG15_SYMBOLS,
        rng=16,
    )
    elapsed = time.perf_counter() - start
    # One baseline point plus however many deltas each separation needed.
    n_points = 1 + sum(1 for _ in result.rows)
    return {
        "wall_clock_s": round(elapsed, 3),
        "sweep_points_lower_bound": n_points,
        "symbols_per_point": FIG15_SYMBOLS,
    }


def _time_fig17_sweep(
    engine: str, float32_min_devices=None, counts=FIG17_COUNTS
) -> dict:
    deployment = paper_deployment(n_devices=max(counts), rng=2026)
    config = NetScatterConfig(n_association_shifts=0)
    start = time.perf_counter()
    metrics = sweep_device_counts(
        deployment,
        counts,
        config=config,
        n_rounds=FIG17_ROUNDS,
        rng=17,
        engine=engine,
        float32_min_devices=float32_min_devices,
    )
    elapsed = time.perf_counter() - start
    return {
        "wall_clock_s": round(elapsed, 3),
        "sweep_points": len(counts),
        "n_rounds": FIG17_ROUNDS,
        "phy_rate_kbps_at_max": round(metrics[-1].phy_rate_bps / 1e3, 1),
        # The spectral backend each point actually decoded with — makes
        # the adaptive engine's crossover visible in the record.
        "backends": [m.backend for m in metrics],
    }


def _time_fig17_point256(engine: str, n_devices: int = 256) -> dict:
    """The sweep's largest point alone (the D = N/2 crossover regime)."""
    deployment = paper_deployment(n_devices=n_devices, rng=2026)
    config = NetScatterConfig(n_association_shifts=0)
    best, metrics = float("inf"), None
    for _ in range(3):
        start = time.perf_counter()
        metrics = sweep_device_counts(
            deployment,
            (n_devices,),
            config=config,
            n_rounds=FIG17_ROUNDS,
            rng=17,
            engine=engine,
        )
        best = min(best, time.perf_counter() - start)
    return {
        "wall_clock_s": round(best, 4),
        "n_devices": n_devices,
        "n_rounds": FIG17_ROUNDS,
        "backend": metrics[0].backend,
    }


def _seed_style_fading_rounds(sim, legacy_receiver, n_rounds: int):
    """Seed-style fading loop: the pre-batching implementation's profile.

    Per round: per-device Python draws (fading step, MCU latency,
    oscillator CFO), one waveform composition, time-domain AWGN over
    the frame, a full-FFT single-round decode, and per-device Python
    bit scoring — the same baseline styling as :func:`_legacy_ber_point`
    reconstructs for Fig. 12.
    """
    params = sim._params
    n_devices = sim._deployment.n_devices
    n_pre = sim._structure.n_preamble_upchirps
    total_correct = total_sent = delivered = 0
    for _ in range(n_rounds):
        effective = sim.effective_snrs_db()
        effective = [
            e + dev.step_channel(0.06, sim._rng) - dev.uplink_snr_db
            for e, dev in zip(effective, sim._deployment.devices)
        ]
        floor = min(effective)
        rel = np.asarray(effective) - floor
        delays = np.array(
            [sim._timing.sample_latency_s(sim._rng) for _ in range(n_devices)]
        )
        delays -= delays.mean()
        cfos = np.array([o.offset_hz(sim._rng) for o in sim._oscillators])
        bins = (
            np.array(
                [sim._assignments[i] for i in range(n_devices)], dtype=float
            )
            - delays * params.bandwidth_hz
            + cfos * params.n_samples / params.bandwidth_hz
        )
        amplitudes = 10.0 ** (rel / 20.0)
        phases = sim._rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        bit_matrix = np.ones((n_pre + sim._payload_bits, n_devices))
        payload = sim._rng.integers(
            0, 2, size=(sim._payload_bits, n_devices)
        )
        bit_matrix[n_pre:] = payload
        symbols = compose_round_matrix(
            params, bins, amplitudes, phases, bit_matrix
        )
        decode = legacy_receiver.decode_round_matrix(
            awgn(symbols, floor, sim._rng), n_preamble_upchirps=n_pre
        )
        for index in range(n_devices):
            sent = payload[:, index].tolist()
            got = list(decode.devices[index].bits)
            total_sent += len(sent)
            total_correct += sum(1 for s, g in zip(sent, got) if s == g)
            if len(got) == len(sent) and all(
                s == g for s, g in zip(sent, got)
            ):
                delivered += 1
    return total_correct / max(total_sent, 1)


def _time_fading(n_rounds: int = FADING_ROUNDS,
                 n_devices: int = FADING_DEVICES) -> dict:
    """Fading rounds: batched AR(1) tracks vs the per-round executions."""
    config = NetScatterConfig(n_association_shifts=0)
    report: dict = {"n_rounds": n_rounds, "n_devices": n_devices}

    deployment = paper_deployment(n_devices=n_devices, rng=2026)
    sim = NetworkSimulator(
        deployment, config=config, rng=5, engine="time"
    )
    legacy_receiver = NetScatterReceiver(
        config, sim.assignments, readout="fft"
    )
    start = time.perf_counter()
    _seed_style_fading_rounds(sim, legacy_receiver, n_rounds)
    report["per_round_fft_legacy"] = {
        "wall_clock_s": round(time.perf_counter() - start, 3)
    }

    for label, kwargs in (
        ("per_round_mode", {"engine": "analytic",
                            "fading_mode": "per_round"}),
        ("batched_analytic", {"engine": "analytic"}),
        ("batched_auto", {"engine": "auto"}),
    ):
        deployment = paper_deployment(n_devices=n_devices, rng=2026)
        sim = NetworkSimulator(deployment, config=config, rng=5, **kwargs)
        start = time.perf_counter()
        metrics = sim.run_rounds(n_rounds, fading=True)
        report[label] = {
            "wall_clock_s": round(time.perf_counter() - start, 3),
            "backend": metrics.backend,
        }
    report["speedup_batched_vs_legacy"] = round(
        report["per_round_fft_legacy"]["wall_clock_s"]
        / report["batched_auto"]["wall_clock_s"],
        2,
    )
    report["speedup_batched_vs_per_round_mode"] = round(
        report["per_round_mode"]["wall_clock_s"]
        / report["batched_auto"]["wall_clock_s"],
        2,
    )
    return report


def _time_noise_modes(n_rounds: int = FADING_ROUNDS,
                      n_devices: int = FADING_DEVICES,
                      repeats: int = 3) -> dict:
    """Located-bin payload noise stream vs the full-bin version-1 stream.

    Times the batched fading decode path (the analytic engine at the
    fading benchmark's operating point, where the readout-noise draws
    were measured at ~45% of remaining decode cost) under both
    ``noise_mode`` settings. The two streams realise the same noise law
    — decisions are statistically identical — so the ratio is purely
    the saved draw/mixing work of reading payload noise only at the
    located ``±1`` bins.
    """
    config = NetScatterConfig(n_association_shifts=0)
    report: dict = {"n_rounds": n_rounds, "n_devices": n_devices}
    for mode in ("full", "payload"):
        best, metrics = float("inf"), None
        for _ in range(repeats):
            deployment = paper_deployment(n_devices=n_devices, rng=2026)
            sim = NetworkSimulator(
                deployment, config=config, rng=5,
                engine="analytic", noise_mode=mode,
            )
            start = time.perf_counter()
            metrics = sim.run_rounds(n_rounds, fading=True)
            best = min(best, time.perf_counter() - start)
        report[mode] = {
            "wall_clock_s": round(best, 4),
            "noise_version": metrics.noise_version,
            "backend": metrics.backend,
        }
    report["speedup_payload_vs_full"] = round(
        report["full"]["wall_clock_s"]
        / report["payload"]["wall_clock_s"],
        2,
    )
    return report


def _time_campaign(
    counts=(1, 64, 256), n_rounds: int = FIG17_ROUNDS
) -> dict:
    """Campaign layer: cold run vs warm re-run vs cross-figure reuse.

    Cold populates a throwaway store point by point; warm re-runs the
    identical spec (every point must load from the store — the report
    validator gates ``points_computed == 0``); the Fig. 18 campaign
    then runs over the same store, whose points are content-identical
    to Fig. 17's, demonstrating the cross-figure cache.
    """
    root = Path(tempfile.mkdtemp(prefix="repro-campaign-bench-"))
    try:
        store = CampaignStore(root)
        runner = CampaignRunner(store=store)
        report: dict = {
            "device_counts": list(counts),
            "n_rounds": n_rounds,
        }
        spec17 = fig17_campaign(
            rng=17, device_counts=counts, n_rounds=n_rounds
        )
        spec18 = fig18_campaign(
            rng=17, device_counts=counts, n_rounds=n_rounds
        )
        for label, spec in (
            ("cold", spec17),
            ("warm_rerun", spec17),
            ("fig18_reuse", spec18),
        ):
            start = time.perf_counter()
            run = runner.run(spec)
            report[label] = {
                "wall_clock_s": round(time.perf_counter() - start, 4),
                "points_computed": run.n_computed,
                "points_cached": run.n_cached,
            }
        report["speedup_warm_vs_cold"] = round(
            report["cold"]["wall_clock_s"]
            / max(report["warm_rerun"]["wall_clock_s"], 1e-6),
            2,
        )
        return report
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _time_population_scale(
    device_counts=(256, 10_000, 100_000)
) -> dict:
    """Flat-population deployment + one hybrid-fidelity schedule cycle.

    The PR-10 scaling headline: each point builds an office population
    as flat NumPy columns (no per-device objects) and scores one full
    schedule cycle through the hybrid split — closed-form aggregation
    for the uncontended bulk, seeded Monte-Carlo engine legs for the
    low-SNR/contended tail (see docs/SCALING.md).
    """
    from repro.protocol.population import (
        hybrid_population_round,
        office_population,
    )

    section = {}
    for count in device_counts:
        start = time.perf_counter()
        population = office_population(
            count, rng=101, snr_scale_db=-26.0
        )
        deploy_s = time.perf_counter() - start
        start = time.perf_counter()
        result = hybrid_population_round(population, seed=11)
        round_s = time.perf_counter() - start
        section[f"devices_{count}"] = {
            "n_devices": count,
            "deploy_s": round(deploy_s, 4),
            "wall_clock_s": round(round_s, 4),
            "n_groups": result.n_groups,
            "closed_form_groups": result.n_closed_form_groups,
            "monte_carlo_groups": result.n_monte_carlo_groups,
            "monte_carlo_devices": result.n_monte_carlo_devices,
            "delivery_ratio": round(result.delivery_ratio, 4),
        }
    return section


def _time_callable(fn, **kwargs) -> dict:
    start = time.perf_counter()
    fn(**kwargs)
    return {"wall_clock_s": round(time.perf_counter() - start, 3)}


def validate_report(report: dict) -> dict:
    """Validate a ``BENCH_fastpath.json`` payload against schema v2.

    Raises ``ValueError`` on the first violation, returns the report
    unchanged otherwise. The rules are the documented schema
    (``docs/PERFORMANCE.md``): a ``bench-fastpath-v2`` envelope with a
    non-empty append-only ``runs`` list; every non-legacy run carries
    ``timestamp`` + ``host``; every ``wall_clock_s`` anywhere in a run
    is a non-negative number and every ``speedup*`` key a positive
    number; ``noise_modes`` sections record both streams' versions and
    their speedup ratio; ``campaign`` sections record the cold /
    warm-rerun / cross-figure-reuse point counts, and the warm re-run
    and the Fig. 18 reuse must have recomputed **zero** points (the
    campaign layer's cache contract). Section-*presence* rules (a
    quick run must carry ``fig17_point256`` + ``fading`` +
    ``noise_modes`` + ``campaign``) apply
    only to the **newest** run — the one the current tool produced.
    The history is append-only and older runs were written by older
    section layouts; rejecting them would force hand-editing the
    accumulated trajectory, exactly what this file must never require.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if report.get("schema") != "bench-fastpath-v2":
        raise ValueError(
            f"unexpected schema {report.get('schema')!r}; "
            "expected 'bench-fastpath-v2'"
        )
    runs = report.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")

    def is_number(value):
        # bool is an int subclass; a JSON `true` is not a wall-clock.
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )

    def walk(node, path):
        if isinstance(node, list):
            for index, item in enumerate(node):
                walk(item, f"{path}[{index}]")
            return
        if not isinstance(node, dict):
            return
        for key, value in node.items():
            where = f"{path}.{key}"
            if key == "wall_clock_s":
                if not is_number(value) or value < 0:
                    raise ValueError(f"{where} must be a >= 0 number")
            elif key.startswith("speedup"):
                if not is_number(value) or value <= 0:
                    raise ValueError(f"{where} must be a positive number")
            else:
                walk(value, where)

    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            raise ValueError(f"{where} must be an object")
        if "note" in run:
            continue  # imported v1 / opaque legacy entries
        if not isinstance(run.get("timestamp"), str):
            raise ValueError(f"{where}.timestamp missing")
        if not isinstance(run.get("host"), dict):
            raise ValueError(f"{where}.host missing")
        walk(run, where)
        if run.get("quick") and index == len(runs) - 1:
            for section in (
                "fig17_point256",
                "fading",
                "noise_modes",
                "campaign",
                "population_scale",
            ):
                if section not in run:
                    raise ValueError(
                        f"{where} is a quick run but lacks {section!r}"
                    )
        modes = run.get("noise_modes")
        if modes is not None:
            for mode, version in (("full", 1), ("payload", 2)):
                entry = modes.get(mode)
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"{where}.noise_modes.{mode} missing"
                    )
                if entry.get("noise_version") != version:
                    raise ValueError(
                        f"{where}.noise_modes.{mode} must record "
                        f"noise_version {version}"
                    )
            if "speedup_payload_vs_full" not in modes:
                raise ValueError(
                    f"{where}.noise_modes lacks speedup_payload_vs_full"
                )
        scale = run.get("population_scale")
        if scale is not None:
            if not isinstance(scale, dict) or not scale:
                raise ValueError(
                    f"{where}.population_scale must be a non-empty object"
                )
            for name, entry in scale.items():
                for counter in ("n_devices", "n_groups"):
                    if not is_number(entry.get(counter)):
                        raise ValueError(
                            f"{where}.population_scale.{name}.{counter} "
                            "must be a number"
                        )
                if (
                    entry.get("closed_form_groups", 0)
                    + entry.get("monte_carlo_groups", 0)
                    != entry.get("n_groups")
                ):
                    raise ValueError(
                        f"{where}.population_scale.{name}: fidelity "
                        "split does not cover every group"
                    )
        campaign = run.get("campaign")
        if campaign is not None:
            for section in ("cold", "warm_rerun", "fig18_reuse"):
                entry = campaign.get(section)
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"{where}.campaign.{section} missing"
                    )
                for counter in ("points_computed", "points_cached"):
                    if not is_number(entry.get(counter)):
                        raise ValueError(
                            f"{where}.campaign.{section}.{counter} "
                            "must be a number"
                        )
            # The cache contract: a re-run over a populated store —
            # same spec or the content-identical Fig. 18 one —
            # recomputes nothing.
            for section in ("warm_rerun", "fig18_reuse"):
                if campaign[section]["points_computed"] != 0:
                    raise ValueError(
                        f"{where}.campaign.{section} recomputed "
                        f"{campaign[section]['points_computed']} "
                        "points; the store must serve them all"
                    )
    return report


def _load_previous_runs(output: Path) -> list:
    """Existing run history; a legacy v1 file becomes the first entry.

    The file is append-only across PRs, so never silently drop what is
    there: unparsable JSON aborts with instructions instead of letting
    the subsequent write clobber the trajectory, and an unrecognised
    schema is preserved verbatim as an opaque entry.
    """
    if not output.exists():
        return []
    try:
        data = json.loads(output.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"{output} exists but is not valid JSON ({error}); fix or "
            "move it aside before benchmarking — refusing to overwrite "
            "the accumulated perf history"
        )
    if not isinstance(data, dict):
        return [
            {"note": "unrecognised schema, preserved as-is", "data": data}
        ]
    if data.get("schema") == "bench-fastpath-v2":
        return list(data.get("runs", []))
    if data.get("schema") == "bench-fastpath-v1":
        legacy = {
            key: data[key]
            for key in ("host", "fig12", "fig15b")
            if key in data
        }
        legacy["note"] = "imported from single-run bench-fastpath-v1"
        return [legacy]
    return [{"note": "unrecognised schema, preserved as-is", "data": data}]


def main(quick: bool = False, output=None) -> dict:
    output = OUTPUT if output is None else Path(output)
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    if quick:
        # Sub-10 s subset: the occupancy-adaptive headline comparisons
        # only, at reduced sizes (used by tests/test_perf_guard.py).
        run["quick"] = True
        run["fig17_point256"] = {
            "analytic": _time_fig17_point256("analytic"),
            "auto": _time_fig17_point256("auto"),
        }
        run["fading"] = _time_fading(n_rounds=30, n_devices=32)
        run["noise_modes"] = _time_noise_modes(n_rounds=30, n_devices=32)
        run["campaign"] = _time_campaign(counts=(1, 32), n_rounds=1)
        run["population_scale"] = _time_population_scale(
            device_counts=(256, 10_000)
        )
    else:
        run["fig12"] = {
            "per_round_fft": _time_fig12_legacy(),
            "batched_sparse": _time_fig12_batched(),
        }
        run["fig15b"] = {"batched_sparse": _time_fig15_batched()}
        run["fig17_sweep"] = {
            "time_engine": _time_fig17_sweep("time"),
            "analytic": _time_fig17_sweep("analytic"),
            "analytic_float32": _time_fig17_sweep(
                "analytic", float32_min_devices=160
            ),
            "auto": _time_fig17_sweep("auto"),
        }
        run["fig17_point256"] = {
            "analytic": _time_fig17_point256("analytic"),
            "auto": _time_fig17_point256("auto"),
        }
        run["fading"] = _time_fading()
        run["noise_modes"] = _time_noise_modes()
        run["campaign"] = _time_campaign()
        run["population_scale"] = _time_population_scale()
        run["figure_drivers"] = {
            "fig17": _time_callable(fig17_phy_rate.run, rng=17),
            "fig18": _time_callable(fig18_linklayer.run, rng=18),
            "fig19": _time_callable(fig19_latency.run, rng=19),
            "sec22": _time_callable(sec22_analytics.run, rng=22),
        }
        fig12 = run["fig12"]
        fig12["speedup"] = round(
            fig12["per_round_fft"]["wall_clock_s"]
            / fig12["batched_sparse"]["wall_clock_s"],
            2,
        )
        fig17 = run["fig17_sweep"]
        for variant in ("analytic", "analytic_float32", "auto"):
            fig17[f"speedup_{variant}"] = round(
                fig17["time_engine"]["wall_clock_s"]
                / fig17[variant]["wall_clock_s"],
                2,
            )
    point = run["fig17_point256"]
    point["speedup_auto"] = round(
        point["analytic"]["wall_clock_s"] / point["auto"]["wall_clock_s"],
        2,
    )
    runs = _load_previous_runs(output)
    runs.append(run)
    report = {"schema": "bench-fastpath-v2", "runs": runs}
    validate_report(report)
    _write_atomic(output, json.dumps(report, indent=2) + "\n")
    print(json.dumps(run, indent=2))
    print(f"\nappended run {len(runs)} to {output}")
    return report


def _write_atomic(output: Path, text: str) -> None:
    """Tmp-file + ``os.replace`` write: a crash mid-append can never
    leave a torn ``BENCH_fastpath.json`` — the history is append-only
    and the previous version survives any interrupted write."""
    tmp = output.with_name(output.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, output)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="sub-10 s subset: fig17 256-point + reduced fading only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="report path (default: BENCH_fastpath.json in the repo root)",
    )
    args = parser.parse_args()
    main(quick=args.quick, output=args.output)
