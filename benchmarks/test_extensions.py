"""Benches for the extension experiments beyond the paper's figures.

* Fig. 10 association flow at waveform level,
* the executable NetScatter-vs-Choir head-to-head (Section 2.2 made
  runnable),
* waveform-path vs fast-path cross-validation.
"""

from benchmarks.conftest import emit
from repro.channel.simulator import cross_validate_paths
from repro.core.config import NetScatterConfig
from repro.core.dcss import DeviceTransmission
from repro.experiments import choir_comparison, fig10_association


def test_fig10_association_flow(benchmark):
    """Fig. 10: join-while-transmitting, request -> grant -> ACK."""
    result = benchmark(fig10_association.run, n_trials=8, rng=10)
    emit(result)


def test_choir_head_to_head(benchmark):
    """Section 2.2 executable: Choir collapses where NetScatter scales."""
    result = benchmark(choir_comparison.run, n_rounds=300, rng=22)
    emit(result)


def test_group_scaling(benchmark):
    """Extension: populations beyond one round's concurrency ceiling."""
    from repro.experiments import group_scaling

    result = benchmark(group_scaling.run, rng=5)
    emit(result)


def test_network_session_dynamics(benchmark):
    """Extension: the Section 3.2.3/3.3.2 closed loop over 40 fading
    rounds — power steps, sit-outs, re-association, reassignment
    queries — while the network keeps delivering."""
    from repro.channel.deployment import paper_deployment
    from repro.protocol.session import NetworkSession

    def run():
        deployment = paper_deployment(n_devices=64, rng=8)
        session = NetworkSession(
            deployment=deployment, fading_std_db=3.0, rng=9
        )
        return session.run(40)

    stats = benchmark(run)
    print(
        f"\n[extension:session] delivery={stats.mean_delivery:.3f} "
        f"participation={stats.mean_participation:.3f} "
        f"power-steps={stats.power_steps} "
        f"reassociations={stats.reassociations} "
        f"reassignment-queries={stats.reassignment_queries}"
    )
    assert stats.mean_delivery > 0.8
    assert stats.power_steps > 0


def test_waveform_vs_fast_path(benchmark):
    """The two simulation fidelities must decode identically."""
    config = NetScatterConfig()
    txs = [
        DeviceTransmission(shift=10, bits=[1, 0, 1, 1, 0, 1]),
        DeviceTransmission(shift=130, bits=[0, 1, 1, 0, 0, 1]),
        DeviceTransmission(shift=250, bits=[1, 1, 0, 0, 1, 0]),
    ]

    def run():
        return cross_validate_paths(config, txs, snr_db=0.0, rng=33)

    out = benchmark(run)
    print(f"\n[extension:cross-validate] waveform == fast: "
          f"{out['waveform'] == out['fast']}")
    assert out["waveform"] == out["fast"]
    assert out["waveform"][0] == [1, 0, 1, 1, 0, 1]
