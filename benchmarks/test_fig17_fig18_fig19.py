"""Benches for the deployment evaluation: Figs. 17, 18 and 19."""

from benchmarks.conftest import emit
from repro.experiments import fig17_phy_rate, fig18_linklayer, fig19_latency


def test_fig17_network_phy_rate(benchmark, deployment):
    """Fig. 17: PHY rate scales ~linearly to ~250 kbps at 256 devices."""
    result = benchmark(
        fig17_phy_rate.run,
        deployment=deployment,
        device_counts=(1, 16, 32, 64, 96, 128, 160, 192, 224, 256),
        n_rounds=3,
        rng=17,
    )
    emit(result)


def test_fig18_link_layer_rate(benchmark, deployment):
    """Fig. 18: link-layer gains 61.9x/14.1x (cfg 1), 50.9x/11.6x (cfg 2)."""
    result = benchmark(
        fig18_linklayer.run,
        deployment=deployment,
        device_counts=(1, 16, 64, 128, 192, 256),
        n_rounds=2,
        rng=18,
    )
    emit(result)


def test_fig19_network_latency(benchmark, deployment):
    """Fig. 19: latency reductions 67.0x/15.3x (cfg 1), 55.1x/12.6x (cfg 2)."""
    result = benchmark(
        fig19_latency.run,
        deployment=deployment,
        device_counts=(1, 16, 32, 64, 96, 128, 160, 192, 224, 256),
        rng=19,
    )
    emit(result)
