"""Bench for Section 2.2's analytic scaling limits of prior approaches."""

from benchmarks.conftest import emit
from repro.experiments import sec22_analytics


def test_sec22_existing_approaches(benchmark):
    """Choir collision/fraction probabilities and the (SF, BW) counts."""
    result = benchmark(sec22_analytics.run, n_trials=20000, rng=22)
    emit(result)
