"""Benches for Fig. 7a (gain vs Z0) and Fig. 8 (side-lobe profile)."""

from benchmarks.conftest import emit
from repro.experiments import fig07_power_gain, fig08_sidelobes


def test_fig07a_power_gain_sweep(benchmark):
    """Fig. 7a: backscatter gain vs Z0, plus the 3-level design points."""
    result = benchmark(fig07_power_gain.run, n_points=101)
    emit(result)


def test_fig08_sidelobe_profile(benchmark):
    """Fig. 8: zero-padded dechirped spectrum; -13 dB / -21 dB lobes."""
    result = benchmark(fig08_sidelobes.run)
    emit(result)
