"""Benches for Fig. 4 (Choir FFT-bin CDF) and Table 1 (configurations)."""

from benchmarks.conftest import emit
from repro.experiments import fig04_choir_cdf, table1_configs


def test_fig04_choir_cdf(benchmark):
    """Fig. 4: backscatter tags stay under 1/3 FFT bin; radios spread."""
    result = benchmark(
        fig04_choir_cdf.run, n_devices=48, n_packets=60, rng=4
    )
    emit(result)


def test_table1_configurations(benchmark):
    """Table 1: tolerable mismatch, bitrate and sensitivity per config."""
    result = benchmark(table1_configs.run)
    emit(result)
