"""Ablation benches for the design choices DESIGN.md calls out.

* power-aware vs random cyclic-shift allocation at fixed dynamic range,
* packet delivery vs SKIP under measured jitter,
* 3-level power control on/off under fading,
* bandwidth aggregation: one aggregate FFT vs filtered sub-bands,
* receiver complexity: decode cost vs number of concurrent devices
  (the paper's single-FFT claim).
"""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.channel.deployment import paper_deployment
from repro.core.aggregation import AggregateBand, compare_receiver_costs
from repro.core.allocation import power_aware_allocation, random_allocation
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_round_matrix
from repro.core.power_control import simulate_power_control
from repro.core.receiver import NetScatterReceiver
from repro.phy.chirp import ChirpParams


def _round_delivery(config, assignments, snrs_db, rng, n_rounds=3):
    """Packet delivery ratio of a jittered concurrent round."""
    from repro.hardware.mcu import McuTimingModel

    params = config.chirp_params
    timing = McuTimingModel()
    n = len(snrs_db)
    rel = np.asarray(snrs_db) - min(snrs_db)
    receiver = NetScatterReceiver(config, assignments)
    delivered, total = 0, 0
    for _ in range(n_rounds):
        delays = np.array(
            [timing.sample_latency_s(rng) for _ in range(n)]
        )
        delays -= delays.mean()
        bins = (
            np.array([assignments[i] for i in range(n)], dtype=float)
            - delays * params.bandwidth_hz
        )
        amplitudes = 10.0 ** (rel / 20.0)
        phases = rng.uniform(0, 2 * np.pi, size=n)
        payload = rng.integers(0, 2, size=(20, n))
        bit_matrix = np.vstack([np.ones((6, n)), payload])
        symbols = compose_round_matrix(
            params, bins, amplitudes, phases, bit_matrix
        )
        decode = receiver.decode_round_matrix(
            awgn(symbols, float(min(snrs_db)), rng)
        )
        for d in range(n):
            got = decode.devices[d].bits
            sent = payload[:, d].tolist()
            if len(got) == len(sent) and all(
                a == b for a, b in zip(sent, got)
            ):
                delivered += 1
            total += 1
    return delivered / total


def test_ablation_allocation(benchmark):
    """Power-aware allocation must beat SNR-blind allocation at equal
    dynamic range (the Section 3.2.3 design claim)."""
    config = NetScatterConfig(n_association_shifts=0)
    snrs = np.linspace(0.0, 35.0, 128).tolist()

    def run():
        aware = power_aware_allocation(snrs, config)
        blind = random_allocation(len(snrs), config, np.random.default_rng(7))
        d_aware = _round_delivery(
            config, aware, snrs, np.random.default_rng(8)
        )
        d_blind = _round_delivery(
            config, blind, snrs, np.random.default_rng(8)
        )
        return d_aware, d_blind

    d_aware, d_blind = benchmark(run)
    print(
        f"\n[ablation:allocation] delivery power-aware={d_aware:.3f} "
        f"random={d_blind:.3f}"
    )
    assert d_aware > d_blind
    assert d_aware > 0.9


def test_ablation_skip(benchmark):
    """Delivery vs guard spacing under measured jitter.

    Devices are pinned at exactly ``skip`` bins apart (the allocator's
    under-capacity spreading would otherwise hide the guard), so this
    isolates Section 3.2.1's trade-off: adjacent bins (SKIP = 1)
    collapse under per-packet jitter; one empty bin (SKIP = 2) holds.
    """
    snrs = np.linspace(0.0, 10.0, 64).tolist()
    n = len(snrs)

    def run():
        outcomes = {}
        for skip in (1, 2, 3, 4):
            config = NetScatterConfig(skip=skip, n_association_shifts=0)
            assignments = {i: i * skip for i in range(n)}
            outcomes[skip] = _round_delivery(
                config, assignments, snrs, np.random.default_rng(9)
            )
        return outcomes

    outcomes = benchmark(run)
    print(
        "\n[ablation:skip] "
        + " ".join(f"gap={k}: {v:.3f}" for k, v in outcomes.items())
    )
    assert outcomes[2] > outcomes[1]
    assert outcomes[2] > 0.85
    assert outcomes[4] >= outcomes[2] - 0.05


def test_ablation_power_control(benchmark):
    """3-level self power adjustment shrinks effective-SNR wander under
    strong fading (Section 3.2.3's fine-grained half)."""
    snrs = np.linspace(0.0, 25.0, 32).tolist()

    def run():
        on = simulate_power_control(
            snrs, n_rounds=300, enabled=True, fading_std_db=6.0, rng=1
        )
        off = simulate_power_control(
            snrs, n_rounds=300, enabled=False, fading_std_db=6.0, rng=1
        )
        wander = lambda r: float(
            np.mean(np.std(r["effective_snr_db"], axis=0))
        )
        return wander(on), wander(off)

    wander_on, wander_off = benchmark(run)
    print(
        f"\n[ablation:power-control] wander on={wander_on:.2f} dB "
        f"off={wander_off:.2f} dB"
    )
    assert wander_on < wander_off


def test_ablation_aggregation(benchmark):
    """Bandwidth aggregation: the single 2*2^SF FFT decodes devices in
    both sub-bands and costs about the same FFT work as two filtered
    bands — without the filters (Section 3.1)."""
    params = ChirpParams(bandwidth_hz=250e3, spreading_factor=8)
    band = AggregateBand(params, aggregation_factor=2)
    rng = np.random.default_rng(44)

    def run():
        active = [10, 100, 300, 500]
        symbol = awgn(band.compose_symbol(active, rng=rng), 0.0, rng)
        decoded = band.decode_slots(symbol, threshold_ratio=0.3)
        costs = compare_receiver_costs(band)
        return set(decoded), costs

    decoded, costs = benchmark(run)
    print(
        f"\n[ablation:aggregation] decoded={sorted(decoded)} "
        f"fft-cost ratio={costs['aggregate_over_filtered']:.3f}"
    )
    assert {10, 100, 300, 500} <= decoded
    assert costs["aggregate_over_filtered"] < 1.5


def test_ablation_zero_padding(benchmark):
    """Sub-bin resolution ablation: with realistic fractional offsets,
    zero-padding (zp = 10, the Choir-derived choice) must beat an
    unpadded FFT (zp = 1), whose half-bin quantisation misreads peaks."""
    base = NetScatterConfig(n_association_shifts=0)
    params = base.chirp_params
    n = 32
    # Near-sensitivity SNR: the up-to-4 dB scalloping loss of an
    # unpadded FFT reading a fractionally offset peak becomes decisive.
    snrs = [-13.0] * n
    shifts = {i: int(i * 16) for i in range(n)}

    def delivery_for(zp):
        config = NetScatterConfig(
            zero_pad_factor=zp, n_association_shifts=0
        )
        receiver = NetScatterReceiver(config, shifts)
        generator = np.random.default_rng(10)
        delivered, total = 0, 0
        for _ in range(4):
            offsets = generator.uniform(-0.45, 0.45, size=n)
            bins = np.array(
                [shifts[i] for i in range(n)], dtype=float
            ) + offsets
            payload = generator.integers(0, 2, size=(20, n))
            bit_matrix = np.vstack([np.ones((6, n)), payload])
            symbols = compose_round_matrix(
                params,
                bins,
                10.0 ** ((np.asarray(snrs) - min(snrs)) / 20.0),
                generator.uniform(0, 2 * np.pi, size=n),
                bit_matrix,
            )
            decode = receiver.decode_round_matrix(
                awgn(symbols, float(min(snrs)), generator)
            )
            for d in range(n):
                got = decode.devices[d].bits
                sent = payload[:, d].tolist()
                if len(got) == len(sent) and all(
                    a == b for a, b in zip(sent, got)
                ):
                    delivered += 1
                total += 1
        return delivered / total

    def run():
        return {zp: delivery_for(zp) for zp in (1, 2, 10)}

    outcomes = benchmark(run)
    print(
        "\n[ablation:zero-padding] "
        + " ".join(f"zp={k}: {v:.3f}" for k, v in outcomes.items())
    )
    # At threshold SNR the padded read buys several points of delivery
    # (scalloping recovery); we assert the ordering, not an absolute.
    assert outcomes[10] > outcomes[1] + 0.02
    assert outcomes[2] >= outcomes[1]


@pytest.mark.parametrize("sf", [7, 9, 11])
def test_decoder_cost_vs_spreading_factor(benchmark, sf):
    """Pure dechirp + zero-padded FFT cost per symbol across SF: the
    per-symbol work grows with 2^SF (longer symbols), but the per-BIT
    receiver cost stays flat because each symbol carries one bit from
    every concurrent device."""
    params = ChirpParams(bandwidth_hz=500e3, spreading_factor=sf)
    from repro.phy.chirp import cyclic_shifted_upchirp
    from repro.phy.demodulation import Demodulator

    demod = Demodulator(params)
    symbol = np.asarray(cyclic_shifted_upchirp(params, 3))

    def run():
        return demod.dechirp(symbol).peak_bin()

    peak = benchmark(run)
    assert round(peak) == 3


@pytest.mark.parametrize("n_devices", [16, 256])
def test_receiver_complexity_constant(benchmark, n_devices):
    """The paper's receiver-complexity claim: the dechirp + FFT work per
    round does not grow with the number of concurrent devices (only the
    trivial per-device bin reads do). Compare the 16- vs 256-device
    timings in the benchmark table."""
    deployment = paper_deployment(n_devices=256, rng=5).subset(n_devices)
    from repro.protocol.network import NetworkSimulator

    sim = NetworkSimulator(deployment, rng=6)

    def run():
        return sim.run_round().delivery_ratio

    delivery = benchmark(run)
    assert delivery >= 0.0  # timing is the product here
