"""Benches for Fig. 9 (SNR variance), Fig. 14 (offsets), Fig. 16 (PSD)."""

from benchmarks.conftest import emit
from repro.experiments import fig09_snr_variance, fig14_offsets, fig16_spectrogram


def test_fig09_snr_variance(benchmark):
    """Fig. 9: 30-minute SNR deviation CDFs of eight office devices."""
    result = benchmark(
        fig09_snr_variance.run, n_devices=8, duration_s=1800.0, rng=9
    )
    emit(result)


def test_fig14a_frequency_offsets(benchmark):
    """Fig. 14a: tag frequency offsets within +/-150 Hz."""
    result = benchmark(
        fig14_offsets.run_frequency_offsets,
        n_devices=256,
        n_packets=20,
        rng=14,
    )
    emit(result)


def test_fig14b_residual_bins(benchmark):
    """Fig. 14b: residual |delta FFT bin| tails for three configurations."""
    result = benchmark(
        fig14_offsets.run_residual_bins, n_devices=64, n_packets=40, rng=15
    )
    emit(result)


def test_fig16_power_level_spectra(benchmark):
    """Fig. 16: clean chirp spectra at the 0/-4/-10 dB levels."""
    result = benchmark(fig16_spectrogram.run, n_symbols=16, rng=16)
    emit(result)
