"""Benchmark fixtures: shared deployment and report printing.

Each benchmark regenerates one paper table/figure, prints the same
rows/series the paper reports (captured with ``pytest -s`` or in the
benchmark logs), asserts the shape checks, and times the run via
pytest-benchmark.
"""

import pytest

from repro.channel.deployment import paper_deployment


@pytest.fixture(scope="session")
def deployment():
    """The calibrated 256-device office deployment (fixed seed)."""
    return paper_deployment(n_devices=256, rng=2026)


def emit(result) -> None:
    """Print an experiment report and enforce its shape checks."""
    print()
    print(result.report(max_rows=24))
    assert result.all_checks_pass(), (
        f"{result.experiment_id}: shape checks failed\n{result.report()}"
    )
