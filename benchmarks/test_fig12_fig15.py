"""Benches for Fig. 12 (near-far BER) and Fig. 15 (Doppler, dyn. range)."""

from benchmarks.conftest import emit
from repro.experiments import fig12_nearfar_ber, fig15_doppler_dr


def test_fig12_nearfar_ber(benchmark):
    """Fig. 12: weak-device BER vs SNR at 35/40/45 dB power deltas."""
    result = benchmark(
        fig12_nearfar_ber.run,
        snrs_db=(-20, -18, -16, -14, -12, -10),
        n_symbols=4000,
        rng=12,
    )
    emit(result)


def test_fig15a_doppler(benchmark):
    """Fig. 15a: bin-offset tails unchanged at walking/running speeds."""
    result = benchmark(fig15_doppler_dr.run_doppler, n_samples=2000, rng=15)
    emit(result)


def test_fig15b_dynamic_range(benchmark):
    """Fig. 15b: tolerable power delta vs bin separation (5 -> 35 dB)."""
    result = benchmark(
        fig15_doppler_dr.run_dynamic_range,
        separations_bins=(2, 4, 8, 16, 64, 128, 256),
        n_symbols=600,
        rng=16,
    )
    emit(result)
