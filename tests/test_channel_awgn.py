"""Unit tests for repro.channel.awgn — noise and SNR accounting."""

import numpy as np
import pytest

from repro.channel.awgn import (
    awgn,
    combined_snr_db,
    noise_power_dbm,
    processing_gain_db,
    rssi_from_snr_dbm,
    sensitivity_dbm,
    snr_after_despreading_db,
    snr_from_rssi_db,
)
from repro.errors import LinkBudgetError


class TestAwgn:
    def test_realised_snr(self, rng):
        signal = np.ones(200000, dtype=complex)
        noisy = awgn(signal, 10.0, rng)
        noise = noisy - signal
        measured = 10 * np.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(10.0, abs=0.1)

    def test_noise_level_independent_of_signal_content(self, rng):
        """OOK '0' symbols are silent but the channel noise must not
        change: the reference is signal_power, not measured power."""
        silent = np.zeros(100000, dtype=complex)
        noisy = awgn(silent, 0.0, rng, signal_power=1.0)
        assert np.mean(np.abs(noisy) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_complex_noise_is_circular(self, rng):
        noisy = awgn(np.zeros(100000, dtype=complex), 0.0, rng)
        real_var = np.var(noisy.real)
        imag_var = np.var(noisy.imag)
        assert real_var == pytest.approx(imag_var, rel=0.05)

    def test_invalid_signal_power(self, rng):
        with pytest.raises(LinkBudgetError):
            awgn(np.ones(4, dtype=complex), 0.0, rng, signal_power=0.0)

    def test_preserves_shape(self, rng):
        signal = np.ones((3, 16), dtype=complex)
        assert awgn(signal, 0.0, rng).shape == (3, 16)


class TestNoisePower:
    def test_500khz_floor(self):
        # -174 + 10log10(500e3) + 6 = -111 dBm.
        assert noise_power_dbm(500e3) == pytest.approx(-111.0, abs=0.1)

    def test_narrower_band_is_quieter(self):
        assert noise_power_dbm(125e3) < noise_power_dbm(500e3)

    def test_invalid_bandwidth(self):
        with pytest.raises(LinkBudgetError):
            noise_power_dbm(0.0)


class TestProcessingGain:
    def test_sf9_gain(self):
        assert processing_gain_db(9) == pytest.approx(27.09, abs=0.01)

    def test_despreading_addition(self):
        assert snr_after_despreading_db(-20.0, 9) == pytest.approx(
            7.09, abs=0.01
        )

    def test_invalid_sf(self):
        with pytest.raises(LinkBudgetError):
            processing_gain_db(0)


class TestSensitivity:
    def test_paper_value_sf9(self):
        """Table 1: (500 kHz, SF 9) sensitivity ~ -123 dBm."""
        assert sensitivity_dbm(500e3, 9) == pytest.approx(-123.0, abs=2.0)

    def test_higher_sf_more_sensitive(self):
        assert sensitivity_dbm(500e3, 10) < sensitivity_dbm(500e3, 9)

    def test_narrower_band_more_sensitive(self):
        assert sensitivity_dbm(125e3, 9) < sensitivity_dbm(500e3, 9)


class TestRssiSnr:
    def test_roundtrip(self):
        snr = snr_from_rssi_db(-100.0, 500e3)
        assert rssi_from_snr_dbm(snr, 500e3) == pytest.approx(-100.0)

    def test_sensitivity_level_snr(self):
        # A signal at -111 dBm over 500 kHz sits exactly at 0 dB SNR.
        assert snr_from_rssi_db(-111.0, 500e3) == pytest.approx(0.0, abs=0.1)


class TestCombinedSnr:
    def test_n_equal_devices_add_linearly(self):
        """Section 3.1: N below-noise devices deposit N times the power."""
        combined = combined_snr_db([-20.0] * 10)
        assert combined == pytest.approx(-10.0, abs=0.01)

    def test_single_device_identity(self):
        assert combined_snr_db([-7.0]) == pytest.approx(-7.0)

    def test_strongest_dominates(self):
        assert combined_snr_db([0.0, -30.0]) == pytest.approx(0.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(LinkBudgetError):
            combined_snr_db([])
