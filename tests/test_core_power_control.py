"""Unit tests for the power-control policy and closed-loop simulation."""

import numpy as np
import pytest

from repro.core.power_control import (
    PowerControlPolicy,
    choose_initial_level,
    reciprocity_step,
    simulate_power_control,
    snr_groups,
)
from repro.errors import ConfigurationError


class TestPolicy:
    def test_defaults(self):
        policy = PowerControlPolicy()
        assert policy.levels_db == (0.0, -4.0, -10.0)
        assert policy.adjustment_span_db == pytest.approx(10.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            PowerControlPolicy(levels_db=())
        with pytest.raises(ConfigurationError):
            PowerControlPolicy(hysteresis_db=-1.0)


class TestInitialLevel:
    def test_far_device_full_power(self):
        assert choose_initial_level(-45.0, -40.0) == 0

    def test_near_device_middle(self):
        assert choose_initial_level(-30.0, -40.0) == 1


class TestReciprocityStep:
    def test_hotter_channel_steps_down(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -26.0, 1, policy)
        assert level == 2 and participate

    def test_colder_channel_steps_up(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -34.0, 1, policy)
        assert level == 0 and participate

    def test_within_hysteresis_no_change(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -29.5, 1, policy)
        assert level == 1 and participate

    def test_exhausted_weak_side_sits_out(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -24.0, 2, policy)
        assert level == 2 and not participate

    def test_exhausted_strong_side_sits_out(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -36.0, 0, policy)
        assert level == 0 and not participate

    def test_mild_overshoot_still_participates(self):
        policy = PowerControlPolicy()
        level, participate = reciprocity_step(-30.0, -28.0, 2, policy)
        assert participate


class TestClosedLoop:
    def test_control_reduces_snr_wander_under_strong_fading(self, rng):
        """The ablation claim: power control shrinks the effective-SNR
        wander when the channel moves by more than a power step (the
        someone-stands-next-to-the-tag regime the 3-level adjustment is
        designed for; with 4-6 dB steps it cannot — and should not —
        chase sub-step fading)."""
        snrs = list(np.linspace(0.0, 20.0, 16))
        on = simulate_power_control(
            snrs, n_rounds=300, enabled=True, fading_std_db=6.0, rng=1
        )
        off = simulate_power_control(
            snrs, n_rounds=300, enabled=False, fading_std_db=6.0, rng=1
        )
        # Per-device deviation from its own mean is what control fixes.
        def wander(result):
            eff = result["effective_snr_db"]
            return float(np.mean(np.std(eff, axis=0)))

        assert wander(on) < wander(off)

    def test_disabled_control_keeps_levels(self, rng):
        result = simulate_power_control(
            [10.0, 20.0], n_rounds=50, enabled=False, rng=rng
        )
        assert np.all(result["final_levels"] == 1)

    def test_participation_mask_shape(self, rng):
        result = simulate_power_control(
            [10.0] * 4, n_rounds=25, rng=rng
        )
        assert result["participating"].shape == (25, 4)

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_power_control([], n_rounds=10, rng=rng)


class TestSnrGroups:
    def test_single_group_within_span(self):
        groups = snr_groups([0.0, 10.0, 20.0], group_span_db=35.0)
        assert len(groups) == 1
        assert sorted(groups[0]) == [0, 1, 2]

    def test_splits_beyond_span(self):
        groups = snr_groups([0.0, 50.0], group_span_db=35.0)
        assert len(groups) == 2

    def test_groups_ordered_by_snr(self):
        groups = snr_groups([0.0, 50.0, 49.0, 1.0], group_span_db=10.0)
        assert len(groups) == 2
        assert set(groups[0]) == {1, 2}
        assert set(groups[1]) == {0, 3}

    def test_every_device_grouped(self, rng):
        snrs = rng.uniform(-20, 60, size=50).tolist()
        groups = snr_groups(snrs, group_span_db=20.0)
        allocated = [i for g in groups for i in g]
        assert sorted(allocated) == list(range(50))

    def test_invalid_span(self):
        with pytest.raises(ConfigurationError):
            snr_groups([0.0], group_span_db=0.0)
