"""Unit tests for repro.phy.packet — the link-layer packet structure."""

import pytest

from repro.errors import ProtocolError
from repro.phy.packet import BackscatterPacket, PacketStructure


class TestPacketStructure:
    def test_paper_defaults(self):
        s = PacketStructure()
        assert s.n_preamble_upchirps == 6
        assert s.n_preamble_downchirps == 2
        assert s.payload_bits == 40
        assert s.n_symbols == 48

    def test_airtime_at_deployment_config(self, params):
        s = PacketStructure()
        # 48 symbols * 1.024 ms = 49.152 ms of uplink airtime.
        assert s.airtime_s(params) == pytest.approx(49.152e-3)

    def test_preamble_vs_payload_split(self, params):
        s = PacketStructure()
        assert s.preamble_airtime_s(params) + s.payload_airtime_s(
            params
        ) == pytest.approx(s.airtime_s(params))

    def test_invalid_counts(self):
        with pytest.raises(ProtocolError):
            PacketStructure(n_preamble_upchirps=0)
        with pytest.raises(ProtocolError):
            PacketStructure(n_preamble_downchirps=0)
        with pytest.raises(ProtocolError):
            PacketStructure(payload_bits=-1)

    def test_one_payload_symbol_per_bit(self):
        s = PacketStructure(payload_bits=17)
        assert s.n_payload_symbols == 17


class TestBackscatterPacket:
    def test_frame_appends_crc(self):
        packet = BackscatterPacket(device_id=3, data_bits=[1, 0, 1, 1])
        assert len(packet.frame_bits) == 12
        assert packet.n_frame_bits == 12

    def test_crc_roundtrip(self):
        packet = BackscatterPacket(device_id=1, data_bits=[0, 1] * 16)
        frame = packet.frame_bits
        assert BackscatterPacket.verify(frame)
        assert BackscatterPacket.extract_data(frame) == packet.data_bits

    def test_corruption_detected(self):
        packet = BackscatterPacket(device_id=1, data_bits=[0, 1] * 16)
        frame = packet.frame_bits
        frame[0] ^= 1
        assert not BackscatterPacket.verify(frame)
        with pytest.raises(ProtocolError):
            BackscatterPacket.extract_data(frame)

    def test_deployment_sized_payload(self):
        # 32 data bits + 8 CRC = the 40-bit payload+CRC of Figs. 18-19.
        packet = BackscatterPacket(device_id=0, data_bits=[1] * 32)
        assert packet.n_frame_bits == 40

    def test_invalid_device_id(self):
        with pytest.raises(ProtocolError):
            BackscatterPacket(device_id=-1)

    def test_invalid_bits(self):
        with pytest.raises(ProtocolError):
            BackscatterPacket(device_id=0, data_bits=[2])
