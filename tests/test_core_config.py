"""Unit tests for repro.core.config — NetScatter operating points."""

import pytest

from repro.core.config import (
    TABLE1_CONFIGS,
    NetScatterConfig,
    deployment_config,
)
from repro.errors import ConfigurationError


class TestDeploymentConfig:
    def test_defaults(self):
        config = deployment_config()
        assert config.bandwidth_hz == 500e3
        assert config.spreading_factor == 9
        assert config.skip == 2

    def test_capacity(self):
        """512 bins / SKIP 2 = 256 slots; each association shift costs
        its slot plus two guards."""
        config = deployment_config()
        assert config.n_bins == 512
        assert config.max_devices == 250
        full = NetScatterConfig(n_association_shifts=0)
        assert full.max_devices == 256

    def test_device_bitrate_paper(self):
        assert deployment_config().device_bitrate_bps == pytest.approx(
            976.5625
        )

    def test_aggregate_throughput_near_250kbps(self):
        config = NetScatterConfig(n_association_shifts=0)
        assert config.aggregate_throughput_bps == pytest.approx(250e3)

    def test_throughput_gain_over_lora(self):
        """Section 3.1: gain = 2^SF / SF = 56.9 at SF 9."""
        assert deployment_config().throughput_gain_over_lora == pytest.approx(
            512 / 9
        )

    def test_lora_bitrate(self):
        assert deployment_config().lora_bitrate_bps == pytest.approx(
            8789.0625
        )


class TestTolerances:
    def test_timing_tolerance_one_bin(self):
        config = deployment_config()
        assert config.tolerable_timing_mismatch_s == pytest.approx(2e-6)

    def test_frequency_tolerance_one_bin(self):
        config = deployment_config()
        assert config.tolerable_frequency_mismatch_hz == pytest.approx(
            976.5625
        )

    def test_narrower_band_tolerates_more_timing(self):
        wide = NetScatterConfig(bandwidth_hz=500e3, spreading_factor=9)
        narrow = NetScatterConfig(bandwidth_hz=125e3, spreading_factor=7)
        assert (
            narrow.tolerable_timing_mismatch_s
            == 4 * wide.tolerable_timing_mismatch_s
        )


class TestTable1:
    def test_six_rows(self):
        assert len(TABLE1_CONFIGS) == 6

    def test_bitrates_alternate(self):
        rates = [round(c.device_bitrate_bps) for c in TABLE1_CONFIGS]
        assert rates == [977, 1953, 977, 1953, 977, 1953]

    def test_sensitivities_with_sf(self):
        by_key = {
            (c.bandwidth_hz, c.spreading_factor): c.sensitivity_dbm
            for c in TABLE1_CONFIGS
        }
        # Same bitrate rows: deeper spreading at the same BW is more
        # sensitive.
        assert by_key[(500e3, 9)] < by_key[(500e3, 8)]
        assert by_key[(250e3, 8)] < by_key[(250e3, 7)]


class TestAssignedShifts:
    def test_skip_grid(self):
        config = deployment_config()
        shifts = config.assigned_shifts()
        assert len(shifts) == 256
        assert all(s % 2 == 0 for s in shifts)

    def test_skip_3(self):
        config = NetScatterConfig(skip=3)
        shifts = config.assigned_shifts()
        assert all(s % 3 == 0 for s in shifts)


class TestValidation:
    def test_invalid_skip(self):
        with pytest.raises(ConfigurationError):
            NetScatterConfig(skip=0)

    def test_invalid_zero_pad(self):
        with pytest.raises(ConfigurationError):
            NetScatterConfig(zero_pad_factor=0)

    def test_invalid_sf_propagates(self):
        with pytest.raises(ConfigurationError):
            NetScatterConfig(spreading_factor=0)

    def test_unknown_sf_snr_limit(self):
        config = NetScatterConfig(spreading_factor=13)
        with pytest.raises(ConfigurationError):
            _ = config.min_snr_db

    def test_describe_mentions_key_facts(self):
        text = deployment_config().describe()
        assert "500" in text and "SF=9" in text
