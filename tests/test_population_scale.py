"""Population-scale equivalence suite.

Pins the tentpole invariants of the flat-array population layer:

* the flat (struct-of-arrays) backends of :class:`AllocationTable`,
  :class:`AssociationController` and :class:`GroupScheduler` make
  *bit-identical* decisions to the legacy per-device-object backends,
  across spreading factors and device counts up to 256, over randomised
  add / SNR-update / remove / bulk operation sequences;
* the hybrid fidelity split is a seeded pure function (same population
  + same seed -> same routing, same metrics) and its closed-form legs
  stay within a statistical-equivalence gate of the all-Monte-Carlo
  reference at 10^4 devices;
* the per-config slot geometry (``_data_slots`` / ``association_shifts``
  / ``spread_slot_indices``) is cached, not recomputed per call;
* :func:`office_population`'s vectorised link law matches the scalar
  :class:`LinkBudget` arithmetic elementwise.
"""

import numpy as np
import pytest

from repro.channel.deployment import Deployment
from repro.channel.link import LinkBudget
from repro.core.allocation import (
    AllocationTable,
    _data_slots,
    association_shifts,
    power_aware_allocation,
)
from repro.core.config import NetScatterConfig
from repro.errors import AllocationError, AssociationError, ProtocolError
from repro.protocol.ap import AccessPoint
from repro.protocol.association import AssociationController
from repro.protocol.population import (
    FidelityRule,
    Population,
    hybrid_population_round,
    office_population,
    spread_slot_indices,
    split_fidelity,
    assign_cluster,
)
from repro.protocol.scheduler import GroupScheduler

SPREADING_FACTORS = (7, 9, 12)
DEVICE_COUNTS = (1, 2, 3, 17, 64, 256)


def _config(sf: int) -> NetScatterConfig:
    return NetScatterConfig(spreading_factor=sf, n_association_shifts=0)


def _assoc_config(sf: int) -> NetScatterConfig:
    return NetScatterConfig(spreading_factor=sf)


def _table_state(table: AllocationTable):
    return (table.assignments(), table.reassignments)


class TestAllocationBackendEquivalence:
    """Flat vs object AllocationTable: identical decision sequences."""

    @pytest.mark.parametrize("sf", SPREADING_FACTORS)
    @pytest.mark.parametrize("n", DEVICE_COUNTS)
    def test_serial_adds_bit_identical(self, sf, n):
        config = _config(sf)
        if n > len(_data_slots(config)):
            pytest.skip("count exceeds this SF's capacity")
        rng = np.random.default_rng(1000 + sf * 7 + n)
        snrs = rng.uniform(-45.0, 10.0, size=n)
        flat = AllocationTable(config, backend="flat")
        legacy = AllocationTable(config, backend="object")
        for device_id, snr in enumerate(snrs):
            res_flat = flat.add_device(device_id, float(snr))
            res_obj = legacy.add_device(device_id, float(snr))
            assert res_flat == res_obj
            assert _table_state(flat) == _table_state(legacy)
        flat.validate()
        legacy.validate()

    @pytest.mark.parametrize("sf", SPREADING_FACTORS)
    def test_mixed_operation_sequence_bit_identical(self, sf):
        config = _config(sf)
        rng = np.random.default_rng(4242 + sf)
        flat = AllocationTable(config, backend="flat")
        legacy = AllocationTable(config, backend="object")
        live = []
        next_id = 0
        for _ in range(300):
            op = rng.random()
            if (op < 0.55 or not live) and len(live) >= flat.capacity:
                op = 0.7  # table full: fall through to an SNR update
            if op < 0.55 or not live:
                snr = float(rng.uniform(-45.0, 10.0))
                assert flat.add_device(next_id, snr) == legacy.add_device(
                    next_id, snr
                )
                live.append(next_id)
                next_id += 1
            elif op < 0.8:
                victim = int(live[int(rng.integers(len(live)))])
                snr = float(rng.uniform(-45.0, 10.0))
                assert flat.update_snr(victim, snr) == legacy.update_snr(
                    victim, snr
                )
            else:
                victim = live.pop(int(rng.integers(len(live))))
                flat.remove_device(int(victim))
                legacy.remove_device(int(victim))
            assert _table_state(flat) == _table_state(legacy)
        flat.validate()
        legacy.validate()
        exp_flat = flat.worst_case_exposure_db()
        exp_obj = legacy.worst_case_exposure_db()
        if exp_flat is None:
            assert exp_obj is None
        else:
            assert exp_flat == pytest.approx(exp_obj, abs=1e-9)

    @pytest.mark.parametrize("sf", SPREADING_FACTORS)
    def test_bulk_add_matches_on_both_backends(self, sf):
        config = _config(sf)
        rng = np.random.default_rng(77 + sf)
        n = min(128, len(_data_slots(config)))
        ids = list(range(n))
        snrs = rng.uniform(-40.0, 5.0, size=n)
        flat = AllocationTable(config, backend="flat")
        legacy = AllocationTable(config, backend="object")
        shifts_flat, re_flat = flat.bulk_add(ids, snrs)
        shifts_obj, re_obj = legacy.bulk_add(ids, snrs)
        assert shifts_flat.tolist() == shifts_obj.tolist()
        assert re_flat == re_obj
        assert _table_state(flat) == _table_state(legacy)
        # ... and the bulk result equals the one-shot allocation map.
        one_shot = power_aware_allocation(snrs, config)
        assert flat.assignments() == one_shot

    def test_error_parity(self):
        config = _config(9)
        for backend in ("flat", "object"):
            table = AllocationTable(config, backend=backend)
            table.add_device(1, -10.0)
            with pytest.raises(AllocationError, match="already allocated"):
                table.add_device(1, -12.0)
            with pytest.raises(AllocationError, match="not allocated"):
                table.shift_of(99)
            with pytest.raises(AllocationError, match="not allocated"):
                table.remove_device(99)

    def test_invalid_backend_rejected(self):
        with pytest.raises(AllocationError, match="backend"):
            AllocationTable(_config(9), backend="columnar")


class TestAssociationBackendEquivalence:
    # SF 12 is excluded: its shift range exceeds the grant message's
    # 8-bit SKIP-grid field — a message-format constraint that hits
    # both backends identically and is tested in the messages suite.
    @pytest.mark.parametrize("sf", (7, 9))
    def test_grant_ack_lifecycle_bit_identical(self, sf):
        config = _assoc_config(sf)
        rng = np.random.default_rng(500 + sf)
        flat = AssociationController(config, backend="flat")
        legacy = AssociationController(config, backend="object")
        for device_id in range(48):
            snr = float(rng.uniform(-45.0, 5.0))
            g_flat, r_flat = flat.handle_request(device_id, snr)
            g_obj, r_obj = legacy.handle_request(device_id, snr)
            assert (g_flat, r_flat) == (g_obj, r_obj)
            if device_id % 3 == 0:
                # Lost grant: the duplicate request repeats it.
                again_flat, _ = flat.handle_request(device_id, snr)
                again_obj, _ = legacy.handle_request(device_id, snr)
                assert again_flat == again_obj
            assert flat.pending_grants() == legacy.pending_grants()
            assert flat.handle_ack(device_id) == legacy.handle_ack(device_id)
            assert flat.n_members == legacy.n_members
            assert flat.assignments() == legacy.assignments()

    def test_grant_abandoned_after_max_repeats_on_both(self):
        config = _assoc_config(9)
        for backend in ("flat", "object"):
            ctrl = AssociationController(config, backend=backend)
            ctrl.handle_request(7, -20.0)
            for _ in range(AssociationController.MAX_GRANT_REPEATS - 1):
                ctrl.handle_request(7, -20.0)
            with pytest.raises(
                AssociationError, match="never acknowledged"
            ):
                ctrl.handle_request(7, -20.0)
            # The slot was freed: the device can start over.
            ctrl.handle_request(7, -20.0)
            ctrl.handle_ack(7)
            assert ctrl.n_members == 1

    def test_granted_shift_frozen_across_repack(self):
        """A later admit may re-pack the ring, but the pending grant
        keeps repeating the originally granted shift on both backends."""
        config = _assoc_config(9)
        grants = {}
        for backend in ("flat", "object"):
            ctrl = AssociationController(config, backend=backend)
            first, _ = ctrl.handle_request(1, -30.0)
            # A stronger newcomer re-packs the ring under device 1.
            ctrl.handle_request(2, -5.0)
            ctrl.handle_ack(2)
            repeat, _ = ctrl.handle_request(1, -30.0)
            assert repeat.cyclic_shift == first.cyclic_shift
            grants[backend] = repeat.cyclic_shift
        assert grants["flat"] == grants["object"]

    def test_unexpected_ack_parity(self):
        config = _assoc_config(9)
        for backend in ("flat", "object"):
            ctrl = AssociationController(config, backend=backend)
            with pytest.raises(AssociationError, match="unexpected ACK"):
                ctrl.handle_ack(3)
            ctrl.handle_request(3, -20.0)
            ctrl.handle_ack(3)
            with pytest.raises(AssociationError, match="unexpected ACK"):
                ctrl.handle_ack(3)

    def test_bulk_associate_equivalent_across_backends(self):
        config = _assoc_config(9)
        rng = np.random.default_rng(9)
        ids = list(range(200))
        snrs = rng.uniform(-45.0, 5.0, size=len(ids))
        flat = AssociationController(config, backend="flat")
        legacy = AssociationController(config, backend="object")
        s_flat, r_flat = flat.bulk_associate(ids, snrs)
        s_obj, r_obj = legacy.bulk_associate(ids, snrs)
        assert s_flat.tolist() == s_obj.tolist()
        assert r_flat == r_obj
        assert flat.n_members == legacy.n_members == len(ids)
        assert flat.assignments() == legacy.assignments()
        assert flat.pending_grants() == [] == legacy.pending_grants()


class TestSchedulerBackendEquivalence:
    @pytest.mark.parametrize("max_group", (4, 64, 256))
    def test_round_robin_sequences_bit_identical(self, max_group):
        rng = np.random.default_rng(31 + max_group)
        flat = GroupScheduler(max_group_size=max_group, backend="flat")
        legacy = GroupScheduler(max_group_size=max_group, backend="object")
        for device_id in range(97):
            snr = float(rng.uniform(-60.0, 0.0))
            duty = int(rng.integers(1, 4))
            flat.add_device(device_id, snr, duty)
            legacy.add_device(device_id, snr, duty)
        assert flat.groups == legacy.groups
        for device_id in range(97):
            assert flat.group_of(device_id) == legacy.group_of(device_id)
        for round_index in range(60):
            assert flat.next_round() == legacy.next_round(), round_index
        # Churn: removals keep the two in lockstep.
        for victim in (5, 50, 90):
            flat.remove_device(victim)
            legacy.remove_device(victim)
        assert flat.groups == legacy.groups
        for round_index in range(30):
            assert flat.next_round() == legacy.next_round(), round_index

    def test_bulk_add_matches_serial_grouping(self):
        rng = np.random.default_rng(8)
        snrs = rng.uniform(-60.0, 0.0, size=120)
        serial = GroupScheduler(max_group_size=16)
        bulk = GroupScheduler(max_group_size=16)
        for device_id, snr in enumerate(snrs):
            serial.add_device(device_id, float(snr))
        bulk.bulk_add(range(len(snrs)), snrs)
        assert serial.groups == bulk.groups

    def test_error_parity(self):
        for backend in ("flat", "object"):
            sched = GroupScheduler(max_group_size=8, backend=backend)
            sched.add_device(1, -10.0)
            with pytest.raises(ProtocolError, match="already scheduled"):
                sched.add_device(1, -12.0)
            with pytest.raises(ProtocolError, match="not scheduled"):
                sched.remove_device(2)
            with pytest.raises(ProtocolError, match="duty cycle"):
                sched.add_device(3, -10.0, duty_cycle_rounds=0)


class TestAccessPointBackends:
    def test_association_flow_identical(self):
        config = NetScatterConfig()
        rng = np.random.default_rng(12)
        snrs = rng.uniform(-40.0, 0.0, size=64)
        flat = AccessPoint(config, backend="flat")
        legacy = AccessPoint(config, backend="object")
        for device_id, snr in enumerate(snrs):
            assert flat.run_association(
                device_id, float(snr)
            ) == legacy.run_association(device_id, float(snr))
        assert flat.assignments() == legacy.assignments()
        assert flat.stats == legacy.stats
        assert flat.scheduler.groups == legacy.scheduler.groups

    def test_bulk_associate_charges_serial_stats(self):
        config = NetScatterConfig()
        rng = np.random.default_rng(13)
        snrs = rng.uniform(-40.0, 0.0, size=32)
        serial = AccessPoint(config)
        bulk = AccessPoint(config)
        for device_id, snr in enumerate(snrs):
            serial.run_association(device_id, float(snr))
        shifts = bulk.bulk_associate(range(len(snrs)), snrs)
        assert bulk.assignments() == serial.assignments()
        assert [
            bulk.assignments()[i] for i in range(len(snrs))
        ] == shifts.tolist()
        assert bulk.stats.queries_sent == serial.stats.queries_sent
        assert (
            bulk.stats.downlink_bits_sent
            == serial.stats.downlink_bits_sent
        )
        assert (
            bulk.stats.associations_completed
            == serial.stats.associations_completed
        )


class TestSlotGeometryCaching:
    """Satellite fix: per-config geometry is computed once, not per call."""

    def test_data_slots_cached_per_config(self):
        from repro.core.allocation import _data_slots_cached

        config = NetScatterConfig(spreading_factor=10)
        _data_slots_cached.cache_clear()
        a = _data_slots(config)
        before = _data_slots_cached.cache_info()
        b = _data_slots(config)
        after = _data_slots_cached.cache_info()
        assert a == b
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        # Fresh list each call: caller mutation cannot poison the cache.
        a.append(-1)
        assert _data_slots(config) == b

    def test_association_shifts_cached_per_config(self):
        from repro.core.allocation import _association_shifts_cached

        config = NetScatterConfig(spreading_factor=10)
        _association_shifts_cached.cache_clear()
        a = association_shifts(config)
        b = association_shifts(config)
        info = _association_shifts_cached.cache_info()
        assert a == b
        assert info.misses == 1
        assert info.hits >= 1

    def test_spread_slot_indices_cached_and_read_only(self):
        spread_slot_indices.cache_clear()
        a = spread_slot_indices(37, 255)
        b = spread_slot_indices(37, 255)
        assert a is b  # identical cached object
        assert not a.flags.writeable
        info = spread_slot_indices.cache_info()
        assert info.hits >= 1


class TestOfficePopulationLinkLaw:
    def test_matches_scalar_link_budget_elementwise(self):
        """The vectorised law equals the scalar LinkBudget arithmetic.

        Positions are replayed from the same seeded generator the
        population drew from, then each device's SNR is recomputed with
        the per-device scalar path (the paper_deployment code path).
        """
        from repro.channel.deployment import _count_walls
        from repro.utils.rng import make_rng

        budget = LinkBudget(path_loss_exponent=2.0, wall_loss_db=2.0)
        pop = office_population(64, rng=3)
        xy = make_rng(3).uniform(
            [0.0, 0.0], [40.0, 20.0], size=(64, 2)
        )
        ap = (20.0, 10.0)
        for row in range(pop.n_devices):
            x, y = float(xy[row, 0]), float(xy[row, 1])
            distance = max(float(np.hypot(x - ap[0], y - ap[1])), 4.0)
            walls = _count_walls(ap, (x, y), 8.0)
            expected = budget.uplink_snr_db(distance, walls)
            assert pop.snr_db[row] == pytest.approx(expected, abs=1e-9)

    def test_snr_scale_shifts_uniformly(self):
        base = office_population(32, rng=5)
        scaled = office_population(32, rng=5, snr_scale_db=-20.0)
        np.testing.assert_allclose(
            scaled.snr_db, base.snr_db - 20.0, atol=1e-12
        )


class TestFidelitySplit:
    def test_split_is_seeded_and_deterministic(self):
        pop = office_population(2048, rng=7, snr_scale_db=-30.0)
        groups = assign_cluster(pop.snr_db, _config(9))
        rule = FidelityRule()
        a = split_fidelity(pop.snr_db, groups, rule, seed=99)
        b = split_fidelity(pop.snr_db, groups, rule, seed=99)
        assert a.monte_carlo.tolist() == b.monte_carlo.tolist()
        assert a.reasons == b.reasons
        assert a.group_seeds.tolist() == b.group_seeds.tolist()
        c = split_fidelity(pop.snr_db, groups, rule, seed=100)
        # A different seed may reroute audit groups but never the
        # validity-floor routing.
        floor = [
            i
            for i, r in enumerate(a.reasons)
            if r == "validity_floor"
        ]
        for i in floor:
            assert c.monte_carlo[i]

    def test_force_monte_carlo_routes_everything(self):
        pop = office_population(512, rng=7, snr_scale_db=-30.0)
        groups = assign_cluster(pop.snr_db, _config(9))
        split = split_fidelity(
            pop.snr_db, groups, FidelityRule(), seed=1,
            force_monte_carlo=True,
        )
        assert bool(np.all(split.monte_carlo))

    def test_hybrid_round_deterministic(self):
        pop = office_population(4096, rng=17, snr_scale_db=-30.0)
        a = hybrid_population_round(pop, seed=5)
        b = hybrid_population_round(pop, seed=5)
        assert a.delivery_ratio == b.delivery_ratio
        assert a.bit_error_rate == b.bit_error_rate
        assert a.reasons == b.reasons

    def test_hybrid_matches_monte_carlo_at_scale(self):
        """The statistical-equivalence gate at 10^4 devices.

        The hybrid and all-Monte-Carlo runs share group seeds, so the
        Monte-Carlo legs are common and the gate isolates the
        closed-form legs' aggregate error, which the calibration bounds
        at ~0.02 delivery (see docs/SCALING.md).
        """
        pop = office_population(10_000, rng=3, snr_scale_db=-30.0)
        hybrid = hybrid_population_round(pop, seed=11)
        reference = hybrid_population_round(
            pop, seed=11, force_monte_carlo=True
        )
        assert hybrid.n_closed_form_groups > 0
        assert hybrid.delivery_ratio == pytest.approx(
            reference.delivery_ratio, abs=0.03
        )
        assert hybrid.bit_error_rate == pytest.approx(
            reference.bit_error_rate, abs=0.02
        )


class TestPopulationEngineBridge:
    def test_simulator_accepts_population(self):
        from repro.protocol.network import NetworkSimulator

        pop = Population()
        pop.bulk_add(range(8), np.linspace(-14.0, -4.0, 8))
        sim = NetworkSimulator(pop, power_control=False, rng=3)
        metrics = sim.run_rounds(2)
        assert metrics.n_devices == 8

    def test_population_matches_from_snrs_deployment(self):
        from repro.protocol.network import NetworkSimulator

        snrs = np.linspace(-14.0, -4.0, 8)
        pop = Population()
        pop.bulk_add(range(8), snrs)
        via_pop = NetworkSimulator(
            pop, power_control=False, rng=3
        ).run_rounds(3)
        via_dep = NetworkSimulator(
            Deployment.from_snrs(snrs), power_control=False, rng=3
        ).run_rounds(3)
        assert via_pop.bit_error_rate == via_dep.bit_error_rate
        assert via_pop.delivery_ratio == via_dep.delivery_ratio
