"""Analytic bin-domain composition: Dirichlet kernel + decode equivalence.

The contract under test: :func:`compose_readout` /
:meth:`NetScatterReceiver.decode_readout` evaluate the whole
compose -> dechirp -> readout chain in closed form, and their decisions
are bit-identical to routing :func:`compose_rounds` waveforms through
the time-domain engine (``sparse`` *and* the exact ``fft`` backend) —
across spreading factors, device counts and fractional CFO/jitter
offsets, with and without engine-injected readout noise.
"""

import numpy as np
import pytest

from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_readout, compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.errors import ConfigurationError, DecodingError
from repro.phy.chirp import ChirpParams
from repro.phy.sparse_readout import SparseReadout, dirichlet_kernel


def _brute_dirichlet(n, offsets):
    t = np.arange(n)
    u = np.atleast_1d(np.asarray(offsets, dtype=float))
    return np.array(
        [np.exp(2j * np.pi * ui * t / n).sum() for ui in u]
    ).reshape(np.shape(offsets))


class TestDirichletKernel:
    @pytest.mark.parametrize("sf", [7, 9, 12])
    def test_integer_bins_are_orthogonal(self, sf):
        """At integer offsets the kernel is N at 0 (mod N), else 0."""
        n = 2**sf
        k = np.arange(-3, 4)
        values = dirichlet_kernel(n, k)
        expected = np.where(k == 0, float(n), 0.0)
        assert np.allclose(values, expected, atol=1e-8)
        assert dirichlet_kernel(n, np.array([n]))[()] == pytest.approx(n)
        assert dirichlet_kernel(n, np.array([-n]))[()] == pytest.approx(n)

    @pytest.mark.parametrize("sf", [7, 9, 12])
    def test_fractional_bins_match_explicit_sum(self, sf):
        n = 2**sf
        rng = np.random.default_rng(sf)
        u = np.concatenate(
            [
                rng.uniform(-n, n, size=64),
                [0.5, -0.5, 1e-9, n - 1e-9, n / 2],
            ]
        )
        got = dirichlet_kernel(n, u)
        want = _brute_dirichlet(n, u)
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6 * n)

    def test_periodic_and_conjugate_symmetric(self):
        n = 512
        u = np.random.default_rng(0).uniform(-1.0, 1.0, size=16) * 200
        assert np.allclose(
            dirichlet_kernel(n, u), dirichlet_kernel(n, u + n), atol=1e-8
        )
        assert np.allclose(
            dirichlet_kernel(n, -u),
            np.conjugate(dirichlet_kernel(n, u)),
            atol=1e-9,
        )

    def test_rejects_bad_length(self):
        with pytest.raises(DecodingError):
            dirichlet_kernel(0, np.array([0.0]))


class TestToneKernel:
    @pytest.mark.parametrize("sf", [7, 9, 12])
    def test_matches_spectrum_of_tone(self, sf):
        """tone_kernel == readout of the explicit dechirped tone."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=sf)
        n = params.n_samples
        rng = np.random.default_rng(sf)
        bins = rng.integers(0, n * 10, size=50)
        readout = SparseReadout(params, 10, bins, fold_downchirp=False)
        b = rng.uniform(-1.0, n + 1.0, size=(2, 3))
        tones = np.exp(2j * np.pi * b[..., None] * np.arange(n) / n)
        assert np.allclose(
            readout.tone_kernel(b),
            readout.spectrum(tones),
            rtol=1e-9,
            atol=1e-6 * n,
        )

    def test_integer_aligned_tones_exact(self):
        """Exact-hit bins (the removable singularity) stay finite/correct."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=9)
        n = params.n_samples
        readout = SparseReadout(
            params, 10, np.arange(0, n) * 10, fold_downchirp=False
        )
        b = np.array([0.0, 2.0, 511.0])
        kernel = readout.tone_kernel(b)
        expected = np.zeros((3, n))
        expected[np.arange(3), b.astype(int)] = n
        assert np.allclose(kernel, expected, atol=1e-6)

    def test_float32_ratio_close_to_float64(self):
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=9)
        rng = np.random.default_rng(3)
        readout = SparseReadout(
            params, 10, rng.integers(0, 5120, size=200)
        )
        b = rng.uniform(0, 512, size=(4, 8))
        r64 = readout.tone_ratio(b)
        r32 = readout.tone_ratio(b, dtype=np.float32)
        assert r32.dtype == np.float32
        assert np.allclose(r32, r64, rtol=2e-5, atol=2e-4 * 512)

    def test_analytic_noise_covariance_matches_operator(self):
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=8)
        rng = np.random.default_rng(5)
        bins = rng.integers(0, 2560, size=24)
        for fold in (True, False):
            readout = SparseReadout(params, 10, bins, fold_downchirp=fold)
            assert np.allclose(
                readout.analytic_noise_covariance(),
                readout.noise_covariance(),
                rtol=1e-9,
                atol=1e-6,
            )


def _random_batch(config, shifts, n_rounds, n_payload, rng,
                  offsets_std=0.2):
    n_devices = shifts.size
    bits = rng.integers(0, 2, size=(n_rounds, n_payload, n_devices))
    bit_tensor = np.concatenate(
        [np.ones((n_rounds, 6, n_devices)), bits], axis=1
    )
    bins = shifts[None, :] + rng.normal(
        0.0, offsets_std, size=(n_rounds, n_devices)
    )
    amplitudes = 10.0 ** (
        rng.uniform(-6.0, 6.0, size=(n_rounds, n_devices)) / 20.0
    )
    phases = rng.uniform(0, 2 * np.pi, size=(n_rounds, n_devices))
    return bins, amplitudes, phases, bit_tensor


class TestComposeReadout:
    def test_matches_time_domain_composition(self):
        """compose_readout == SparseReadout(compose_rounds(...))."""
        config = NetScatterConfig(n_association_shifts=0)
        params = config.chirp_params
        rng = np.random.default_rng(11)
        shifts = np.arange(0, 16, dtype=float) * 2
        bins, amps, phases, bt = _random_batch(config, shifts, 3, 8, rng)
        readout = SparseReadout(
            params, 10, rng.integers(0, 5120, size=120)
        )
        values = compose_readout(params, bins, amps, phases, bt, readout)
        symbols = compose_rounds(params, bins, amps, phases, bt)
        reference = readout.spectrum(symbols)
        assert np.allclose(values, reference, rtol=1e-9, atol=1e-6)

    def test_rejects_bad_shapes_and_dtypes(self):
        config = NetScatterConfig(n_association_shifts=0)
        params = config.chirp_params
        readout = SparseReadout(params, 10, np.array([0, 20]))
        good = (
            np.zeros((2, 3)),
            np.ones((2, 3)),
            np.zeros((2, 3)),
            np.ones((2, 4, 3)),
        )
        with pytest.raises(ConfigurationError):
            compose_readout(
                params, np.zeros((3,)), *good[1:], readout
            )
        with pytest.raises(ConfigurationError):
            compose_readout(params, *good, readout, dtype=np.float64)
        other = ChirpParams(bandwidth_hz=500e3, spreading_factor=7)
        with pytest.raises(ConfigurationError):
            compose_readout(other, *good, readout)


class TestDecodeEquivalence:
    """decode_readout decisions == time-domain engine, bit for bit."""

    @pytest.mark.parametrize(
        "sf,n_devices",
        [(7, 1), (7, 16), (9, 8), (9, 64), (9, 256), (12, 32)],
    )
    def test_noiseless_grid(self, sf, n_devices):
        config = NetScatterConfig(
            spreading_factor=sf, n_association_shifts=0
        )
        skip = config.skip
        assert n_devices <= config.max_devices
        assignments = {i: i * skip for i in range(n_devices)}
        rng = np.random.default_rng(100 * sf + n_devices)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(
            config, shifts, 2, 6, rng
        )
        analytic = NetScatterReceiver(
            config, assignments, readout="analytic"
        )
        sparse = NetScatterReceiver(config, assignments)
        fft = NetScatterReceiver(config, assignments, readout="fft")
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        decode_a = analytic.decode_readout(bins, amps, phases, bt)
        decode_s = sparse.decode_rounds(symbols)
        decode_f = fft.decode_rounds(symbols)
        for other in (decode_s, decode_f):
            assert np.array_equal(decode_a.detected, other.detected)
            assert np.array_equal(decode_a.bits, other.bits)
        assert np.allclose(
            decode_a.preamble_power, decode_s.preamble_power, rtol=1e-7
        )

    def test_cfo_jitter_fractional_bins(self):
        """Large fractional offsets (jitter + CFO) stay bit-identical."""
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(32)}
        rng = np.random.default_rng(77)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(
            config, shifts, 4, 10, rng, offsets_std=0.4
        )
        analytic = NetScatterReceiver(
            config, assignments, readout="analytic"
        )
        sparse = NetScatterReceiver(config, assignments)
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        a = analytic.decode_readout(bins, amps, phases, bt)
        s = sparse.decode_rounds(symbols)
        assert np.array_equal(a.bits, s.bits)
        assert np.array_equal(a.detected, s.detected)

    def test_engine_noise_same_seed_same_decisions(self):
        """Readout-domain AWGN: shared generator state -> shared noise.

        Both paths draw through the same analytic window covariance
        factor, so a single-chunk batch decoded from the same seed makes
        identical decisions under identical noise.
        """
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(8)}
        rng = np.random.default_rng(5)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(
            config, shifts, 6, 12, rng
        )
        analytic = NetScatterReceiver(
            config, assignments, readout="analytic"
        )
        sparse = NetScatterReceiver(config, assignments)
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        a = analytic.decode_readout(
            bins, amps, phases, bt,
            noise_snr_db=-18.0, rng=np.random.default_rng(9),
        )
        s = sparse.decode_rounds(
            symbols, noise_snr_db=-18.0, rng=np.random.default_rng(9)
        )
        assert np.array_equal(a.bits, s.bits)
        assert np.array_equal(a.detected, s.detected)
        assert np.allclose(a.noise_power, s.noise_power, rtol=1e-9)

    def test_float32_decisions_stable(self):
        """complex64 readout reproduces the float64 decisions."""
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(64)}
        rng = np.random.default_rng(13)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(
            config, shifts, 3, 10, rng
        )
        receiver = NetScatterReceiver(
            config, assignments, readout="analytic"
        )
        d64 = receiver.decode_readout(bins, amps, phases, bt)
        d32 = receiver.decode_readout(
            bins, amps, phases, bt, dtype=np.complex64
        )
        assert np.array_equal(d64.bits, d32.bits)
        assert np.array_equal(d64.detected, d32.detected)
        # Powers agree to single precision almost everywhere; the rare
        # larger deviations are near-tie peak locations landing one
        # interpolated bin apart, which the decision equality above
        # already shows to be harmless.
        relative = np.abs(d64.preamble_power - d32.preamble_power) / (
            np.abs(d64.preamble_power) + 1e-30
        )
        assert np.median(relative) < 1e-4
        assert np.mean(relative < 1e-3) > 0.97

    def test_decode_readout_validation(self):
        config = NetScatterConfig(n_association_shifts=0)
        receiver = NetScatterReceiver(
            config, {0: 0, 1: 2}, readout="analytic"
        )
        bins = np.zeros((2, 2))
        with pytest.raises(DecodingError):
            receiver.decode_readout(
                np.zeros(2), np.ones((2, 2)), bins, np.ones((2, 8, 2))
            )
        with pytest.raises(DecodingError):
            receiver.decode_readout(
                bins, np.ones((2, 2)), bins, np.ones((2, 3, 2)),
                n_preamble_upchirps=6,
            )
        with pytest.raises(DecodingError):
            receiver.decode_readout(
                bins, np.ones((2, 2)), bins, np.ones((2, 8, 2)),
                noise_snr_db=-10.0,
            )

    def test_invalid_readout_mode_rejected(self):
        config = NetScatterConfig(n_association_shifts=0)
        with pytest.raises(DecodingError):
            NetScatterReceiver(config, {0: 0}, readout="exact")


class TestPreambleRowDedup:
    """compose_readout(n_preamble_rows=) computes shared rows once."""

    def _batch(self, n_rounds=3, n_devices=12, n_payload=7, seed=31):
        config = NetScatterConfig(n_association_shifts=0)
        params = config.chirp_params
        rng = np.random.default_rng(seed)
        shifts = np.arange(n_devices, dtype=float) * 2
        bins, amps, phases, bt = _random_batch(
            config, shifts, n_rounds, n_payload, rng
        )
        readout = SparseReadout(
            params, 10, rng.integers(0, 5120, size=90)
        )
        return params, bins, amps, phases, bt, readout

    def test_dedup_matches_full_computation(self):
        params, bins, amps, phases, bt, readout = self._batch()
        full = compose_readout(params, bins, amps, phases, bt, readout)
        deduped = compose_readout(
            params, bins, amps, phases, bt, readout, n_preamble_rows=6
        )
        # Payload rows come from the same GEMM inputs -> bit-identical;
        # the broadcast preamble rows equal the first computed row.
        assert np.array_equal(full[:, 6:], deduped[:, 6:])
        assert np.allclose(full[:, :6], deduped[:, :6], rtol=1e-12)
        assert all(
            np.array_equal(deduped[:, 0], deduped[:, s]) for s in range(6)
        )

    def test_non_identical_rows_fall_back(self):
        params, bins, amps, phases, bt, readout = self._batch()
        bt = bt.copy()
        bt[:, 2, 0] = 0.0  # break the all-on claim in one preamble row
        full = compose_readout(params, bins, amps, phases, bt, readout)
        claimed = compose_readout(
            params, bins, amps, phases, bt, readout, n_preamble_rows=6
        )
        assert np.array_equal(full, claimed)

    def test_decode_readout_uses_dedup_transparently(self):
        """The receiver's analytic path (which passes n_preamble_rows)
        still matches the time-domain backends bit for bit."""
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(12)}
        rng = np.random.default_rng(8)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(
            config, shifts, 3, 9, rng
        )
        analytic = NetScatterReceiver(
            config, assignments, readout="analytic"
        ).decode_readout(bins, amps, phases, bt)
        sparse = NetScatterReceiver(config, assignments).decode_rounds(
            compose_rounds(config.chirp_params, bins, amps, phases, bt)
        )
        assert np.array_equal(analytic.bits, sparse.bits)
        assert np.array_equal(analytic.detected, sparse.detected)
