"""Unit tests for the NetScatter single-FFT concurrent receiver."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.dcss import (
    DeviceTransmission,
    compose_frame,
    compose_preamble_and_payload_symbols,
    compose_round_matrix,
)
from repro.core.receiver import NetScatterReceiver
from repro.errors import DecodingError


def _decode_fast(config, assignments, txs, rng, snr_db=None):
    symbols = compose_preamble_and_payload_symbols(
        config.chirp_params, txs, rng=rng
    )
    if snr_db is not None:
        symbols = [awgn(s, snr_db, rng) for s in symbols]
    receiver = NetScatterReceiver(config, assignments)
    return receiver.decode_fast_symbols(symbols)


class TestConstruction:
    def test_duplicate_shifts_rejected(self, config):
        with pytest.raises(DecodingError):
            NetScatterReceiver(config, {0: 10, 1: 10})

    def test_out_of_range_shift_rejected(self, config):
        with pytest.raises(DecodingError):
            NetScatterReceiver(config, {0: 512})

    def test_empty_assignments_rejected(self, config):
        with pytest.raises(DecodingError):
            NetScatterReceiver(config, {})

    def test_assignments_copied(self, config):
        assignments = {0: 10}
        receiver = NetScatterReceiver(config, assignments)
        assignments[0] = 20
        assert receiver.assignments == {0: 10}


class TestConcurrentDecode:
    def test_two_devices_noiseless(self, config, rng):
        txs = [
            DeviceTransmission(shift=10, bits=[1, 0, 1, 1]),
            DeviceTransmission(shift=200, bits=[0, 1, 1, 0]),
        ]
        decode = _decode_fast(config, {0: 10, 1: 200}, txs, rng)
        assert decode.detected_ids() == [0, 1]
        assert decode.bits_of(0) == [1, 0, 1, 1]
        assert decode.bits_of(1) == [0, 1, 1, 0]

    def test_sixteen_devices_below_noise(self, config, rng):
        """16 concurrent devices at -10 dB each must all decode — the
        distributed-coding headline behaviour."""
        shifts = list(range(0, 512, 32))
        txs = [
            DeviceTransmission(shift=s, bits=[1, 0, 1, 0, 1])
            for s in shifts
        ]
        assignments = {i: s for i, s in enumerate(shifts)}
        decode = _decode_fast(config, assignments, txs, rng, snr_db=-10.0)
        assert decode.detected_ids() == list(range(16))
        for i in range(16):
            assert decode.bits_of(i) == [1, 0, 1, 0, 1]

    def test_silent_device_not_detected(self, config, rng):
        txs = [DeviceTransmission(shift=10, bits=[1, 1, 1])]
        decode = _decode_fast(
            config, {0: 10, 1: 300}, txs, rng, snr_db=0.0
        )
        assert decode.devices[1].detected is False
        assert decode.bits_of(1) == []

    def test_residual_offset_tolerated(self, config, rng):
        """A device late by half the SKIP guard still decodes."""
        txs = [
            DeviceTransmission(
                shift=100, bits=[1, 0, 1], delay_s=0.9e-6  # 0.45 bins
            )
        ]
        decode = _decode_fast(config, {0: 100}, txs, rng, snr_db=0.0)
        assert decode.bits_of(0) == [1, 0, 1]

    def test_all_zero_payload(self, config, rng):
        """An all-zeros payload after a detected preamble must decode as
        zeros, not as noise-driven ones."""
        txs = [DeviceTransmission(shift=40, bits=[0, 0, 0, 0])]
        decode = _decode_fast(config, {0: 40}, txs, rng, snr_db=0.0)
        assert decode.devices[0].detected
        assert decode.bits_of(0) == [0, 0, 0, 0]

    def test_bits_of_unknown_device(self, config, rng):
        txs = [DeviceTransmission(shift=10, bits=[1])]
        decode = _decode_fast(config, {0: 10}, txs, rng)
        with pytest.raises(DecodingError):
            decode.bits_of(99)


class TestRoundMatrixDecode:
    def test_matches_per_symbol_decode(self, config, rng):
        """The vectorised path must agree with the reference decoder."""
        shifts = {0: 20, 1: 260}
        bins = np.array([20.2, 260.1])
        amps = np.array([1.0, 1.0])
        phases = np.array([0.5, 2.0])
        bits = np.array([[1, 0], [0, 1], [1, 1], [0, 0]])
        bit_matrix = np.vstack([np.ones((6, 2)), bits])
        symbols = compose_round_matrix(
            config.chirp_params, bins, amps, phases, bit_matrix
        )
        noisy = awgn(symbols, 5.0, rng)
        receiver = NetScatterReceiver(config, shifts)
        fast = receiver.decode_round_matrix(noisy)
        slow = receiver.decode_fast_symbols(list(noisy))
        for device_id in shifts:
            assert fast.devices[device_id].detected == slow.devices[
                device_id
            ].detected
            assert fast.bits_of(device_id) == slow.bits_of(device_id)
        assert fast.bits_of(0) == bits[:, 0].tolist()
        assert fast.bits_of(1) == bits[:, 1].tolist()

    def test_shape_validation(self, config):
        receiver = NetScatterReceiver(config, {0: 10})
        with pytest.raises(DecodingError):
            receiver.decode_round_matrix(np.ones((4, 100), dtype=complex))

    def test_preamble_length_validation(self, config):
        receiver = NetScatterReceiver(config, {0: 10})
        with pytest.raises(DecodingError):
            receiver.decode_round_matrix(
                np.ones((3, 512), dtype=complex), n_preamble_upchirps=6
            )


class TestStreamDecode:
    def test_synchronized_stream_decode(self, small_config, rng):
        """Full waveform path: silence + concurrent frame, receiver must
        find the start and decode everyone."""
        params = small_config.chirp_params
        txs = [
            DeviceTransmission(shift=4, bits=[1, 0, 1, 1]),
            DeviceTransmission(shift=32, bits=[0, 1, 0, 1]),
        ]
        stream = compose_frame(
            params,
            txs,
            leading_silence_samples=150,
            trailing_silence_samples=60,
            rng=rng,
        )
        stream = awgn(stream, 10.0, rng)
        receiver = NetScatterReceiver(small_config, {0: 4, 1: 32})
        decode = receiver.decode_frame(stream, n_payload_bits=4)
        assert abs(decode.start_sample - 150) <= 1
        assert decode.bits_of(0) == [1, 0, 1, 1]
        assert decode.bits_of(1) == [0, 1, 0, 1]

    def test_short_stream_rejected(self, small_config):
        receiver = NetScatterReceiver(small_config, {0: 4})
        with pytest.raises(DecodingError):
            receiver.decode_frame(
                np.zeros(100, dtype=complex),
                n_payload_bits=4,
                synchronize=False,
            )
