"""Unit tests for repro.phy.demodulation — dechirp + zero-padded FFT."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import DecodingError
from repro.phy.chirp import cyclic_shifted_upchirp, upchirp
from repro.phy.demodulation import Demodulator


class TestDechirp:
    def test_peak_at_shift(self, params):
        demod = Demodulator(params)
        for shift in (0, 3, 100, 511):
            result = demod.dechirp(cyclic_shifted_upchirp(params, shift))
            assert round(result.peak_bin()) % params.n_shifts == shift

    def test_spectrum_length_includes_padding(self, params):
        demod = Demodulator(params, zero_pad_factor=10)
        result = demod.dechirp(upchirp(params))
        assert result.n_bins == params.n_samples * 10

    def test_fractional_peak_resolution(self, params):
        """A quarter-bin frequency offset must be resolvable on the
        interpolated grid — the sub-bin capability the paper borrows
        from Choir."""
        demod = Demodulator(params, zero_pad_factor=10)
        n = params.n_samples
        t = np.arange(n)
        tone = np.exp(2j * np.pi * (50.3) * t / n)
        symbol = tone * upchirp(params)
        result = demod.dechirp(symbol)
        assert result.peak_bin() == pytest.approx(50.3, abs=0.05)

    def test_wrong_length_rejected(self, params):
        demod = Demodulator(params)
        with pytest.raises(DecodingError):
            demod.dechirp(np.ones(100, dtype=complex))

    def test_invalid_zero_pad(self, params):
        with pytest.raises(DecodingError):
            Demodulator(params, zero_pad_factor=0)


class TestBinPower:
    def test_peak_power_at_assigned_bin(self, params):
        demod = Demodulator(params)
        result = demod.dechirp(cyclic_shifted_upchirp(params, 77))
        on = result.bin_power(77, 0.5)
        off = result.bin_power(200, 0.5)
        assert on > 100 * off

    def test_window_absorbs_fractional_offset(self, params):
        demod = Demodulator(params)
        n = params.n_samples
        tone = np.exp(2j * np.pi * 77.4 * np.arange(n) / n)
        result = demod.dechirp(tone * upchirp(params))
        assert result.bin_power(77, 0.5) == pytest.approx(
            float(np.max(result.power)), rel=0.05
        )

    def test_peak_index_near_locates(self, params):
        demod = Demodulator(params, zero_pad_factor=10)
        n = params.n_samples
        tone = np.exp(2j * np.pi * 20.3 * np.arange(n) / n)
        result = demod.dechirp(tone * upchirp(params))
        located = result.peak_index_near(20, 0.5)
        assert located == pytest.approx(203, abs=1)

    def test_power_at_index_guard(self, params):
        demod = Demodulator(params, zero_pad_factor=10)
        result = demod.dechirp(cyclic_shifted_upchirp(params, 8))
        exact = result.power_at_index(80, guard=0)
        guarded = result.power_at_index(79, guard=1)
        assert guarded == pytest.approx(exact)


class TestFrameDechirp:
    def test_splits_symbols(self, params):
        demod = Demodulator(params)
        frame = np.concatenate(
            [cyclic_shifted_upchirp(params, k) for k in (5, 6, 7)]
        )
        results = demod.dechirp_frame(frame)
        assert len(results) == 3
        assert [round(r.peak_bin()) for r in results] == [5, 6, 7]

    def test_rejects_partial_symbol(self, params):
        demod = Demodulator(params)
        with pytest.raises(DecodingError):
            demod.dechirp_frame(np.ones(params.n_samples + 1, dtype=complex))


class TestClassicDecode:
    def test_noiseless(self, params):
        demod = Demodulator(params)
        for k in (0, 1, 130, 511):
            assert demod.classic_decode(
                cyclic_shifted_upchirp(params, k)
            ) == k

    def test_below_noise_floor(self, params, rng):
        """CSS decodes below the noise floor: at -10 dB in-band SNR the
        coding gain (27 dB at SF 9) leaves 17 dB post-FFT."""
        demod = Demodulator(params)
        errors = 0
        for trial in range(50):
            k = int(rng.integers(0, params.n_shifts))
            noisy = awgn(cyclic_shifted_upchirp(params, k), -10.0, rng)
            if demod.classic_decode(noisy) != k:
                errors += 1
        assert errors <= 1

    def test_fails_far_below_sensitivity(self, params, rng):
        """At -35 dB even SF 9 cannot decode — sanity that noise is real."""
        demod = Demodulator(params)
        errors = 0
        for trial in range(20):
            k = int(rng.integers(0, params.n_shifts))
            noisy = awgn(cyclic_shifted_upchirp(params, k), -35.0, rng)
            if demod.classic_decode(noisy) != k:
                errors += 1
        assert errors > 5


class TestNoiseFloor:
    def test_excludes_peaks(self, params, rng):
        demod = Demodulator(params)
        noisy = awgn(cyclic_shifted_upchirp(params, 50), 10.0, rng)
        result = demod.dechirp(noisy)
        floor_with = demod.noise_floor(result, exclude_bins=[50])
        peak = result.bin_power(50, 0.5)
        assert peak > 100 * floor_with

    def test_full_exclusion_falls_back(self, params, rng):
        demod = Demodulator(params, zero_pad_factor=2)
        noisy = awgn(upchirp(params), 0.0, rng)
        result = demod.dechirp(noisy)
        # Exclude everything: the quantile fallback must still answer.
        floor = demod.noise_floor(
            result, exclude_bins=list(range(params.n_shifts))
        )
        assert floor > 0.0
