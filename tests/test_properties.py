"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.allocation import cyclic_bin_distance, power_aware_allocation
from repro.core.config import NetScatterConfig
from repro.phy.chirp import ChirpParams, cyclic_shifted_upchirp, downchirp
from repro.protocol.messages import decode_permutation, encode_permutation
from repro.utils.bits import (
    append_crc8,
    bits_to_int,
    check_crc8,
    int_to_bits,
)
from repro.utils.conversions import (
    bins_to_freq_offset,
    bins_to_timing_offset,
    db_to_linear,
    freq_offset_to_bins,
    linear_to_db,
    timing_offset_to_bins,
)

SMALL_PARAMS = ChirpParams(bandwidth_hz=125e3, spreading_factor=6)
SMALL_CONFIG = NetScatterConfig(
    bandwidth_hz=125e3, spreading_factor=6, skip=2, n_association_shifts=0
)


class TestConversionProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_db_roundtrip(self, value_db):
        assert abs(linear_to_db(db_to_linear(value_db)) - value_db) < 1e-9

    @given(
        st.floats(min_value=-1e-4, max_value=1e-4),
        st.floats(min_value=1e3, max_value=1e7),
    )
    def test_timing_bins_roundtrip(self, dt, bw):
        bins = timing_offset_to_bins(dt, bw)
        assert abs(bins_to_timing_offset(bins, bw) - dt) < 1e-12

    @given(
        st.floats(min_value=-1e4, max_value=1e4),
        st.integers(min_value=6, max_value=12),
    )
    def test_freq_bins_roundtrip(self, df, sf):
        bins = freq_offset_to_bins(df, 500e3, sf)
        assert abs(bins_to_freq_offset(bins, 500e3, sf) - df) < 1e-6


class TestBitProperties:
    @given(st.integers(min_value=0, max_value=2**24 - 1))
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 24)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=64))
    def test_crc_roundtrip(self, bits):
        assert check_crc8(append_crc8(bits))

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64),
        st.data(),
    )
    def test_crc_detects_any_single_flip(self, bits, data):
        framed = append_crc8(bits)
        position = data.draw(
            st.integers(min_value=0, max_value=len(framed) - 1)
        )
        framed[position] ^= 1
        assert not check_crc8(framed)


class TestChirpProperties:
    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=30, deadline=None)
    def test_shift_decodes_to_itself(self, shift):
        """Noiseless invariant over every shift: dechirp + argmax."""
        symbol = cyclic_shifted_upchirp(SMALL_PARAMS, shift)
        spectrum = np.abs(np.fft.fft(symbol * downchirp(SMALL_PARAMS)))
        assert int(np.argmax(spectrum)) == shift

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_composition(self, a, b):
        """Shifting by a then b equals shifting by a+b (mod N) up to a
        constant phase: their dechirped peaks coincide."""
        composed = np.roll(
            np.asarray(cyclic_shifted_upchirp(SMALL_PARAMS, a)), -b
        )
        direct = cyclic_shifted_upchirp(SMALL_PARAMS, (a + b) % 64)
        spec_a = np.abs(np.fft.fft(composed * downchirp(SMALL_PARAMS)))
        spec_b = np.abs(np.fft.fft(direct * downchirp(SMALL_PARAMS)))
        assert int(np.argmax(spec_a)) == int(np.argmax(spec_b))

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_unit_power(self, shift):
        symbol = cyclic_shifted_upchirp(SMALL_PARAMS, shift)
        assert abs(float(np.mean(np.abs(symbol) ** 2)) - 1.0) < 1e-9


class TestAllocationProperties:
    @given(
        st.lists(
            st.floats(min_value=-20.0, max_value=40.0),
            min_size=1,
            max_size=32,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_allocation_invariants(self, snrs):
        """For any SNR population: shifts unique, SKIP-aligned, and the
        strongest-weakest pair at least as far apart as any adjacent
        (in rank) pair."""
        allocation = power_aware_allocation(snrs, SMALL_CONFIG)
        shifts = list(allocation.values())
        assert len(set(shifts)) == len(shifts)
        assert all(s % SMALL_CONFIG.skip == 0 for s in shifts)
        if len(snrs) >= 6:
            order = np.argsort(snrs)[::-1]
            strongest, weakest = int(order[0]), int(order[-1])
            extreme = cyclic_bin_distance(
                allocation[strongest],
                allocation[weakest],
                SMALL_CONFIG.n_bins,
            )
            # The folded layout puts the weakest device deep into the
            # ring, far from the strong edge.
            assert extreme >= SMALL_CONFIG.n_bins / 8

    @given(
        st.lists(
            st.floats(min_value=-20.0, max_value=40.0),
            min_size=2,
            max_size=16,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_rank_adjacency_in_bins(self, snrs):
        """Devices adjacent in bin space must be adjacent (within 2) in
        SNR rank — the side-lobe-exposure invariant."""
        allocation = power_aware_allocation(snrs, SMALL_CONFIG)
        rank_of = {
            device: rank
            for rank, device in enumerate(np.argsort(snrs)[::-1])
        }
        by_shift = sorted(allocation.items(), key=lambda kv: kv[1])
        for (dev_a, _), (dev_b, _) in zip(by_shift, by_shift[1:]):
            assert abs(rank_of[dev_a] - rank_of[dev_b]) <= 2


class TestReceiverProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        st.integers(min_value=0, max_value=2**10 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_concurrent_decode_exact_at_high_snr(self, slots, payload_seed):
        """For ANY set of distinct SKIP-aligned shifts and ANY payloads,
        the concurrent decode at high SNR returns exactly what was sent
        — the core correctness property of distributed CSS coding."""
        from repro.channel.awgn import awgn
        from repro.core.dcss import (
            DeviceTransmission,
            compose_preamble_and_payload_symbols,
        )
        from repro.core.receiver import NetScatterReceiver

        rng = np.random.default_rng(payload_seed)
        shifts = [2 * s for s in slots]  # SKIP = 2 grid
        payloads = {
            i: rng.integers(0, 2, 6).tolist() for i in range(len(shifts))
        }
        txs = [
            DeviceTransmission(shift=shifts[i], bits=payloads[i])
            for i in range(len(shifts))
        ]
        symbols = compose_preamble_and_payload_symbols(
            SMALL_CONFIG.chirp_params, txs, rng=rng
        )
        noisy = [awgn(s, 15.0, rng) for s in symbols]
        receiver = NetScatterReceiver(
            SMALL_CONFIG, {i: shifts[i] for i in range(len(shifts))}
        )
        decode = receiver.decode_fast_symbols(noisy)
        for i in range(len(shifts)):
            assert decode.bits_of(i) == payloads[i]


class TestPermutationProperties:
    @given(st.permutations(list(range(8))))
    def test_lehmer_roundtrip(self, order):
        assert decode_permutation(encode_permutation(list(order)), 8) == list(
            order
        )

    @given(st.permutations(list(range(6))))
    def test_index_in_range(self, order):
        import math

        index = encode_permutation(list(order))
        assert 0 <= index < math.factorial(6)


class TestCapacityProperties:
    @given(
        st.floats(min_value=-40.0, max_value=-15.0),
        st.integers(min_value=1, max_value=64),
    )
    def test_capacity_monotone_and_superadditive_below_noise(self, snr, n):
        from repro.core.capacity import multiuser_capacity_bps
        from repro.utils.conversions import db_to_linear

        single = multiuser_capacity_bps(500e3, snr, 1)
        multi = multiuser_capacity_bps(500e3, snr, n)
        assert multi >= single
        # The linear-scaling claim only holds below the noise floor:
        # when the aggregate N*snr stays small, capacity is near N times
        # the single-device capacity.
        if n * db_to_linear(snr) < 0.2:
            assert multi >= 0.9 * n * single
