"""The abstract's headline claims, asserted end-to-end."""

import pytest

from repro.analysis.headline import (
    PAPER_ABSTRACT_CLAIMS,
    abstract_claims_hold,
    headline_summary,
)
from repro.channel.deployment import paper_deployment


@pytest.fixture(scope="module")
def summary():
    deployment = paper_deployment(rng=77)
    return headline_summary(deployment, n_rounds=2, rng=78)


class TestAbstractClaims:
    def test_windows_within_2x_of_paper(self, summary):
        assert abstract_claims_hold(summary, slack=2.0), summary

    def test_gain_window_ordering(self, summary):
        assert (
            summary["link_layer_gain_low"]
            < summary["link_layer_gain_high"]
        )
        assert (
            summary["latency_reduction_low"]
            < summary["latency_reduction_high"]
        )

    def test_orders_of_magnitude_concurrency(self, summary):
        """The abstract's '1-2 orders of magnitude higher transmission
        concurrency': 256 concurrent devices vs the 1-2 of prior
        backscatter systems and the 5-10 of Choir/FlipTracer."""
        assert summary["n_devices"] / 10 >= 25  # vs Choir's ~10
        assert summary["n_devices"] / 2 >= 100  # vs prior backscatter

    def test_high_end_near_67x(self, summary):
        assert summary["latency_reduction_high"] == pytest.approx(
            PAPER_ABSTRACT_CLAIMS["latency_reduction_high"], rel=0.25
        )
