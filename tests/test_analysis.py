"""Unit tests for air-time accounting, metrics and reports."""

import pytest

from repro.analysis.airtime import (
    lora_backscatter_poll_airtime_s,
    lora_network_latency_s,
    netscatter_link_layer_rate_bps,
    netscatter_network_latency_s,
    netscatter_round_airtime_s,
)
from repro.analysis.metrics import (
    ber,
    delivery_ratio,
    gain_factor,
    link_layer_rate_bps,
    network_phy_rate_bps,
    packet_error_rate,
    summarize_series,
)
from repro.analysis.reports import format_comparison, format_series, format_table
from repro.constants import QUERY_BITS_CONFIG1, QUERY_BITS_CONFIG2
from repro.errors import ConfigurationError, ReproError


class TestNetScatterAirtime:
    def test_config1_round_breakdown(self, config):
        airtime = netscatter_round_airtime_s(config, QUERY_BITS_CONFIG1)
        assert airtime.query_s == pytest.approx(32 / 160e3)
        assert airtime.preamble_s == pytest.approx(8 * 1.024e-3)
        assert airtime.payload_s == pytest.approx(40 * 1.024e-3)
        # Full round ~49.4 ms: the paper's flat latency line (Fig. 19).
        assert airtime.total_s == pytest.approx(49.35e-3, abs=0.05e-3)

    def test_config2_adds_11ms(self, config):
        cfg1 = netscatter_round_airtime_s(config, QUERY_BITS_CONFIG1)
        cfg2 = netscatter_round_airtime_s(config, QUERY_BITS_CONFIG2)
        assert cfg2.total_s - cfg1.total_s == pytest.approx(
            (1760 - 32) / 160e3
        )

    def test_latency_equals_round(self, config):
        assert netscatter_network_latency_s(
            config, QUERY_BITS_CONFIG1
        ) == pytest.approx(
            netscatter_round_airtime_s(config, QUERY_BITS_CONFIG1).total_s
        )

    def test_link_layer_rate_scales_with_devices(self, config):
        one = netscatter_link_layer_rate_bps(config, 1, QUERY_BITS_CONFIG1)
        many = netscatter_link_layer_rate_bps(
            config, 256, QUERY_BITS_CONFIG1
        )
        assert many == pytest.approx(256 * one)

    def test_delivery_derating(self, config):
        full = netscatter_link_layer_rate_bps(
            config, 10, QUERY_BITS_CONFIG1, delivery_ratio=1.0
        )
        derated = netscatter_link_layer_rate_bps(
            config, 10, QUERY_BITS_CONFIG1, delivery_ratio=0.5
        )
        assert derated == pytest.approx(0.5 * full)

    def test_invalid_inputs(self, config):
        with pytest.raises(ConfigurationError):
            netscatter_round_airtime_s(config, -1)
        with pytest.raises(ConfigurationError):
            netscatter_link_layer_rate_bps(config, 0, 32)
        with pytest.raises(ConfigurationError):
            netscatter_link_layer_rate_bps(
                config, 1, 32, delivery_ratio=1.5
            )


class TestLoRaAirtime:
    def test_poll_composition(self, params):
        poll = lora_backscatter_poll_airtime_s(
            8.7e3, payload_bits=40, params=params
        )
        expected = 28 / 160e3 + 8 * 1.024e-3 + 40 / 8.7e3
        assert poll == pytest.approx(expected)

    def test_preamble_required(self):
        with pytest.raises(ConfigurationError):
            lora_backscatter_poll_airtime_s(8.7e3)

    def test_network_latency_sums(self, params):
        single = lora_backscatter_poll_airtime_s(8.7e3, params=params)
        total = lora_network_latency_s([8.7e3] * 10, params=params)
        assert total == pytest.approx(10 * single)

    def test_invalid_bitrate(self, params):
        with pytest.raises(ConfigurationError):
            lora_backscatter_poll_airtime_s(0.0, params=params)


class TestMetrics:
    def test_ber(self):
        assert ber([1, 0, 1, 0], [1, 1, 1, 0]) == pytest.approx(0.25)

    def test_ber_empty_rejected(self):
        with pytest.raises(ReproError):
            ber([], [])

    def test_per_and_delivery(self):
        outcomes = [True, True, False, True]
        assert packet_error_rate(outcomes) == pytest.approx(0.25)
        assert delivery_ratio(outcomes) == pytest.approx(0.75)

    def test_rates(self):
        assert network_phy_rate_bps(1000.0, 1.0) == 1000.0
        assert link_layer_rate_bps(1000.0, 2.0) == 500.0

    def test_gain_factor(self):
        assert gain_factor(62.0, 1.0) == 62.0
        with pytest.raises(ReproError):
            gain_factor(1.0, 0.0)

    def test_summary(self):
        rows = [{"x": 1.0}, {"x": 3.0}]
        summary = summarize_series(rows, "x")
        assert summary == {"mean": 2.0, "min": 1.0, "max": 3.0}


class TestReports:
    def test_table_formatting(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, ["a", "b"], title="demo")
        assert "demo" in text
        assert "2.5" in text

    def test_table_missing_column_rejected(self):
        with pytest.raises(ReproError):
            format_table([{"a": 1}], ["a", "missing"])

    def test_series_downsamples(self):
        x = list(range(1000))
        y = list(range(1000))
        text = format_series(x, y, "x", "y", max_rows=10)
        assert len(text.splitlines()) < 120

    def test_series_length_mismatch(self):
        with pytest.raises(ReproError):
            format_series([1], [1, 2], "x", "y")

    def test_comparison(self):
        text = format_comparison(
            {"gain": 58.0}, {"gain": 61.9}, title="fig18"
        )
        assert "61.9" in text and "58" in text

    def test_comparison_no_overlap_rejected(self):
        with pytest.raises(ReproError):
            format_comparison({"a": 1.0}, {"b": 1.0})
