"""Unit tests for repro.utils.bits."""

import pytest

from repro.errors import ProtocolError
from repro.utils.bits import (
    append_crc8,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    check_crc8,
    crc8,
    crc16_ccitt,
    hamming_distance,
    int_to_bits,
    random_bits,
)


class TestIntBits:
    def test_basic(self):
        assert int_to_bits(5, 4) == [0, 1, 0, 1]

    def test_roundtrip(self):
        for value in (0, 1, 127, 255, 511, 65535):
            width = max(1, value.bit_length())
            assert bits_to_int(int_to_bits(value, width)) == value

    def test_zero_width(self):
        assert int_to_bits(0, 0) == []

    def test_overflow_rejected(self):
        with pytest.raises(ProtocolError):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            int_to_bits(-1, 4)

    def test_bits_to_int_rejects_nonbinary(self):
        with pytest.raises(ProtocolError):
            bits_to_int([0, 2, 1])


class TestByteBits:
    def test_roundtrip(self):
        data = bytes([0x00, 0xFF, 0xA5, 0x3C])
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_non_octet_length_rejected(self):
        with pytest.raises(ProtocolError):
            bits_to_bytes([1, 0, 1])


class TestCrc8:
    def test_deterministic(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert crc8(bits) == crc8(bits)

    def test_detects_single_bit_flip(self):
        bits = int_to_bits(0xDEAD, 16)
        framed = append_crc8(bits)
        for position in range(len(framed)):
            corrupted = list(framed)
            corrupted[position] ^= 1
            assert not check_crc8(corrupted), f"flip at {position} missed"

    def test_valid_frame_passes(self):
        framed = append_crc8([1, 0, 1, 0, 1, 0])
        assert check_crc8(framed)

    def test_short_frame_fails(self):
        assert not check_crc8([1, 0, 1])

    def test_empty_payload(self):
        framed = append_crc8([])
        assert len(framed) == 8
        assert check_crc8(framed)

    def test_rejects_nonbinary(self):
        with pytest.raises(ProtocolError):
            crc8([0, 1, 3])


class TestCrc16:
    def test_known_value_deterministic(self):
        bits = bytes_to_bits(b"123456789")
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(bits) == 0x29B1

    def test_detects_flip(self):
        bits = bytes_to_bits(b"hello")
        reference = crc16_ccitt(bits)
        bits[7] ^= 1
        assert crc16_ccitt(bits) != reference


class TestRandomBits:
    def test_length(self, rng):
        assert len(random_bits(100, rng)) == 100

    def test_binary_values(self, rng):
        assert set(random_bits(1000, rng)) <= {0, 1}

    def test_roughly_balanced(self, rng):
        bits = random_bits(10000, rng)
        assert 0.45 < sum(bits) / len(bits) < 0.55

    def test_negative_rejected(self, rng):
        with pytest.raises(ProtocolError):
            random_bits(-1, rng)


class TestHamming:
    def test_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_all_different(self):
        assert hamming_distance([1, 1, 1], [0, 0, 0]) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            hamming_distance([1, 0], [1, 0, 1])
