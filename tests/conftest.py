"""Shared fixtures for the NetScatter reproduction test suite."""

import numpy as np
import pytest

from repro.core.config import NetScatterConfig
from repro.phy.chirp import ChirpParams


@pytest.fixture
def rng():
    """Deterministic generator; tests must not depend on global state."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def params():
    """The deployment chirp parameters (500 kHz, SF 9)."""
    return ChirpParams(bandwidth_hz=500e3, spreading_factor=9)


@pytest.fixture
def small_params():
    """A small symbol (SF 6) for tests where speed matters."""
    return ChirpParams(bandwidth_hz=125e3, spreading_factor=6)


@pytest.fixture
def config():
    """The deployment NetScatter configuration."""
    return NetScatterConfig()


@pytest.fixture
def small_config():
    """A small configuration for fast end-to-end tests."""
    return NetScatterConfig(
        bandwidth_hz=125e3, spreading_factor=6, skip=2,
        n_association_shifts=0,
    )
