"""Integration tests: full association -> concurrent round -> decode,
exercising the waveform path end-to-end across modules."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.config import NetScatterConfig
from repro.core.dcss import DeviceTransmission, compose_frame
from repro.core.receiver import NetScatterReceiver
from repro.hardware.device import BackscatterDevice, DeviceState
from repro.protocol.ap import AccessPoint
from repro.utils.rng import make_rng


class TestAssociationToDataFlow:
    def test_full_protocol_round(self, config):
        """Fig. 10's flow: device 1 is a member; device 2 joins; both
        then transmit concurrently and decode."""
        rng = make_rng(99)
        ap = AccessPoint(config)
        params = config.chirp_params

        shift1 = ap.run_association(1, measured_snr_db=15.0)
        device1 = BackscatterDevice(1, params, rng=rng)
        device1.begin_association(-30.0)
        device1.complete_association(shift1, -30.0)

        shift2 = ap.run_association(2, measured_snr_db=8.0)
        device2 = BackscatterDevice(2, params, rng=rng)
        device2.begin_association(-42.0)
        device2.complete_association(shift2, -42.0)

        assert device1.state is DeviceState.ASSOCIATED
        assert device2.state is DeviceState.ASSOCIATED
        assert shift1 != shift2

        bits1 = device1.random_payload(16)
        bits2 = device2.random_payload(16)
        txs = [
            DeviceTransmission(shift=shift1, bits=bits1),
            DeviceTransmission(shift=shift2, bits=bits2),
        ]
        stream = compose_frame(
            params,
            txs,
            leading_silence_samples=300,
            trailing_silence_samples=2 * params.n_samples,
            rng=rng,
        )
        stream = awgn(stream, 0.0, rng)
        decode = ap.receiver().decode_frame(stream, n_payload_bits=16)
        assert decode.bits_of(1) == bits1
        assert decode.bits_of(2) == bits2

    def test_device_waveforms_through_receiver(self, small_config):
        """BackscatterDevice-generated packets (with real impairment
        draws) decode through the receiver on a shared timeline."""
        rng = make_rng(7)
        params = small_config.chirp_params
        payload = [1, 0, 1, 1, 0, 0, 1, 0]

        devices = []
        assignments = {}
        for device_id, shift in ((0, 4), (1, 24), (2, 44)):
            device = BackscatterDevice(device_id, params, rng=rng)
            device.begin_association(-30.0)
            device.complete_association(shift, -30.0)
            devices.append(device)
            assignments[device_id] = shift

        txs = []
        for device in devices:
            _, impairments = device.transmit_packet(payload)
            txs.append(
                DeviceTransmission(
                    shift=device.assigned_shift,
                    bits=payload,
                    power_gain_db=impairments.power_gain_db,
                    delay_s=impairments.hardware_delay_s,
                    cfo_hz=impairments.cfo_hz,
                )
            )
        # Common-mode delay is absorbed by synchronisation; model it by
        # removing the mean before composing on the ideal timeline.
        mean_delay = float(np.mean([t.delay_s for t in txs]))
        for tx in txs:
            tx.delay_s -= mean_delay

        stream = compose_frame(
            params,
            txs,
            leading_silence_samples=100,
            trailing_silence_samples=2 * params.n_samples,
            rng=rng,
        )
        stream = awgn(stream, 5.0, rng)
        receiver = NetScatterReceiver(small_config, assignments)
        decode = receiver.decode_frame(stream, n_payload_bits=len(payload))
        for device_id in assignments:
            assert decode.bits_of(device_id) == payload


class TestNearFarIntegration:
    def test_power_aware_allocation_protects_weak_device(self, config):
        """With a 30 dB strong interferer, the weak device survives when
        allocated far away and fails when forced adjacent — the
        allocation ablation at waveform level."""
        from repro.core.dcss import compose_preamble_and_payload_symbols

        payload = [1, 0, 1, 1, 0, 1, 0, 0] * 3
        # The interferer's payload must differ from the victim's, else
        # its leakage coincides with the victim's own '1' symbols and
        # masks the interference.
        interferer_payload = [1 - b for b in payload]
        delta_db = 30.0

        def ber_at(strong_shift):
            generator = make_rng(17)
            txs = [
                DeviceTransmission(shift=0, bits=payload),
                DeviceTransmission(
                    shift=strong_shift,
                    bits=interferer_payload,
                    power_gain_db=delta_db,
                ),
            ]
            symbols = compose_preamble_and_payload_symbols(
                config.chirp_params, txs, rng=generator
            )
            symbols = [awgn(s, -5.0, generator) for s in symbols]
            receiver = NetScatterReceiver(
                config, {0: 0, 1: strong_shift}, detection_snr_db=-100.0
            )
            decode = receiver.decode_fast_symbols(symbols)
            got = decode.bits_of(0)
            return sum(1 for a, b in zip(payload, got) if a != b) / len(
                payload
            )

        far = ber_at(256)
        near = ber_at(2)
        assert far == 0.0
        assert near > 0.2

    def test_adjacent_5db_resilience(self, config):
        """Section 4.3: a device SKIP = 2 away tolerates a ~5 dB stronger
        neighbour."""
        from repro.core.dcss import compose_preamble_and_payload_symbols

        generator = make_rng(21)
        payload = [1, 0] * 10
        neighbour_payload = [0, 1] * 10  # anti-correlated: worst case
        txs = [
            DeviceTransmission(shift=0, bits=payload),
            DeviceTransmission(
                shift=2, bits=neighbour_payload, power_gain_db=5.0
            ),
        ]
        symbols = compose_preamble_and_payload_symbols(
            config.chirp_params, txs, rng=generator
        )
        symbols = [awgn(s, 0.0, generator) for s in symbols]
        receiver = NetScatterReceiver(config, {0: 0, 1: 2})
        decode = receiver.decode_fast_symbols(symbols)
        assert decode.bits_of(0) == payload
        assert decode.bits_of(1) == neighbour_payload


class TestCapacityConsistency:
    def test_throughput_approaches_capacity_regime(self, config):
        """The deployed operating point (SKIP 2) delivers half the BW
        ceiling; the capacity model must agree on the ordering."""
        from repro.core.capacity import (
            multiuser_capacity_bps,
            netscatter_utilisation,
        )

        full = NetScatterConfig(n_association_shifts=0)
        achieved = full.aggregate_throughput_bps
        assert netscatter_utilisation(achieved, 500e3) == pytest.approx(0.5)
        # At -20 dB per device, 256 devices: capacity comfortably above
        # the achieved 250 kbps (coding is not capacity-achieving).
        capacity = multiuser_capacity_bps(500e3, -20.0, 256)
        assert capacity > achieved
