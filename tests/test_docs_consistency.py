"""Docs-consistency gate: the documentation suite cannot silently rot.

Three classes of drift this catches in tier-1:

* the documented hot-path modules must keep runnable doctest examples
  (and stay registered with the ``tests/test_doctests.py`` collector);
* the docs pages and the README must exist and keep naming the
  load-bearing anchors they document (env vars, schema names, modes,
  measured crossovers) — if a rename lands without a docs update, this
  fails;
* ``BENCH_fastpath.json`` must parse against the documented schema v2
  (via ``perf_smoke.validate_report``, the same validator the
  benchmark tool applies before every write) and carry the
  payload-noise trajectory entry.
"""

import doctest
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The hot-path modules the docs suite documents with runnable
#: examples; each must be registered with the doctest collector.
DOCUMENTED_MODULES = [
    "repro.phy.sparse_readout",
    "repro.phy.backend_plan",
    "repro.phy.noise",
    "repro.campaign.spec",
    "repro.campaign.store",
    "repro.campaign.faults",
    "repro.campaign.runner",
    "repro.campaign.storage",
    "repro.campaign.objectstore",
    "repro.campaign.service",
    "repro.campaign.client",
    "repro.core.allocation",
    "repro.core.capacity",
    "repro.protocol.population",
]

#: Load-bearing anchors per documentation file: strings that must keep
#: appearing as long as the thing they document exists.
DOC_ANCHORS = {
    "docs/PERFORMANCE.md": [
        "REPRO_BACKEND_CALIBRATION",
        "bench-fastpath-v2",
        "gauss_elem_s",
        "noise_mode",
        "145 devices",  # measured analytic->FFT crossover, SF 9
        "S·N·D·W",      # the sparse backend's scaling law
        "speedup_payload_vs_full",
        "perf_smoke.py --quick",
    ],
    "docs/ARCHITECTURE.md": [
        "compose_rounds",
        "compose_readout",
        "decode_readout",
        "_decide_chunk",
        "NoiseStream",
        "noise_mode=\"payload\"",
        "step_tracks",
        "located_bin_noise_covariance",
        "CampaignSpec",
        "content_hash",
        "resolve_pool_workers",
        "child_seed",
        "python -m repro.campaign",
        "REPRO_FAULT_PLAN",
        "RetryPolicy",
        "quarantine",
        "leases/<hash>.lease",
        "StorageDriver",
        "put_atomic",
        "put_exclusive",
        "REPRO_STORAGE_FAULT_PLAN",
        "PersistentStorageError",
        "read-only serving",
        "python -m repro.campaign serve",
        "http://host:port/bucket",
        "X-Repro-Sha256",
        "If-None-Match: *",
        "CircuitOpenError",
        "half-open",
        "serve-api",
        "POST /campaigns",
        "/healthz",
        "campaign_id_for",
        "CampaignServiceClient",
        "max_backlog",
        "points_computed == 0",
    ],
    "docs/SCALING.md": [
        "Population",
        "backend=\"object\"",
        "bulk_add",
        "spread_slot_indices",
        "span_group_bounds",
        "FidelityRule",
        "closed_form_min_snr_db",
        "validity_floor",
        "contended",
        "audit_fraction",
        "hybrid_population_round",
        "office_population",
        "population_scale",
        "scale-smoke",
        "--devices 100000",
        "tests/test_population_scale.py",
    ],
    "README.md": [
        "docs/PERFORMANCE.md",
        "docs/ARCHITECTURE.md",
        "noise_mode",
        "BENCH_fastpath.json",
        "python -m repro.campaign",
        ".github/workflows/ci.yml",
        "REPRO_FAULT_PLAN",
        "timeout-minutes",
        "--storage-driver",
        "REPRO_STORAGE_FAULT_PLAN",
        "repro.campaign serve",
        "http://hostA:8123/campaign",
        "network-chaos",
        "serve-api",
        "--service http://hostA:8124",
        "/healthz",
        "service-chaos",
        "docs/SCALING.md",
        "--devices 100000",
        "hybrid fidelity",
    ],
}


class TestCiPipeline:
    """The CI workflow exists and keeps its load-bearing pieces."""

    def test_workflow_exists_with_required_jobs(self):
        path = REPO_ROOT / ".github" / "workflows" / "ci.yml"
        assert path.exists(), "CI workflow is missing"
        text = path.read_text()
        for anchor in (
            "REPRO_SKIP_PERF_GUARD",
            "ruff check",
            "perf_smoke.py --quick",
            "REPRO_BACKEND_CALIBRATION",
            "validate_report",
            "REPRO_FAULT_PLAN",
            "fault-injection",
            "storage-fault",
            "--storage-fault-plan",
            "status --json",
            "network-chaos",
            "repro.campaign serve",
            "--storage-driver http://",
            "service-chaos",
            "serve-api",
            "--service-fault-plan",
            "submit --service",
            "scale-smoke",
            "test_population_scale.py",
        ):
            assert anchor in text, f"ci.yml lost {anchor!r}"

    def test_every_job_is_time_bounded(self):
        # A hung job must never burn a runner's 6-hour default: each
        # job carries an explicit timeout-minutes bound.
        text = (
            REPO_ROOT / ".github" / "workflows" / "ci.yml"
        ).read_text()
        n_jobs = text.count("runs-on:")
        assert n_jobs >= 4
        assert text.count("timeout-minutes:") == n_jobs

    def test_ruff_config_present(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.ruff" in text


def _load_perf_smoke():
    """Import benchmarks/perf_smoke.py without requiring a package."""
    path = REPO_ROOT / "benchmarks" / "perf_smoke.py"
    spec = importlib.util.spec_from_file_location("perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_smoke", module)
    spec.loader.exec_module(module)
    return module


class TestDoctestCoverage:
    @pytest.mark.parametrize("name", DOCUMENTED_MODULES)
    def test_documented_modules_have_doctests(self, name):
        module = __import__(name, fromlist=["_"])
        examples = [
            test
            for test in doctest.DocTestFinder().find(module)
            if test.examples
        ]
        assert examples, f"{name} documents no runnable examples"

    @pytest.mark.parametrize("name", DOCUMENTED_MODULES)
    def test_documented_modules_registered_with_collector(self, name):
        from test_doctests import MODULES_WITH_DOCTESTS

        assert name in [m.__name__ for m in MODULES_WITH_DOCTESTS], (
            f"{name} is documented but not run by test_doctests.py"
        )


class TestDocAnchors:
    @pytest.mark.parametrize("relpath", sorted(DOC_ANCHORS))
    def test_docs_exist_and_keep_their_anchors(self, relpath):
        path = REPO_ROOT / relpath
        assert path.exists(), f"{relpath} is missing"
        text = path.read_text()
        assert len(text) > 1500, f"{relpath} is a stub"
        missing = [a for a in DOC_ANCHORS[relpath] if a not in text]
        assert not missing, (
            f"{relpath} lost anchors {missing} — update the docs "
            "alongside the code"
        )

    def test_docs_cross_link_each_other(self):
        performance = (REPO_ROOT / "docs/PERFORMANCE.md").read_text()
        architecture = (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()
        assert "ARCHITECTURE.md" in performance
        assert "PERFORMANCE.md" in architecture


class TestBenchSchema:
    def test_repo_bench_file_validates(self):
        perf_smoke = _load_perf_smoke()
        report = json.loads(
            (REPO_ROOT / "BENCH_fastpath.json").read_text()
        )
        perf_smoke.validate_report(report)  # raises on drift

    def test_repo_bench_has_payload_noise_entry(self):
        """The perf trajectory records the PR-4 noise-stream headline."""
        report = json.loads(
            (REPO_ROOT / "BENCH_fastpath.json").read_text()
        )
        entries = [
            run["noise_modes"]
            for run in report["runs"]
            if "noise_modes" in run
        ]
        assert entries, "no noise_modes entry recorded yet"
        latest = entries[-1]
        assert latest["full"]["noise_version"] == 1
        assert latest["payload"]["noise_version"] == 2
        assert latest["speedup_payload_vs_full"] > 0

    def test_validator_rejects_drift(self):
        perf_smoke = _load_perf_smoke()
        with pytest.raises(ValueError):
            perf_smoke.validate_report({"schema": "bench-fastpath-v1"})
        with pytest.raises(ValueError):
            perf_smoke.validate_report(
                {"schema": "bench-fastpath-v2", "runs": []}
            )
        with pytest.raises(ValueError):
            perf_smoke.validate_report(
                {
                    "schema": "bench-fastpath-v2",
                    "runs": [
                        {
                            "timestamp": "t",
                            "host": {},
                            "fig12": {"wall_clock_s": -1.0},
                        }
                    ],
                }
            )
        # Booleans are not numbers (bool subclasses int in Python),
        # and entries nested inside lists are still visited.
        with pytest.raises(ValueError):
            perf_smoke.validate_report(
                {
                    "schema": "bench-fastpath-v2",
                    "runs": [
                        {
                            "timestamp": "t",
                            "host": {},
                            "fig12": {"speedup": True},
                        }
                    ],
                }
            )
        with pytest.raises(ValueError):
            perf_smoke.validate_report(
                {
                    "schema": "bench-fastpath-v2",
                    "runs": [
                        {
                            "timestamp": "t",
                            "host": {},
                            "points": [{"wall_clock_s": -3.0}],
                        }
                    ],
                }
            )
        # Quick runs must carry the headline sections.
        with pytest.raises(ValueError):
            perf_smoke.validate_report(
                {
                    "schema": "bench-fastpath-v2",
                    "runs": [
                        {"timestamp": "t", "host": {}, "quick": True}
                    ],
                }
            )

    def test_validator_tolerates_older_section_layouts(self):
        """Append-only history: presence rules bind only the newest run.

        A quick run recorded by an older perf_smoke (no noise_modes
        section) must not block future benchmarking.
        """
        perf_smoke = _load_perf_smoke()
        historical_quick = {
            "timestamp": "t0",
            "host": {},
            "quick": True,
            "fig17_point256": {"speedup_auto": 1.5},
            "fading": {"speedup_batched_vs_legacy": 2.0},
        }
        current = {
            "timestamp": "t1",
            "host": {},
            "fig12": {"speedup": 9.0},
        }
        perf_smoke.validate_report(
            {
                "schema": "bench-fastpath-v2",
                "runs": [historical_quick, current],
            }
        )
