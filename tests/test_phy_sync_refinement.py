"""Tests for the assignment-aware sample-accurate sync refinement."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.dcss import DeviceTransmission, compose_frame
from repro.errors import SynchronizationError
from repro.phy.sync import PreambleSynchronizer


def _scene(params, shifts, start, rng, snr_db=None, payload=(1, 0)):
    txs = [DeviceTransmission(shift=s, bits=list(payload)) for s in shifts]
    stream = compose_frame(
        params,
        txs,
        leading_silence_samples=start,
        trailing_silence_samples=2 * params.n_samples,
        rng=rng,
    )
    if snr_db is not None:
        stream = awgn(stream, snr_db, rng)
    return stream


class TestRefineWithShifts:
    def test_corrects_coarse_error(self, small_params, rng):
        start = 96
        shifts = [4, 20, 40]
        stream = _scene(small_params, shifts, start, rng, snr_db=10.0)
        sync = PreambleSynchronizer(small_params)
        for coarse_error in (-5, -2, 0, 3, 6):
            refined = sync.refine_with_shifts(
                stream, start + coarse_error, shifts
            )
            assert refined == start, f"coarse error {coarse_error}"

    def test_single_device(self, small_params, rng):
        start = 80
        stream = _scene(small_params, [12], start, rng, snr_db=5.0)
        sync = PreambleSynchronizer(small_params)
        assert sync.refine_with_shifts(stream, start + 4, [12]) == start

    def test_below_noise_population(self, params, rng):
        """With 8 devices at -8 dB the combined correlation energy still
        pins the start to the sample."""
        start = 200
        shifts = [0, 64, 128, 192, 256, 320, 384, 448]
        stream = _scene(params, shifts, start, rng, snr_db=-8.0)
        sync = PreambleSynchronizer(params)
        refined = sync.refine_with_shifts(stream, start + 5, shifts)
        assert abs(refined - start) <= 1

    def test_requires_shifts(self, small_params, rng):
        stream = _scene(small_params, [4], 50, rng)
        sync = PreambleSynchronizer(small_params)
        with pytest.raises(SynchronizationError):
            sync.refine_with_shifts(stream, 50, [])

    def test_short_stream_rejected(self, small_params):
        sync = PreambleSynchronizer(small_params)
        with pytest.raises(SynchronizationError):
            sync.refine_with_shifts(
                np.zeros(10, dtype=complex), 0, [4]
            )

    def test_end_to_end_sync_quality(self, small_config, rng):
        """Coarse + refined sync through the receiver: the reported
        start matches the truth at moderate SNR."""
        from repro.core.receiver import NetScatterReceiver

        params = small_config.chirp_params
        start = 133
        payload = [1, 0, 1, 1]
        txs = [
            DeviceTransmission(shift=4, bits=payload),
            DeviceTransmission(shift=32, bits=payload),
        ]
        stream = compose_frame(
            params,
            txs,
            leading_silence_samples=start,
            trailing_silence_samples=2 * params.n_samples,
            rng=rng,
        )
        stream = awgn(stream, 3.0, rng)
        receiver = NetScatterReceiver(small_config, {0: 4, 1: 32})
        decode = receiver.decode_frame(stream, n_payload_bits=4)
        assert abs(decode.start_sample - start) <= 1
        assert decode.bits_of(0) == payload
