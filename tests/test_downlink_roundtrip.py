"""Downlink integration: AP query as an ASK waveform through the tag's
envelope detector, parsed back into protocol fields."""

import numpy as np

from repro.hardware.envelope_detector import EnvelopeDetector, ask_modulate
from repro.protocol.messages import (
    AssociationResponse,
    QueryMessage,
    parse_query_bits,
)


class TestDownlinkRoundtrip:
    def _through_the_air(self, bits, rng, noise=0.05, samples_per_bit=8):
        envelope = ask_modulate(bits, samples_per_bit)
        noisy = np.abs(
            envelope + rng.normal(scale=noise, size=envelope.size)
        )
        detector = EnvelopeDetector()
        return detector.demodulate_ask(noisy, samples_per_bit)

    def test_bare_query(self, rng):
        query = QueryMessage(group_id=3)
        received = self._through_the_air(query.to_bits(), rng)
        parsed = parse_query_bits(received)
        assert parsed.group_id == 3
        assert parsed.association is None

    def test_query_with_grant(self, rng):
        query = QueryMessage(
            group_id=0,
            association=AssociationResponse(network_id=77, cyclic_shift=120),
        )
        received = self._through_the_air(query.to_bits(), rng)
        parsed = parse_query_bits(received)
        assert parsed.association.network_id == 77
        assert parsed.association.cyclic_shift == 120

    def test_reassignment_query(self, rng):
        order = [4, 2, 0, 3, 1, 5]
        query = QueryMessage(reassignment_order=order)
        received = self._through_the_air(query.to_bits(), rng)
        parsed = parse_query_bits(received, n_reassignment_devices=6)
        assert parsed.reassignment_order == order

    def test_heavy_noise_corrupts(self, rng):
        """Sanity: enough envelope noise must eventually corrupt bits
        (the demodulator is not magic)."""
        query = QueryMessage(group_id=255)
        corrupted = 0
        for _ in range(20):
            received = self._through_the_air(
                query.to_bits(), rng, noise=0.8
            )
            if received != query.to_bits():
                corrupted += 1
        assert corrupted > 0

    def test_query_airtime_consistency(self):
        """The serialised field count stays within the framed n_bits
        budget (header bits cover sync/len/CRC, not the fields)."""
        for query in (
            QueryMessage(),
            QueryMessage(
                association=AssociationResponse(network_id=1, cyclic_shift=2)
            ),
            QueryMessage(reassignment_order=list(range(16))),
        ):
            assert len(query.to_bits()) <= query.n_bits
