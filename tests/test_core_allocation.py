"""Unit tests for power-aware cyclic-shift allocation."""

import numpy as np
import pytest

from repro.core.allocation import (
    AllocationTable,
    association_shifts,
    cyclic_bin_distance,
    power_aware_allocation,
    random_allocation,
)
from repro.core.config import NetScatterConfig
from repro.errors import AllocationError


class TestCyclicDistance:
    def test_simple(self):
        assert cyclic_bin_distance(0, 10, 512) == 10

    def test_wraps(self):
        assert cyclic_bin_distance(2, 510, 512) == 4

    def test_symmetry(self):
        assert cyclic_bin_distance(5, 100, 512) == cyclic_bin_distance(
            100, 5, 512
        )

    def test_max_is_half_ring(self):
        assert cyclic_bin_distance(0, 256, 512) == 256


class TestPowerAwareAllocation:
    def test_all_shifts_skip_aligned(self, config):
        snrs = list(np.linspace(-10, 25, 100))
        allocation = power_aware_allocation(snrs, config)
        assert all(s % config.skip == 0 for s in allocation.values())

    def test_unique_shifts(self, config):
        snrs = list(np.linspace(-10, 25, 200))
        allocation = power_aware_allocation(snrs, config)
        shifts = list(allocation.values())
        assert len(set(shifts)) == len(shifts)

    def test_weakest_far_from_strongest(self, config):
        """The folded layout: the weakest device must sit at a large
        cyclic distance from the strongest."""
        snrs = list(np.linspace(0, 35, 64))
        allocation = power_aware_allocation(snrs, config)
        strongest = int(np.argmax(snrs))
        weakest = int(np.argmin(snrs))
        distance = cyclic_bin_distance(
            allocation[strongest], allocation[weakest], config.n_bins
        )
        assert distance > config.n_bins / 4

    def test_neighbours_have_similar_snr(self, config):
        """Adjacent (in bin space) devices must have small SNR deltas —
        the property that keeps side-lobe exposure tolerable."""
        rng = np.random.default_rng(5)
        snrs = rng.uniform(0.0, 35.0, size=128).tolist()
        allocation = power_aware_allocation(snrs, config)
        by_shift = sorted(
            (shift, snrs[dev]) for dev, shift in allocation.items()
        )
        deltas = [
            abs(a[1] - b[1]) for a, b in zip(by_shift, by_shift[1:])
        ]
        # Neighbour deltas must be far below the population spread.
        assert float(np.median(deltas)) < 5.0

    def test_under_capacity_spreads_out(self, config):
        """Section 4.4: fewer than half the devices means an effective
        separation of more than SKIP bins."""
        snrs = list(np.linspace(0, 30, 64))
        allocation = power_aware_allocation(snrs, config)
        shifts = sorted(allocation.values())
        gaps = np.diff(shifts)
        assert np.min(gaps) >= 2 * config.skip

    def test_capacity_enforced(self, config):
        snrs = [0.0] * (config.max_devices + 1)
        with pytest.raises(AllocationError):
            power_aware_allocation(snrs, config)

    def test_empty_rejected(self, config):
        with pytest.raises(AllocationError):
            power_aware_allocation([], config)

    def test_avoids_association_shifts(self):
        config = NetScatterConfig()  # two association shifts reserved
        snrs = list(np.linspace(0, 35, config.max_devices))
        allocation = power_aware_allocation(snrs, config)
        reserved = set(association_shifts(config))
        assert reserved.isdisjoint(set(allocation.values()))


class TestRandomAllocation:
    def test_skip_aligned_and_unique(self, config, rng):
        allocation = random_allocation(64, config, rng)
        shifts = list(allocation.values())
        assert len(set(shifts)) == 64
        assert all(s % config.skip == 0 for s in shifts)

    def test_capacity_enforced(self, config, rng):
        with pytest.raises(AllocationError):
            random_allocation(config.max_devices + 1, config, rng)


class TestAssociationShifts:
    def test_two_regions(self, config):
        shifts = association_shifts(config)
        assert len(shifts) == 2
        assert shifts[0] == 0
        # The low-SNR association shift sits mid-ring.
        assert abs(shifts[1] - config.n_bins // 2) <= config.skip

    def test_zero_reserved(self):
        config = NetScatterConfig(n_association_shifts=0)
        assert association_shifts(config) == []


class TestAllocationTable:
    def test_add_and_assign(self, config):
        table = AllocationTable(config)
        shift, reassigned = table.add_device(1, snr_db=10.0)
        assert shift % config.skip == 0
        assert not reassigned
        assert table.n_devices == 1

    def test_duplicate_rejected(self, config):
        table = AllocationTable(config)
        table.add_device(1, 10.0)
        with pytest.raises(AllocationError):
            table.add_device(1, 12.0)

    def test_validate_passes_after_adds(self, config, rng):
        table = AllocationTable(config)
        for device_id in range(32):
            table.add_device(device_id, float(rng.uniform(0, 35)))
        table.validate()

    def test_remove_respreads(self, config):
        table = AllocationTable(config)
        for device_id in range(8):
            table.add_device(device_id, float(device_id))
        table.remove_device(3)
        assert table.n_devices == 7
        table.validate()

    def test_remove_unknown_rejected(self, config):
        table = AllocationTable(config)
        with pytest.raises(AllocationError):
            table.remove_device(99)

    def test_update_snr_rank_change_reassigns(self, config):
        table = AllocationTable(config)
        table.add_device(0, 30.0)
        table.add_device(1, 10.0)
        changed = table.update_snr(1, 40.0)  # now the strongest
        assert changed
        table.validate()

    def test_update_snr_same_rank_no_reassign(self, config):
        table = AllocationTable(config)
        table.add_device(0, 30.0)
        table.add_device(1, 10.0)
        changed = table.update_snr(1, 12.0)
        assert not changed

    def test_capacity_full(self):
        config = NetScatterConfig(
            bandwidth_hz=125e3, spreading_factor=6, skip=2,
            n_association_shifts=0,
        )
        table = AllocationTable(config)
        for device_id in range(table.capacity):
            table.add_device(device_id, float(device_id))
        with pytest.raises(AllocationError):
            table.add_device(9999, 0.0)

    def test_worst_case_exposure_safe_for_sorted(self, config):
        """A 30 dB population allocated power-aware should have negative
        worst-case margin (side lobes below every weak device)."""
        table = AllocationTable(config)
        for device_id, snr in enumerate(np.linspace(0, 30, 64)):
            table.add_device(device_id, float(snr))
        margin = table.worst_case_exposure_db()
        assert margin is not None
        assert margin < 0.0

    def test_exposure_none_for_single_device(self, config):
        table = AllocationTable(config)
        table.add_device(0, 10.0)
        assert table.worst_case_exposure_db() is None

    def test_min_distance_between(self, config):
        table = AllocationTable(config)
        table.add_device(0, 30.0)
        table.add_device(1, 0.0)
        distance = table.min_distance_between(0, 1)
        assert distance > config.n_bins / 4
