"""Unit tests for the composed BackscatterDevice behaviour."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.hardware.device import BackscatterDevice, DeviceState


@pytest.fixture
def device(params):
    return BackscatterDevice(device_id=7, params=params, rng=42)


class TestAssociationBehaviour:
    def test_initial_state(self, device):
        assert device.state is DeviceState.UNASSOCIATED
        assert device.assigned_shift is None

    def test_far_device_uses_max_power(self, device):
        gain = device.begin_association(query_rssi_dbm=-45.0)
        assert gain == 0.0

    def test_near_device_uses_middle_level(self, device):
        gain = device.begin_association(query_rssi_dbm=-25.0)
        assert gain == -4.0

    def test_complete_association(self, device):
        device.begin_association(-30.0)
        device.complete_association(assigned_shift=100, query_rssi_dbm=-30.0)
        assert device.state is DeviceState.ASSOCIATED
        assert device.assigned_shift == 100
        assert device.baseline_rssi_dbm == -30.0

    def test_cannot_associate_twice(self, device):
        device.begin_association(-30.0)
        device.complete_association(10, -30.0)
        with pytest.raises(ProtocolError):
            device.begin_association(-30.0)

    def test_invalid_shift_rejected(self, device, params):
        device.begin_association(-30.0)
        with pytest.raises(ProtocolError):
            device.complete_association(params.n_shifts, -30.0)

    def test_reset(self, device):
        device.begin_association(-30.0)
        device.complete_association(10, -30.0)
        device.reset_association()
        assert device.state is DeviceState.UNASSOCIATED
        assert device.assigned_shift is None

    def test_query_below_sensitivity_unheard(self, device):
        assert device.hear_query(-60.0) is None

    def test_query_above_sensitivity_heard(self, device):
        assert device.hear_query(-30.0) is not None


class TestPowerAdjustment:
    def _associated(self, params, rssi=-30.0):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        device.begin_association(rssi)
        device.complete_association(50, rssi)
        return device

    def test_requires_association(self, device):
        with pytest.raises(ProtocolError):
            device.adjust_power(-30.0)

    def test_stronger_channel_steps_down(self, params):
        device = self._associated(params)
        initial = device.switch.gain_db
        gain, participate = device.adjust_power(-25.0)  # 5 dB hotter
        assert participate
        assert gain < initial

    def test_weaker_channel_steps_up(self, params):
        device = self._associated(params)
        gain, participate = device.adjust_power(-35.0)  # 5 dB colder
        assert participate
        assert gain > -4.0

    def test_small_change_no_step(self, params):
        device = self._associated(params)
        gain, participate = device.adjust_power(-30.5)
        assert participate
        assert gain == -4.0

    def test_exhausted_levels_sit_out(self, params):
        device = self._associated(params)
        # Drive the channel much hotter repeatedly: -4 -> -10 -> stuck.
        device.adjust_power(-22.0)
        device.adjust_power(-22.0)
        gain, participate = device.adjust_power(-22.0)
        assert gain == -10.0
        assert not participate

    def test_reassociation_after_repeated_skips(self, params):
        device = self._associated(params)
        for _ in range(2):
            device.adjust_power(-22.0)
        for _ in range(4):
            if device.state is not DeviceState.ASSOCIATED:
                break
            device.adjust_power(-22.0)
        assert device.state is DeviceState.UNASSOCIATED

    def test_participation_resets_skip_counter(self, params):
        device = self._associated(params)
        device.adjust_power(-22.0)  # steps -4 -> -10, still participates
        device.adjust_power(-22.0)  # exhausted: sits out (1)
        device.adjust_power(-22.0)  # sits out (2)
        assert device.skipped_rounds == 2
        device.adjust_power(-30.0)  # back in range
        assert device.skipped_rounds == 0
        assert device.state is DeviceState.ASSOCIATED


class TestTransmission:
    def test_transmitter_requires_shift(self, device):
        with pytest.raises(ProtocolError):
            _ = device.transmitter

    def test_packet_waveform_length(self, params):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        device.begin_association(-30.0)
        device.complete_association(20, -30.0)
        waveform, impairments = device.transmit_packet([1, 0, 1, 1])
        assert waveform.size == (8 + 4) * params.n_samples
        assert impairments.hardware_delay_s >= 0.0
        assert impairments.power_gain_db == device.switch.gain_db

    def test_impairments_vary_per_packet(self, params):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        draws = {device.draw_impairments().hardware_delay_s for _ in range(10)}
        assert len(draws) > 1

    def test_random_payload(self, params):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        bits = device.random_payload(32)
        assert len(bits) == 32
        assert set(bits) <= {0, 1}

    def test_transmit_power_tracks_adjustment(self, params):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        device.begin_association(-30.0)
        device.complete_association(20, -30.0)
        device.adjust_power(-25.0)  # hotter channel -> step down
        waveform, _ = device.transmit_packet([1])
        n = params.n_samples
        preamble_power = float(np.mean(np.abs(waveform[:n]) ** 2))
        assert preamble_power == pytest.approx(10 ** (-1.0), rel=0.01)
