"""Unit tests for the AP query message and association frames."""

import math

import pytest

from repro.errors import ProtocolError
from repro.protocol.messages import (
    AssociationRequest,
    AssociationResponse,
    QueryMessage,
    bare_query_bits,
    decode_permutation,
    encode_permutation,
    full_reassignment_query_bits,
    parse_query_bits,
    reassignment_payload_bits,
)


class TestQueryLengths:
    def test_config1_is_32_bits(self):
        """Fig. 18's config 1: a bare query of 32 bits."""
        assert bare_query_bits() == 32

    def test_config2_near_1760_bits(self):
        """Fig. 18's config 2: full reassignment, ~1760 bits for 256
        devices (log2(256!) <= 1700 plus framing, padded to bytes)."""
        bits = full_reassignment_query_bits(256)
        assert 1700 <= bits <= 1760

    def test_reassignment_payload_entropy(self):
        assert reassignment_payload_bits(256) == math.ceil(
            math.log2(math.factorial(256))
        )
        assert reassignment_payload_bits(256) <= 1700

    def test_airtime_at_160kbps(self):
        """Config 2's ~11 ms downlink overhead (Section 3.3.3)."""
        query = QueryMessage(reassignment_order=list(range(256)))
        assert query.airtime_s == pytest.approx(11e-3, abs=1e-3)

    def test_association_response_adds_16_bits(self):
        bare = QueryMessage().n_bits
        with_assoc = QueryMessage(
            association=AssociationResponse(network_id=5, cyclic_shift=10)
        ).n_bits
        assert with_assoc == bare + 16


class TestPermutationCoding:
    def test_roundtrip_small(self):
        order = [2, 0, 3, 1]
        assert decode_permutation(encode_permutation(order), 4) == order

    def test_roundtrip_identity(self):
        order = list(range(10))
        assert encode_permutation(order) == 0
        assert decode_permutation(0, 10) == order

    def test_roundtrip_reversed(self):
        order = list(range(8))[::-1]
        assert decode_permutation(encode_permutation(order), 8) == order

    def test_roundtrip_random(self, rng):
        for _ in range(20):
            order = rng.permutation(12).tolist()
            assert decode_permutation(
                encode_permutation(order), 12
            ) == order

    def test_non_permutation_rejected(self):
        with pytest.raises(ProtocolError):
            encode_permutation([0, 0, 1])

    def test_index_out_of_range(self):
        with pytest.raises(ProtocolError):
            decode_permutation(math.factorial(5), 5)


class TestSerialisation:
    def test_bare_query_roundtrip(self):
        query = QueryMessage(group_id=7)
        parsed = parse_query_bits(query.to_bits())
        assert parsed.group_id == 7
        assert parsed.association is None
        assert parsed.reassignment_order is None

    def test_association_roundtrip(self):
        query = QueryMessage(
            group_id=1,
            association=AssociationResponse(network_id=42, cyclic_shift=99),
        )
        parsed = parse_query_bits(query.to_bits())
        assert parsed.association.network_id == 42
        assert parsed.association.cyclic_shift == 99

    def test_reassignment_roundtrip(self):
        order = [3, 1, 0, 2]
        query = QueryMessage(reassignment_order=order)
        parsed = parse_query_bits(
            query.to_bits(), n_reassignment_devices=4
        )
        assert parsed.reassignment_order == order

    def test_reassignment_needs_count(self):
        query = QueryMessage(reassignment_order=[1, 0])
        with pytest.raises(ProtocolError):
            parse_query_bits(query.to_bits())

    def test_short_query_rejected(self):
        with pytest.raises(ProtocolError):
            parse_query_bits([1, 0])

    def test_invalid_group_id(self):
        with pytest.raises(ProtocolError):
            QueryMessage(group_id=256)


class TestAssociationFrames:
    def test_response_field_widths(self):
        response = AssociationResponse(network_id=255, cyclic_shift=255)
        assert len(response.to_bits()) == 16

    def test_response_roundtrip(self):
        response = AssociationResponse(network_id=13, cyclic_shift=77)
        assert AssociationResponse.from_bits(response.to_bits()) == response

    def test_response_validation(self):
        with pytest.raises(ProtocolError):
            AssociationResponse(network_id=256, cyclic_shift=0)
        with pytest.raises(ProtocolError):
            AssociationResponse(network_id=0, cyclic_shift=300)

    def test_request_roundtrip(self):
        request = AssociationRequest(temporary_id=1234, duty_cycle_code=9)
        assert AssociationRequest.from_bits(request.to_bits()) == request

    def test_request_length_validation(self):
        with pytest.raises(ProtocolError):
            AssociationRequest.from_bits([0] * 10)
