"""Smoke tests: every experiment driver runs at reduced scale and its
shape checks hold. Full-scale runs back EXPERIMENTS.md and the benches."""

import pytest

from repro.channel.deployment import paper_deployment
from repro.experiments import (
    fig04_choir_cdf,
    fig07_power_gain,
    fig08_sidelobes,
    fig09_snr_variance,
    fig12_nearfar_ber,
    fig14_offsets,
    fig15_doppler_dr,
    fig16_spectrogram,
    fig17_phy_rate,
    fig18_linklayer,
    fig19_latency,
    sec22_analytics,
    table1_configs,
)
from repro.experiments.common import ExperimentResult, geometric_sweep


@pytest.fixture(scope="module")
def deployment():
    return paper_deployment(rng=11)


class TestCommon:
    def test_report_renders(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            rows=[{"a": 1.0}],
            columns=["a"],
        )
        result.check("always", True)
        text = result.report()
        assert "PASS" in text and "demo" in text

    def test_empty_rows_rejected(self):
        result = ExperimentResult(experiment_id="x", title="demo")
        with pytest.raises(Exception):
            result.report()

    def test_column_extraction(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            rows=[{"a": 1.0}, {"a": 2.0}],
            columns=["a"],
        )
        assert result.column("a") == [1.0, 2.0]

    def test_geometric_sweep(self):
        assert geometric_sweep(1, 16) == [1, 2, 4, 8, 16]
        assert geometric_sweep(1, 10)[-1] == 10


class TestAnalyticExperiments:
    def test_fig04(self):
        result = fig04_choir_cdf.run(n_devices=12, n_packets=20, rng=1)
        assert result.all_checks_pass(), result.report()

    def test_table1(self):
        result = table1_configs.run()
        assert result.all_checks_pass(), result.report()

    def test_fig07(self):
        result = fig07_power_gain.run(n_points=21)
        assert result.all_checks_pass(), result.report()

    def test_fig08(self):
        result = fig08_sidelobes.run()
        assert result.all_checks_pass(), result.report()

    def test_fig09(self):
        result = fig09_snr_variance.run(duration_s=600.0, rng=2)
        assert result.all_checks_pass(), result.report()

    def test_fig14a(self):
        result = fig14_offsets.run_frequency_offsets(
            n_devices=24, n_packets=15, rng=3
        )
        assert result.all_checks_pass(), result.report()

    def test_fig14b(self):
        result = fig14_offsets.run_residual_bins(
            n_devices=12, n_packets=40, rng=4
        )
        assert result.all_checks_pass(), result.report()

    def test_fig15a(self):
        result = fig15_doppler_dr.run_doppler(n_samples=400, rng=5)
        assert result.all_checks_pass(), result.report()

    def test_fig16(self):
        result = fig16_spectrogram.run(n_symbols=8, rng=6)
        assert result.all_checks_pass(), result.report()

    def test_sec22(self):
        result = sec22_analytics.run(n_trials=4000, rng=7)
        assert result.all_checks_pass(), result.report()


class TestSimulationExperiments:
    def test_fig12_reduced(self):
        # 2000 symbols (not 1500): the 45 dB degradation check compares
        # two Monte-Carlo BER estimates, and at 1500 symbols its margin
        # is seed-luck — the version-2 payload noise stream (same law,
        # different draws) happened to land it just under threshold.
        result = fig12_nearfar_ber.run(
            snrs_db=(-16, -10),
            power_deltas_db=(None, 35.0, 45.0),
            n_symbols=2000,
            rng=8,
        )
        assert result.all_checks_pass(), result.report()

    def test_fig15b_reduced(self):
        result = fig15_doppler_dr.run_dynamic_range(
            separations_bins=(2, 64, 256),
            deltas_db=(0, 5, 15, 30, 35),
            n_symbols=300,
            rng=9,
        )
        assert result.all_checks_pass(), result.report()

    def test_fig17_reduced(self, deployment):
        result = fig17_phy_rate.run(
            deployment=deployment,
            device_counts=(1, 64, 256),
            n_rounds=1,
            rng=10,
        )
        assert result.all_checks_pass(), result.report()

    def test_fig18_reduced(self, deployment):
        result = fig18_linklayer.run(
            deployment=deployment,
            device_counts=(1, 256),
            n_rounds=1,
            rng=11,
        )
        assert result.all_checks_pass(), result.report()

    def test_fig19(self, deployment):
        result = fig19_latency.run(
            deployment=deployment,
            device_counts=(1, 64, 256),
            rng=12,
        )
        assert result.all_checks_pass(), result.report()
