"""Unit tests for the group scheduler and Aloha association extension."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.aloha import (
    AlohaAssociation,
    expected_rounds_upper_bound,
)
from repro.protocol.scheduler import GroupScheduler


class TestGroupScheduler:
    def test_single_group_all_transmit(self):
        scheduler = GroupScheduler(max_group_size=8)
        for device_id in range(4):
            scheduler.add_device(device_id, snr_db=10.0)
        assert sorted(scheduler.next_round()) == [0, 1, 2, 3]

    def test_oversize_population_splits(self):
        scheduler = GroupScheduler(max_group_size=4)
        for device_id in range(10):
            scheduler.add_device(device_id, snr_db=10.0)
        assert scheduler.n_groups == 3

    def test_round_robin_covers_everyone(self):
        scheduler = GroupScheduler(max_group_size=4)
        for device_id in range(8):
            scheduler.add_device(device_id, snr_db=10.0)
        seen = set()
        for _ in range(scheduler.n_groups):
            seen.update(scheduler.next_round())
        assert seen == set(range(8))

    def test_snr_span_grouping(self):
        scheduler = GroupScheduler(max_group_size=16, group_span_db=20.0)
        scheduler.add_device(0, snr_db=0.0)
        scheduler.add_device(1, snr_db=50.0)
        assert scheduler.n_groups == 2
        assert scheduler.group_of(0) != scheduler.group_of(1)

    def test_duty_cycle_skips_rounds(self):
        scheduler = GroupScheduler(max_group_size=8)
        scheduler.add_device(0, snr_db=10.0, duty_cycle_rounds=2)
        first = scheduler.next_round()
        second = scheduler.next_round()
        third = scheduler.next_round()
        # Every-other-round duty cycle: exactly one of two consecutive
        # rounds includes the device.
        transmissions = [0 in r for r in (first, second, third)]
        assert transmissions.count(True) >= 1
        assert not all(transmissions)

    def test_remove_device(self):
        scheduler = GroupScheduler(max_group_size=8)
        scheduler.add_device(0, snr_db=10.0)
        scheduler.remove_device(0)
        assert scheduler.next_round() == []

    def test_duplicate_add_rejected(self):
        scheduler = GroupScheduler(max_group_size=8)
        scheduler.add_device(0, snr_db=10.0)
        with pytest.raises(ProtocolError):
            scheduler.add_device(0, snr_db=10.0)

    def test_unknown_remove_rejected(self):
        with pytest.raises(ProtocolError):
            GroupScheduler(max_group_size=8).remove_device(5)

    def test_invalid_params(self):
        with pytest.raises(ProtocolError):
            GroupScheduler(max_group_size=0)
        scheduler = GroupScheduler(max_group_size=4)
        with pytest.raises(ProtocolError):
            scheduler.add_device(0, snr_db=0.0, duty_cycle_rounds=0)

    def test_empty_round(self):
        assert GroupScheduler(max_group_size=4).next_round() == []


class TestAloha:
    def test_single_device_immediate(self, rng):
        stats = AlohaAssociation(1, rng=rng).run()
        assert stats.n_succeeded == 1
        assert stats.completion_round() == 1

    def test_all_devices_eventually_join(self, rng):
        aloha = AlohaAssociation(20, rng=rng)
        stats = aloha.run(max_rounds=5000)
        assert stats.n_succeeded == 20
        assert aloha.n_pending == 0

    def test_collisions_happen_with_contention(self, rng):
        stats = AlohaAssociation(20, rng=rng).run(max_rounds=5000)
        assert stats.collisions > 0

    def test_completion_within_bound(self, rng):
        stats = AlohaAssociation(30, rng=rng).run(max_rounds=10000)
        assert stats.completion_round() < expected_rounds_upper_bound(30) * 5

    def test_backoff_window_grows(self, rng):
        from repro.protocol.aloha import BackoffState

        state = BackoffState()
        state.on_collision(64, rng)
        assert state.window == 2
        state.on_collision(64, rng)
        assert state.window == 4
        for _ in range(10):
            state.on_collision(64, rng)
        assert state.window == 64  # clamped

    def test_invalid_params(self, rng):
        with pytest.raises(ProtocolError):
            AlohaAssociation(0, rng=rng)
        with pytest.raises(ProtocolError):
            AlohaAssociation(5, max_window=1, rng=rng)
        with pytest.raises(ProtocolError):
            expected_rounds_upper_bound(0)
