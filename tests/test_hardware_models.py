"""Unit tests for envelope detector, oscillator, MCU and power models."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hardware.envelope_detector import EnvelopeDetector, ask_modulate
from repro.hardware.mcu import McuTimingModel, paper_timing_model
from repro.hardware.oscillator import (
    CrystalOscillator,
    radio_oscillator,
    tag_oscillator,
)
from repro.hardware.power_model import IcPowerBudget
from repro.phy.packet import PacketStructure


class TestEnvelopeDetector:
    def test_sensitivity_gate(self):
        detector = EnvelopeDetector()
        assert detector.can_decode(-48.0)
        assert not detector.can_decode(-50.0)

    def test_rssi_none_below_sensitivity(self, rng):
        detector = EnvelopeDetector()
        assert detector.measure_rssi_dbm(-60.0, rng) is None

    def test_rssi_noise(self, rng):
        detector = EnvelopeDetector(rssi_noise_std_db=1.0)
        readings = [detector.measure_rssi_dbm(-30.0, rng) for _ in range(500)]
        assert np.mean(readings) == pytest.approx(-30.0, abs=0.2)
        assert np.std(readings) == pytest.approx(1.0, rel=0.2)

    def test_noiseless_reading(self, rng):
        detector = EnvelopeDetector(rssi_noise_std_db=0.0)
        assert detector.measure_rssi_dbm(-30.0, rng) == -30.0

    def test_ask_roundtrip(self, rng):
        detector = EnvelopeDetector()
        bits = rng.integers(0, 2, size=64).tolist()
        envelope = ask_modulate(bits, samples_per_bit=8)
        assert detector.demodulate_ask(envelope, samples_per_bit=8) == bits

    def test_ask_roundtrip_with_noise(self, rng):
        detector = EnvelopeDetector()
        bits = rng.integers(0, 2, size=64).tolist()
        envelope = ask_modulate(bits, samples_per_bit=16)
        noisy = envelope + rng.normal(scale=0.1, size=envelope.size)
        assert detector.demodulate_ask(np.abs(noisy), 16) == bits

    def test_ask_validation(self):
        with pytest.raises(HardwareModelError):
            ask_modulate([2], 4)
        with pytest.raises(HardwareModelError):
            ask_modulate([1], 0)

    def test_demodulate_too_short(self):
        detector = EnvelopeDetector()
        with pytest.raises(HardwareModelError):
            detector.demodulate_ask(np.ones(3), samples_per_bit=8)


class TestOscillator:
    def test_requires_calibration(self):
        osc = CrystalOscillator(nominal_freq_hz=3e6)
        with pytest.raises(HardwareModelError):
            _ = osc.cut_error_ppm

    def test_cut_error_within_tolerance(self, rng):
        osc = CrystalOscillator(nominal_freq_hz=3e6, tolerance_ppm=20.0)
        osc.calibrate(rng)
        assert abs(osc.cut_error_ppm) <= 20.0

    def test_offsets_track_cut_error(self, rng):
        osc = CrystalOscillator(
            nominal_freq_hz=3e6, tolerance_ppm=20.0, drift_ppm_std=0.0
        )
        osc.calibrate(rng)
        expected = osc.cut_error_ppm * 1e-6 * 3e6
        assert osc.offset_hz(rng) == pytest.approx(expected)

    def test_tag_offsets_match_fig14a(self, rng):
        """Tag offsets should stay within the paper's +/-150 Hz envelope."""
        worst = 0.0
        for i in range(50):
            osc = tag_oscillator()
            osc.calibrate(np.random.default_rng(i))
            series = osc.offset_series_hz(20, rng)
            worst = max(worst, float(np.max(np.abs(series))))
        assert worst <= 160.0

    def test_radio_offsets_much_larger(self, rng):
        tag = tag_oscillator()
        radio = radio_oscillator()
        tag.calibrate(np.random.default_rng(1))
        radio.calibrate(np.random.default_rng(1))
        # Identical ppm draw, 300x the synthesis frequency.
        assert abs(radio.offset_hz(rng)) > 10 * abs(tag.offset_hz(rng))

    def test_series_length(self, rng):
        osc = tag_oscillator()
        osc.calibrate(rng)
        assert osc.offset_series_hz(17, rng).size == 17

    def test_invalid_params(self):
        with pytest.raises(HardwareModelError):
            CrystalOscillator(nominal_freq_hz=0.0)


class TestMcuTiming:
    def test_latency_within_bounds(self, rng):
        model = McuTimingModel()
        for _ in range(500):
            latency = model.sample_latency_s(rng)
            assert model.min_latency_s <= latency <= model.max_latency_s

    def test_paper_model_max_under_3_5us(self):
        model = paper_timing_model()
        assert model.max_latency_s <= 3.5e-6 + 1e-9

    def test_jitter_bins_at_deployment_config(self, params):
        """The per-packet wobble must be on the order the SKIP = 2 guard
        absorbs (under ~2 bins including glitches)."""
        model = McuTimingModel()
        assert 0.3 < model.jitter_bins(params) < 2.0

    def test_glitches_create_tail(self, rng):
        model = McuTimingModel(glitch_probability=0.5)
        samples = model.sample_latencies_s(2000, rng)
        no_glitch_max = (
            model.min_latency_s
            + model.detector_jitter_s
            + model.mcu_jitter_s
            + model.fpga_jitter_s
        )
        assert np.mean(samples > no_glitch_max) > 0.2

    def test_no_glitch_mode(self, rng):
        model = McuTimingModel(glitch_probability=0.0)
        samples = model.sample_latencies_s(500, rng)
        assert np.max(samples) <= model.max_latency_s

    def test_invalid_params(self):
        with pytest.raises(HardwareModelError):
            McuTimingModel(mcu_jitter_s=-1e-6)
        with pytest.raises(HardwareModelError):
            McuTimingModel().sample_latencies_s(0)


class TestPowerBudget:
    def test_paper_total(self):
        budget = IcPowerBudget()
        assert budget.total_uw == pytest.approx(45.2, abs=0.01)

    def test_breakdown_sums(self):
        budget = IcPowerBudget()
        breakdown = budget.breakdown()
        parts = (
            breakdown["envelope_detector_uw"]
            + breakdown["baseband_uw"]
            + breakdown["chirp_generator_uw"]
            + breakdown["switch_network_uw"]
        )
        assert parts == pytest.approx(breakdown["total_uw"])

    def test_energy_per_packet(self, params):
        budget = IcPowerBudget()
        energy = budget.energy_per_packet_uj(params, PacketStructure())
        # 45.2 uW * 49.152 ms ~ 2.22 uJ.
        assert energy == pytest.approx(2.22, abs=0.05)

    def test_battery_feasibility_positive(self, params):
        budget = IcPowerBudget()
        packets = budget.packets_per_day_on_battery(
            params, PacketStructure()
        )
        assert packets > 100.0

    def test_rx_floor_consumes_budget(self, params):
        """A hypothetical always-on budget larger than the battery's
        daily allowance must yield zero packets."""
        budget = IcPowerBudget(baseband_uw=500.0)
        packets = budget.packets_per_day_on_battery(
            params, PacketStructure(), battery_mah=30.0
        )
        assert packets == 0.0

    def test_invalid_battery(self, params):
        with pytest.raises(HardwareModelError):
            IcPowerBudget().packets_per_day_on_battery(
                params, PacketStructure(), battery_mah=0.0
            )

    def test_negative_block_rejected(self):
        with pytest.raises(HardwareModelError):
            IcPowerBudget(baseband_uw=-1.0)
