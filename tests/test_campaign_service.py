"""Campaign service node (``serve-api``) contract tests.

The load-bearing pins:

* **wire protocol** — ``POST /campaigns`` streams ``accepted`` /
  ``point`` (spec order) / ``done`` NDJSON events with the campaign-id
  headers; bad paths/bodies answer 4xx as definitive service answers;
* **read-through cache** — a warm re-submit computes zero points and
  its ``point`` lines are byte-identical to the cold run's;
* **dedup** — M concurrent clients posting one spec observe exactly
  one execution (exec log) and byte-identical streams; a client
  disconnecting mid-stream never aborts the shared computation;
* **backpressure** — a stalled subscriber is dropped after
  ``stall_timeout_s`` without wedging the publisher or live readers;
* **request chaos** — every request-level fault kind (``refuse``,
  ``http_error`` + Retry-After, ``disconnect`` before ``done``,
  ``delay``) heals inside the client's retry/breaker stack;
* **acceptance** — N >= 3 concurrent clients under a seeded chaos plan
  converge to byte-identical streams and a store manifest
  byte-identical to a clean single-shot local run, with zero
  duplicated computations.
"""

import json
import socket
import threading
import time

import pytest

from repro.campaign.client import (
    CampaignServiceClient,
    parse_service_url,
)
from repro.campaign.faults import (
    FaultPlan,
    StorageFaultPlan,
    StorageFaultRule,
)
from repro.campaign.presets import fig17_campaign
from repro.campaign.runner import EXEC_LOG_ENV, CampaignRunner
from repro.campaign.service import (
    CAMPAIGN_ID_HEADER,
    CREATED_HEADER,
    CampaignExecution,
    CampaignService,
    campaign_id_for,
)
from repro.campaign.store import CampaignStore
from repro.errors import (
    CampaignServiceError,
    CircuitOpenError,
    ConfigurationError,
    PersistentStorageError,
)

#: Fast client retry policy (real backoffs, tiny delays).
from repro.campaign.storage import StorageRetryPolicy

FAST_RETRY = StorageRetryPolicy(
    max_attempts=5, base_delay_s=0.002, max_delay_s=0.01
)


def small_spec(counts=(1, 2), **overrides):
    kwargs = dict(
        rng=0, device_counts=counts, n_rounds=1, engine="analytic"
    )
    kwargs.update(overrides)
    return fig17_campaign(**kwargs)


def request_plan(rules, seed=0):
    return StorageFaultPlan(
        rules=tuple(StorageFaultRule(**rule) for rule in rules),
        seed=seed,
    )


def live_service(request, **kwargs):
    svc = CampaignService(**kwargs)
    svc.start()
    request.addfinalizer(svc.stop)
    return svc


def client_for(svc, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("timeout_s", 30.0)
    return CampaignServiceClient(svc.url, **kwargs)


def slow_execute(monkeypatch, delay_s=0.05):
    """Slow every point computation so concurrent submits overlap one
    execution (the service runs points serially in-process)."""
    import repro.campaign.runner as runner_mod

    original = runner_mod.execute_point

    def slowed(point):
        time.sleep(delay_s)
        return original(point)

    monkeypatch.setattr(runner_mod, "execute_point", slowed)


def wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestWireProtocol:
    def test_submit_streams_accepted_points_done(self, request):
        svc = live_service(request)
        spec = small_spec(counts=(1, 2, 3))
        run = client_for(svc).submit(spec)

        kinds = [e["event"] for e in run.events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "done"
        assert kinds[1:-1] == ["point"] * 3
        assert run.created is True
        assert run.campaign_id == campaign_id_for(spec.to_dict())
        assert run.events[0]["n_points"] == 3
        assert [e["index"] for e in run.point_events] == [0, 1, 2]
        hashes = [p.content_hash() for p in spec.points()]
        assert [
            e["content_hash"] for e in run.point_events
        ] == hashes
        assert run.summary["status"] == "complete"
        assert run.n_computed == 3 and run.n_failed == 0

    def test_service_metrics_match_local_run(self, request):
        svc = live_service(request)
        spec = small_spec()
        run = client_for(svc).submit(spec)
        local = CampaignRunner(store=None, use_leases=False).run(spec)
        assert run.metrics == local.metrics

    def test_unknown_paths_and_bad_bodies_answer_4xx(self, request):
        svc = live_service(request)
        client = client_for(svc)
        with pytest.raises(CampaignServiceError, match="404"):
            client._get_json("/nope", "status")
        with pytest.raises(CampaignServiceError, match="404"):
            client.status("deadbeef" * 8)

        host, port = parse_service_url(svc.url)[1].split(":")
        from http.client import HTTPConnection

        for body, match in [
            (b"{not json", "malformed JSON"),
            (b"[1, 2, 3]", "JSON object"),
            (b'{"spec": {"name": "x"}}', "error"),
        ]:
            connection = HTTPConnection(host, int(port), timeout=10)
            try:
                connection.request("POST", "/campaigns", body=body)
                response = connection.getresponse()
                assert response.status == 400
                payload = json.loads(response.read())
                assert match in payload["error"] or "error" in payload
            finally:
                connection.close()

    def test_status_and_list_track_an_execution(self, request):
        svc = live_service(request)
        client = client_for(svc)
        spec = small_spec()
        run = client.submit(spec)

        status = client.status(run.campaign_id)
        assert status["campaign_id"] == run.campaign_id
        assert status["state"] == "complete"
        assert status["n_points"] == 2
        assert status["points_done"] == 2
        assert status["points_failed"] == 0
        assert "elapsed_s" in status

        campaigns = client.list_campaigns()
        assert [c["campaign_id"] for c in campaigns] == [
            run.campaign_id
        ]

    def test_healthz_counters(self, request):
        svc = live_service(request)
        client = client_for(svc)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["campaigns_total"] == 0
        assert "memory" in health["store"]

        client.submit(small_spec())
        health = client.healthz()
        assert health["campaigns_total"] == 1
        assert health["campaigns_in_flight"] == 0
        assert health["n_submitted"] == 1
        assert health["n_deduped"] == 0
        assert health["n_client_disconnects"] == 0


class TestReadThroughCache:
    def test_warm_resubmit_computes_nothing_byte_identical(
        self, request
    ):
        svc = live_service(request)
        client = client_for(svc)
        spec = small_spec(counts=(1, 2, 3))

        cold = client.submit(spec)
        assert cold.n_computed == 3 and cold.n_cached == 0

        warm = client.submit(spec)
        assert warm.created is True  # fresh execution ...
        assert warm.n_computed == 0  # ... served from cache
        assert warm.n_cached == 3
        # The determinism contract: cold and warm point lines are the
        # same bytes — no cached/elapsed/attempt fields ever leak in.
        assert warm.point_lines == cold.point_lines
        assert warm.raw_lines[0] == cold.raw_lines[0]  # accepted

    def test_cache_is_the_store_not_the_process(self, request, tmp_path):
        # Any StorageDriver-backed store is the cache: a second
        # service instance over the same posix root answers warm.
        spec = small_spec()
        first = live_service(request, store=tmp_path / "store")
        cold = client_for(first).submit(spec)
        assert cold.n_computed == 2

        second = live_service(request, store=tmp_path / "store")
        warm = client_for(second).submit(spec)
        assert warm.n_computed == 0 and warm.n_cached == 2
        assert warm.point_lines == cold.point_lines


class TestDedup:
    def test_concurrent_identical_submits_execute_once(
        self, request, tmp_path, monkeypatch
    ):
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        slow_execute(monkeypatch, delay_s=0.05)

        svc = live_service(request, store=tmp_path / "store")
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]

        n_clients = 4
        barrier = threading.Barrier(n_clients)
        runs, errors = [None] * n_clients, [None] * n_clients

        def submit(slot):
            client = client_for(svc)
            barrier.wait()
            try:
                runs[slot] = client.submit(spec)
            except Exception as error:  # noqa: BLE001 - reraised below
                errors[slot] = error

        threads = [
            threading.Thread(target=submit, args=(slot,))
            for slot in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == [None] * n_clients

        # Exactly one execution per point, ever.
        logged = exec_log.read_text().splitlines()
        assert sorted(line.split()[0] for line in logged) == sorted(
            hashes
        )

        # Every client saw the identical byte stream, and exactly one
        # request started the execution.
        full_streams = {b"".join(run.raw_lines) for run in runs}
        assert len(full_streams) == 1
        assert sum(run.created for run in runs) == 1
        assert all(run.summary["status"] == "complete" for run in runs)

        health = client_for(svc).healthz()
        assert health["n_submitted"] == n_clients
        assert health["n_deduped"] == n_clients - 1

    def test_mid_stream_disconnect_leaves_shared_run_alive(
        self, request, tmp_path, monkeypatch
    ):
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        slow_execute(monkeypatch, delay_s=0.08)

        svc = live_service(request, store=tmp_path / "store")
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]
        body = json.dumps({"spec": spec.to_dict()}).encode()

        survivor_run = {}

        def survivor():
            survivor_run["run"] = client_for(svc).submit(spec)

        thread = threading.Thread(target=survivor)
        thread.start()

        # A second client joins the same execution over a raw socket,
        # reads the accepted line, then slams the connection shut.
        assert wait_until(
            lambda: svc.healthz()["campaigns_in_flight"] == 1
        )
        host, port = parse_service_url(svc.url)[1].split(":")
        sock = socket.create_connection((host, int(port)), timeout=10)
        try:
            sock.sendall(
                b"POST /campaigns HTTP/1.1\r\n"
                b"Host: service\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            sock.recv(1024)  # headers + early stream bytes
        finally:
            sock.close()

        thread.join(timeout=30)
        run = survivor_run["run"]
        assert run.summary["status"] == "complete"
        assert [e["content_hash"] for e in run.point_events] == hashes
        logged = exec_log.read_text().splitlines()
        assert sorted(line.split()[0] for line in logged) == sorted(
            hashes
        )
        assert wait_until(
            lambda: svc.healthz()["campaigns_in_flight"] == 0
        )


class TestBackpressure:
    """Unit tests straight on :class:`CampaignExecution`."""

    @staticmethod
    def execution(spec, max_backlog=2, stall_timeout_s=0.2):
        def factory(on_result):
            return CampaignRunner(
                store=None, use_leases=False, on_result=on_result
            )

        return CampaignExecution(
            campaign_id_for(spec.to_dict()),
            spec,
            factory,
            max_backlog=max_backlog,
            stall_timeout_s=stall_timeout_s,
        )

    def test_knob_validation(self):
        spec = small_spec()
        with pytest.raises(ConfigurationError):
            self.execution(spec, max_backlog=0)
        with pytest.raises(ConfigurationError):
            self.execution(spec, stall_timeout_s=-1)

    def test_stalled_subscriber_dropped_fast_reader_unaffected(self):
        spec = small_spec(counts=(1, 2, 3, 4, 5, 6))
        execution = self.execution(
            spec, max_backlog=2, stall_timeout_s=0.1
        )
        laggard = execution.subscribe()  # never reads
        fast = execution.subscribe()
        lines = []
        execution.start()
        while True:
            line = execution.next_event(fast)
            if line is None:
                break
            lines.append(line)
        execution.join(timeout=30)

        assert len(lines) == 6  # every point, despite the laggard
        assert [json.loads(l)["index"] for l in lines] == list(range(6))
        with pytest.raises(CampaignServiceError, match="dropped"):
            execution.next_event(laggard)
        status = execution.status_snapshot()
        assert status["state"] == "complete"

    def test_runner_crash_becomes_failed_summary(self):
        spec = small_spec()

        def exploding_factory(on_result):
            raise RuntimeError("boom")

        execution = CampaignExecution(
            campaign_id_for(spec.to_dict()), spec, exploding_factory
        )
        token = execution.subscribe()
        execution.start()
        assert execution.next_event(token) is None  # nothing published
        summary = json.loads(execution.summary_line())
        assert summary["status"] == "failed"
        assert "boom" in summary["error"]
        assert execution.status_snapshot()["state"] == "failed"

    def test_summary_line_before_done_raises(self):
        execution = self.execution(small_spec())
        with pytest.raises(CampaignServiceError, match="running"):
            execution.summary_line()


class TestRequestChaos:
    def test_refused_submit_heals_on_retry(self, request):
        svc = live_service(
            request,
            service_fault_plan=request_plan(
                [{"kind": "refuse", "op": "submit", "calls": [1]}]
            ),
        )
        run = client_for(svc).submit(small_spec())
        assert run.attempts == 2
        assert run.summary["status"] == "complete"

    def test_503_with_retry_after_heals(self, request):
        svc = live_service(
            request,
            service_fault_plan=request_plan(
                [
                    {
                        "kind": "http_error",
                        "op": "healthz",
                        "calls": [1],
                        "status": 503,
                        "retry_after_s": 0.01,
                    }
                ]
            ),
        )
        client = client_for(svc)
        assert client.healthz()["status"] == "ok"
        assert client.n_retries == 1

    def test_delay_is_survived_within_timeout(self, request):
        svc = live_service(
            request,
            service_fault_plan=request_plan(
                [
                    {
                        "kind": "delay",
                        "op": "submit",
                        "calls": [1],
                        "hang_s": 0.05,
                    }
                ]
            ),
        )
        run = client_for(svc).submit(small_spec())
        assert run.attempts == 1
        assert run.summary["status"] == "complete"

    def test_disconnect_before_done_resubmits_through_cache(
        self, request, tmp_path, monkeypatch
    ):
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        svc = live_service(
            request,
            store=tmp_path / "store",
            service_fault_plan=request_plan(
                [{"kind": "disconnect", "op": "submit", "calls": [1]}]
            ),
        )
        spec = small_spec(counts=(1, 2, 3))
        hashes = [p.content_hash() for p in spec.points()]
        run = client_for(svc).submit(spec)

        # First attempt streamed the points but lost the done line;
        # the retry replayed entirely from the store's cache.
        assert run.attempts == 2
        assert run.summary["status"] == "complete"
        assert run.n_computed == 0 and run.n_cached == 3
        logged = exec_log.read_text().splitlines()
        assert sorted(line.split()[0] for line in logged) == sorted(
            hashes
        )

    def test_persistent_refusal_exhausts_then_trips_breaker(
        self, request
    ):
        svc = live_service(
            request,
            service_fault_plan=request_plan(
                [
                    {
                        "kind": "refuse",
                        "op": "healthz",
                        "calls": list(range(1, 40)),
                    }
                ]
            ),
        )
        client = client_for(svc)
        with pytest.raises(PersistentStorageError):
            client.healthz()
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.healthz()

    def test_dead_endpoint_exhausts_to_persistent_error(self, request):
        svc = live_service(request)
        url = svc.url
        svc.stop()
        client = CampaignServiceClient(
            url, retry=FAST_RETRY, timeout_s=2.0
        )
        with pytest.raises(PersistentStorageError):
            client.healthz()


class TestAcceptance:
    def test_n_clients_under_chaos_converge_byte_identical(
        self, request, tmp_path, monkeypatch
    ):
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]

        # Clean single-shot local run — the reference manifest.
        clean_root = tmp_path / "clean"
        CampaignRunner(
            store=CampaignStore(clean_root, fault_plan=FaultPlan()),
            use_leases=False,
        ).run(spec)
        CampaignStore(clean_root, fault_plan=FaultPlan()).manifest()

        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        slow_execute(monkeypatch, delay_s=0.03)

        store_root = tmp_path / "store"
        svc = live_service(
            request,
            store=store_root,
            service_fault_plan=request_plan(
                [
                    {"kind": "refuse", "op": "submit", "calls": [2]},
                    {
                        "kind": "http_error",
                        "op": "submit",
                        "calls": [4],
                        "status": 503,
                        "retry_after_s": 0.01,
                    },
                    {
                        "kind": "delay",
                        "op": "submit",
                        "calls": [3],
                        "hang_s": 0.02,
                    },
                ],
                seed=7,
            ),
        )

        n_clients = 3
        barrier = threading.Barrier(n_clients)
        runs, errors = [None] * n_clients, [None] * n_clients

        def submit(slot):
            client = client_for(svc)
            barrier.wait()
            try:
                runs[slot] = client.submit(spec)
            except Exception as error:  # noqa: BLE001 - reraised below
                errors[slot] = error

        threads = [
            threading.Thread(target=submit, args=(slot,))
            for slot in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == [None] * n_clients
        assert svc.selector.n_injected >= 3

        # Byte-identical result streams across every client.
        assert len({b"".join(r.point_lines) for r in runs}) == 1
        assert all(r.summary["status"] == "complete" for r in runs)

        # Exactly one execution per point across all the chaos.
        logged = exec_log.read_text().splitlines()
        assert sorted(line.split()[0] for line in logged) == sorted(
            hashes
        )

        # The chaos store converged to the clean run's manifest, byte
        # for byte.
        CampaignStore(store_root, fault_plan=FaultPlan()).manifest()
        assert (store_root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

        # Warm re-request: zero recompute, same bytes.
        warm = client_for(svc).submit(spec)
        assert warm.n_computed == 0 and warm.n_cached == len(hashes)
        assert b"".join(warm.point_lines) == b"".join(
            runs[0].point_lines
        )

        health = client_for(svc).healthz()
        assert health["status"] == "ok"
        assert health["campaigns_in_flight"] == 0
