"""Versioned engine-noise streams: goldens, equivalence, stamping.

Three contracts around :class:`repro.phy.noise.NoiseStream`:

* **version 1 is frozen** — ``noise_mode="full"`` reproduces the
  pre-stream engine's draws bit for bit, pinned by fingerprints of the
  decode outputs (bits *and* noise-loaded powers) recorded from the
  PR-3 code across SF 7/9/12 and all four spectral backends;
* **version 2 is the same law** — the located-bin ``"payload"`` stream
  draws ~3× fewer window values (the exact count is asserted) yet its
  decisions are statistically equivalent on the Fig. 12 BER grid and
  the Fig. 17 network grid, and identical across backends for a shared
  seed;
* **the stamp is trustworthy** — every decode / network result records
  exactly the ``(noise_mode, noise_version)`` that produced it, with
  ``("none", 0)`` when no engine noise was injected.
"""

import hashlib

import numpy as np
import pytest

import repro.phy.noise as noise_module
from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver, RoundsDecode
from repro.errors import ConfigurationError, DecodingError
from repro.phy.noise import (
    CURRENT_NOISE_VERSION,
    NOISE_MODES,
    NOISE_STREAM_VERSIONS,
    NoiseStream,
    covariance_factor,
)
from repro.phy.sparse_readout import (
    SparseReadout,
    located_bin_noise_covariance,
)
from repro.protocol.network import NetworkSimulator, sweep_device_counts

# --------------------------------------------------------------------- #
# version-1 goldens, recorded from the PR-3 engine (see class docstring)
# --------------------------------------------------------------------- #

#: sha256[:16] of (bits, bit_powers) per SF per backend for the decode
#: of :func:`_golden_scenario` at noise_snr_db=-12, rng seed 77. The
#: bit_powers hashes pin the *noise values themselves*, not just the
#: decisions, so any change to the version-1 draw layout fails here.
VERSION1_GOLDENS = {
    7: {
        "sparse": ("1dab2d165623e9e6", "cd915693f54ff81f"),
        "fft": ("1dab2d165623e9e6", "93cf0078bc9cdf13"),
        "analytic": ("1dab2d165623e9e6", "35a04ff2b5142d36"),
    },
    9: {
        "sparse": ("efffc575ea0bc5f9", "b72f6ff3aa98948d"),
        "fft": ("efffc575ea0bc5f9", "ab9ff2c32d11ffca"),
        "analytic": ("efffc575ea0bc5f9", "169350b23f6c9972"),
    },
    12: {
        "sparse": ("dd55209a9a9d5a39", "625b80e3fb7ed3ce"),
        "fft": ("dd55209a9a9d5a39", "592a7d42a2e31a42"),
        "analytic": ("dd55209a9a9d5a39", "b081c685cf42722e"),
    },
}


def _hash(array) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()[:16]


def _golden_scenario(sf):
    """The deterministic 6-device batch the goldens were recorded on."""
    config = NetScatterConfig(spreading_factor=sf, n_association_shifts=0)
    n_devices = 6
    shifts = [2 + 2 * i for i in range(n_devices)]
    assignments = {i: shifts[i] for i in range(n_devices)}
    rng = np.random.default_rng(1000 + sf)
    n_rounds, n_payload, n_pre = 4, 10, 6
    bins = np.array(shifts, dtype=float)[None, :] + rng.normal(
        0, 0.1, (n_rounds, n_devices)
    )
    amps = rng.uniform(0.8, 1.5, (n_rounds, n_devices))
    phases = rng.uniform(0, 2 * np.pi, (n_rounds, n_devices))
    bit_tensor = np.ones((n_rounds, n_pre + n_payload, n_devices))
    bit_tensor[:, n_pre:] = rng.integers(
        0, 2, (n_rounds, n_payload, n_devices)
    )
    return config, assignments, bins, amps, phases, bit_tensor


class _ForcedPlanner:
    """Duck-typed planner pinning ``readout="auto"`` to one backend."""

    def __init__(self, backend: str) -> None:
        self.backend = backend

    def select(self, workload) -> str:
        if not workload.tone_input and self.backend == "analytic":
            return "sparse"
        return self.backend


def _decode_golden(sf, backend, noise_mode="full", planner=None):
    config, assignments, bins, amps, phases, bt = _golden_scenario(sf)
    readout = backend if planner is None else "auto"
    receiver = NetScatterReceiver(
        config, assignments, readout=readout,
        planner=planner, noise_mode=noise_mode,
    )
    rng = np.random.default_rng(77)
    if backend == "analytic":
        return receiver.decode_readout(
            bins, amps, phases, bt, noise_snr_db=-12.0, rng=rng
        )
    symbols = compose_rounds(
        config.chirp_params, bins, amps, phases, bt, respread=False
    )
    return receiver.decode_rounds(
        symbols, dechirped=True, noise_snr_db=-12.0, rng=rng
    )


class TestVersion1BitIdentical:
    @pytest.mark.parametrize("sf", [7, 9, 12])
    @pytest.mark.parametrize("backend", ["sparse", "fft", "analytic"])
    def test_full_mode_reproduces_pr3_streams(self, sf, backend):
        decode = _decode_golden(sf, backend)
        bits_hash, powers_hash = VERSION1_GOLDENS[sf][backend]
        assert _hash(decode.bits.astype(np.uint8)) == bits_hash
        assert _hash(np.asarray(decode.bit_powers, np.float64)) == powers_hash
        assert (decode.noise_mode, decode.noise_version) == ("full", 1)

    @pytest.mark.parametrize("sf", [7, 9, 12])
    @pytest.mark.parametrize("backend", ["sparse", "fft", "analytic"])
    def test_auto_forced_matches_fixed_backend(self, sf, backend):
        """The fourth mode: auto draws the same stream per backend."""
        decode = _decode_golden(
            sf, backend, planner=_ForcedPlanner(backend)
        )
        bits_hash, powers_hash = VERSION1_GOLDENS[sf][backend]
        assert decode.backend == backend
        assert _hash(decode.bits.astype(np.uint8)) == bits_hash
        assert _hash(np.asarray(decode.bit_powers, np.float64)) == powers_hash

    def test_per_call_override_equals_constructor_mode(self):
        config, assignments, bins, amps, phases, bt = _golden_scenario(9)
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        by_ctor = NetScatterReceiver(
            config, assignments, noise_mode="full"
        ).decode_rounds(
            symbols, noise_snr_db=-12.0, rng=np.random.default_rng(3)
        )
        by_call = NetScatterReceiver(config, assignments).decode_rounds(
            symbols,
            noise_snr_db=-12.0,
            rng=np.random.default_rng(3),
            noise_mode="full",
        )
        assert np.array_equal(by_ctor.bit_powers, by_call.bit_powers)
        assert by_call.noise_version == 1


# --------------------------------------------------------------------- #
# the stream abstraction and the located-bin covariance factor
# --------------------------------------------------------------------- #


class TestNoiseStream:
    def test_mode_version_mapping(self):
        assert NOISE_STREAM_VERSIONS == {"full": 1, "payload": 2}
        assert NOISE_MODES == ("full", "payload")
        assert CURRENT_NOISE_VERSION == 2
        assert NoiseStream(np.random.default_rng(0)).mode == "payload"

    def test_explicit_version_must_match_mode(self):
        NoiseStream(np.random.default_rng(0), mode="full", version=1)
        with pytest.raises(DecodingError):
            NoiseStream(np.random.default_rng(0), mode="full", version=2)
        with pytest.raises(DecodingError):
            NoiseStream(np.random.default_rng(0), mode="nope")
        # Persisted versions fail loudly, never via coercion: 2.7 and
        # "two" are mismatches (not int(2.7) == 2), True is not 1.
        for bad in (2.7, "two"):
            with pytest.raises(DecodingError):
                NoiseStream(
                    np.random.default_rng(0), mode="payload", version=bad
                )
        with pytest.raises(DecodingError):
            NoiseStream(
                np.random.default_rng(0), mode="full", version=True
            )
        # A JSON-roundtripped float version is still the same version.
        NoiseStream(np.random.default_rng(0), mode="payload", version=2.0)

    def test_draws_counter_and_generator_sharing(self):
        rng = np.random.default_rng(42)
        stream = NoiseStream(rng)
        a = stream.standard_complex((3, 4))
        assert stream.draws == 12
        # Same consumption as the raw helper on a fresh twin generator.
        from repro.utils.rng import standard_complex_normal

        twin = standard_complex_normal(
            np.random.default_rng(42), (3, 4)
        )
        assert np.array_equal(a, twin)

    def test_float32_draws(self):
        stream = NoiseStream(np.random.default_rng(0))
        z = stream.standard_complex((5,), dtype=np.float32)
        assert z.dtype == np.complex64


class TestLocatedBinCovariance:
    def test_factor_reproduces_covariance(self):
        cov = located_bin_noise_covariance(
            NetScatterConfig().chirp_params, 10
        )
        factor = covariance_factor(cov)
        assert np.allclose(factor @ factor.conj().T, cov, atol=1e-9)

    def test_toeplitz_and_matches_window_block(self, params):
        """Any 3-adjacent-bin block of a window covariance is this one.

        The Toeplitz property is what lets a single 3×3 factor serve
        every located position of every device.
        """
        zp = 10
        cov3 = located_bin_noise_covariance(params, zp)
        assert cov3.shape == (3, 3)
        # Toeplitz: constant diagonals.
        assert cov3[0, 1] == cov3[1, 2]
        assert cov3[1, 0] == cov3[2, 1]
        window = SparseReadout(
            params, zp, np.arange(200, 213), fold_downchirp=False
        ).analytic_noise_covariance()
        for start in (0, 4, 10):
            block = window[start : start + 3, start : start + 3]
            assert np.array_equal(block, cov3)

    def test_plan_payload_factor_cached_and_3x3(self, config):
        receiver = NetScatterReceiver(config, {0: 2, 1: 4})
        plan = receiver.readout_plan
        factor = plan.payload_noise_factor
        assert factor.shape == (3, 3)
        assert plan.payload_noise_factor is factor


# --------------------------------------------------------------------- #
# version 2: fewer draws, same law
# --------------------------------------------------------------------- #


def _network_batch(n_devices=8, n_rounds=6, n_payload=12, seed=5):
    config = NetScatterConfig(n_association_shifts=0)
    assignments = {i: 2 * i + 2 for i in range(n_devices)}
    rng = np.random.default_rng(seed)
    shifts = np.array(list(assignments.values()), dtype=float)
    bins = shifts[None, :] + rng.normal(0, 0.08, (n_rounds, n_devices))
    amps = np.ones((n_rounds, n_devices))
    phases = rng.uniform(0, 2 * np.pi, (n_rounds, n_devices))
    bt = np.ones((n_rounds, 6 + n_payload, n_devices))
    bt[:, 6:] = rng.integers(0, 2, (n_rounds, n_payload, n_devices))
    return config, assignments, bins, amps, phases, bt


class TestPayloadStream:
    def test_same_seed_identical_across_backends(self):
        """Payload-mode noise is one stream whatever backend reads it."""
        config, assignments, bins, amps, phases, bt = _network_batch()
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        decodes = [
            NetScatterReceiver(config, assignments, readout=b)
            .decode_rounds(
                symbols, noise_snr_db=-16.0,
                rng=np.random.default_rng(9),
            )
            for b in ("sparse", "fft")
        ]
        decodes.append(
            NetScatterReceiver(config, assignments, readout="analytic")
            .decode_readout(
                bins, amps, phases, bt,
                noise_snr_db=-16.0, rng=np.random.default_rng(9),
            )
        )
        decodes.append(
            NetScatterReceiver(
                config, assignments, readout="auto",
                planner=_ForcedPlanner("fft"),
            ).decode_readout(
                bins, amps, phases, bt,
                noise_snr_db=-16.0, rng=np.random.default_rng(9),
            )
        )
        for decode in decodes:
            assert (decode.noise_mode, decode.noise_version) == (
                "payload", 2,
            )
        for other in decodes[1:]:
            assert np.array_equal(decodes[0].bits, other.bits)
            assert np.array_equal(decodes[0].detected, other.detected)
            assert np.allclose(
                decodes[0].noise_power, other.noise_power, rtol=1e-9
            )

    def test_exact_draw_counts(self, monkeypatch):
        """Payload mode draws exactly the documented stream layout.

        Full stream: ``R*S*D*W`` window + ``R*P`` probe draws. Payload
        stream: preamble windows ``R*6*D*W``, probes ``R*P``, then
        located-bin payload draws ``R*S_pay*D*3`` — ~3× fewer window
        draws on a 46-symbol round, which is the measured perf lever.
        """
        config, assignments, bins, amps, phases, bt = _network_batch(
            n_devices=8, n_rounds=5, n_payload=40
        )
        receiver = NetScatterReceiver(config, assignments)
        plan = receiver.readout_plan
        r, s, d = 5, 46, 8
        w, p = plan.window_width, plan.probe_readout.n_bins
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )

        counts = {}
        original = noise_module.standard_complex_normal

        def counting(rng, shape, dtype=np.float64):
            counting.total += int(np.prod(shape))
            return original(rng, shape, dtype)

        monkeypatch.setattr(
            noise_module, "standard_complex_normal", counting
        )
        for mode in NOISE_MODES:
            counting.total = 0
            receiver.decode_rounds(
                symbols, noise_snr_db=-16.0,
                rng=np.random.default_rng(1), noise_mode=mode,
            )
            counts[mode] = counting.total

        assert counts["full"] == r * s * d * w + r * p
        assert counts["payload"] == (
            r * 6 * d * w + r * p + r * 40 * d * 3
        )
        window_full = r * s * d * w
        window_payload = r * 6 * d * w + r * 40 * d * 3
        assert window_full / window_payload > 2.5

    def test_fig12_grid_statistically_equivalent(self):
        """Weak-device BER matches between streams on the Fig. 12 grid."""
        config = NetScatterConfig()
        receiver = NetScatterReceiver(
            config, {0: 2}, detection_snr_db=-100.0
        )
        rng = np.random.default_rng(3)
        n_rounds, n_payload = 80, 30
        bits = rng.integers(0, 2, (n_rounds, n_payload, 1))
        bt = np.ones((n_rounds, 6 + n_payload, 1))
        bt[:, 6:] = bits
        bins = 2.0 + rng.normal(0, 0.05, (n_rounds, 1))
        amps = np.ones((n_rounds, 1))
        phases = rng.uniform(0, 2 * np.pi, (n_rounds, 1))
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        ber = {}
        for mode in NOISE_MODES:
            decode = receiver.decode_rounds(
                symbols, noise_snr_db=-16.0,
                rng=np.random.default_rng(4), noise_mode=mode,
            )
            ber[mode] = float(
                np.mean(decode.bits[:, :, 0] != bits[:, :, 0])
            )
        assert ber["full"] > 0.005 and ber["payload"] > 0.005
        assert abs(ber["full"] - ber["payload"]) < 0.35 * max(
            ber["full"], ber["payload"]
        )

    def test_fig17_grid_statistically_equivalent(self):
        """Network metrics match between streams on the Fig. 17 grid."""
        config = NetScatterConfig(n_association_shifts=0)
        metrics = {}
        for mode in NOISE_MODES:
            deployment = paper_deployment(n_devices=64, rng=2026)
            sim = NetworkSimulator(
                deployment, config=config, rng=5, noise_mode=mode
            )
            metrics[mode] = sim.run_rounds(30)
        full, payload = metrics["full"], metrics["payload"]
        assert (full.noise_mode, full.noise_version) == ("full", 1)
        assert (payload.noise_mode, payload.noise_version) == (
            "payload", 2,
        )
        assert full.delivery_ratio == pytest.approx(
            payload.delivery_ratio, abs=0.08
        )
        assert full.bit_error_rate == pytest.approx(
            payload.bit_error_rate, abs=0.02
        )
        assert full.goodput_bits_per_round == pytest.approx(
            payload.goodput_bits_per_round, rel=0.1
        )

    def test_payload_noiseless_decode_unchanged(self):
        """Without engine noise the two modes are the same code path."""
        config, assignments, bins, amps, phases, bt = _network_batch()
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        a = NetScatterReceiver(
            config, assignments, noise_mode="payload"
        ).decode_rounds(symbols)
        b = NetScatterReceiver(
            config, assignments, noise_mode="full"
        ).decode_rounds(symbols)
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.bit_powers, b.bit_powers)
        assert (a.noise_mode, a.noise_version) == ("none", 0)

    def test_payload_complex64_runs(self):
        config, assignments, bins, amps, phases, bt = _network_batch()
        decode = NetScatterReceiver(
            config, assignments, readout="analytic"
        ).decode_readout(
            bins, amps, phases, bt,
            noise_snr_db=-16.0, rng=np.random.default_rng(2),
            dtype=np.complex64,
        )
        assert decode.noise_version == 2
        assert decode.bit_powers.dtype == np.float32


# --------------------------------------------------------------------- #
# stamping + validation across the stack
# --------------------------------------------------------------------- #


class TestStamping:
    def test_concatenate_carries_stream_labels(self):
        config, assignments, bins, amps, phases, bt = _network_batch()
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        decode = NetScatterReceiver(config, assignments).decode_rounds(
            symbols, noise_snr_db=-16.0, rng=np.random.default_rng(1)
        )
        stacked = RoundsDecode.concatenate([decode, decode])
        assert (stacked.noise_mode, stacked.noise_version) == (
            "payload", 2,
        )

    def test_round_result_stamped(self):
        deployment = paper_deployment(n_devices=4, rng=2026)
        sim = NetworkSimulator(
            deployment,
            config=NetScatterConfig(n_association_shifts=0),
            rng=5,
        )
        result = sim.run_round()
        assert (result.noise_mode, result.noise_version) == ("payload", 2)

    def test_time_engine_stamped_none(self):
        """Time-domain AWGN is not an engine stream: stamped none/0."""
        deployment = paper_deployment(n_devices=4, rng=2026)
        sim = NetworkSimulator(
            deployment,
            config=NetScatterConfig(n_association_shifts=0),
            rng=5,
            engine="time",
        )
        metrics = sim.run_rounds(2)
        assert (metrics.noise_mode, metrics.noise_version) == ("none", 0)

    def test_sweep_threads_noise_mode(self):
        deployment = paper_deployment(n_devices=8, rng=2026)
        metrics = sweep_device_counts(
            deployment,
            (2, 8),
            config=NetScatterConfig(n_association_shifts=0),
            n_rounds=2,
            rng=17,
            noise_mode="full",
        )
        assert all(m.noise_mode == "full" for m in metrics)
        assert all(m.noise_version == 1 for m in metrics)

    def test_invalid_modes_rejected(self):
        config = NetScatterConfig(n_association_shifts=0)
        with pytest.raises(DecodingError):
            NetScatterReceiver(config, {0: 2}, noise_mode="bogus")
        receiver = NetScatterReceiver(config, {0: 2})
        with pytest.raises(DecodingError):
            receiver.decode_rounds(
                np.zeros((1, 8, config.n_bins), dtype=complex),
                noise_mode="bogus",
            )
        deployment = paper_deployment(n_devices=2, rng=2026)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, config=config, noise_mode="x")
        with pytest.raises(ConfigurationError):
            sweep_device_counts(
                deployment, (2,), config=config, noise_mode="x"
            )
