"""Campaign layer: specs, store, runner, CLI, resumability, pools.

The load-bearing pins:

* campaign metrics are **bit-identical** to the direct
  ``sweep_device_counts`` / figure-driver path (same seeds, same draw
  order);
* a re-run over an already-populated store recomputes **zero** points
  and serves stored results bit-for-bit;
* a run killed mid-campaign resumes: completed points load from the
  store, only the remainder computes, and the merged manifest matches
  a fresh single-shot run's;
* ``workers=`` requests on a 1-CPU host fall back to serial without
  spawning a redundant process pool (for both the network sweeps and
  the campaign runner).
"""

import json
import os
from dataclasses import replace

import numpy as np
import pytest

import repro.campaign.runner as campaign_runner
from repro.campaign.cli import main as campaign_cli
from repro.campaign.presets import (
    build_preset,
    fig17_campaign,
    fig18_campaign,
    noise_grid_campaign,
)
from repro.campaign.runner import CampaignRunner, run_campaign_sweep
from repro.campaign.spec import CampaignPoint, CampaignSpec, derive_seeds
from repro.campaign.store import CampaignStore
from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError, ReproError
from repro.experiments import fig17_phy_rate, fig18_linklayer
from repro.protocol.network import (
    resolve_pool_workers,
    sweep_device_counts,
)
from repro.utils.rng import child_rng, child_seed, make_rng

COUNTS = (1, 16)
ROUNDS = 1


def small_spec(**overrides):
    kwargs = dict(
        rng=0, device_counts=COUNTS, n_rounds=ROUNDS, engine="analytic"
    )
    kwargs.update(overrides)
    return fig17_campaign(**kwargs)


def make_point(**overrides):
    kwargs = dict(
        deployment={"kind": "paper", "n_devices": 16, "seed": 7},
        config={"n_association_shifts": 0},
        n_devices=8,
        n_rounds=1,
        query_bits=32,
        engine="analytic",
        noise_mode="payload",
        fading=False,
        readout_dtype=None,
        seed=1234,
    )
    kwargs.update(overrides)
    return CampaignPoint(**kwargs)


class TestChildSeed:
    def test_child_rng_equals_seeded_child_seed(self):
        a, b = make_rng(42), make_rng(42)
        direct = child_rng(a, 5)
        via_seed = np.random.default_rng(child_seed(b, 5))
        assert np.array_equal(
            direct.integers(0, 1 << 30, size=8),
            via_seed.integers(0, 1 << 30, size=8),
        )

    def test_derive_seeds_matches_driver_draw_order(self):
        # fig17.run: child at index 0 for the deployment, then one
        # child per count inside sweep_device_counts, in sweep order.
        reference = make_rng(3)
        expected_dep = child_seed(reference, 0)
        expected_points = tuple(
            child_seed(reference, c) for c in (1, 16, 64)
        )
        dep, points = derive_seeds(3, (1, 16, 64))
        assert dep == expected_dep
        assert points == expected_points


class TestCampaignPoint:
    def test_hash_is_deterministic(self):
        assert (
            make_point().content_hash() == make_point().content_hash()
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 1235},
            {"n_devices": 4},
            {"n_rounds": 2},
            {"query_bits": 1760},
            {"engine": "auto"},
            {"noise_mode": "full"},
            {"fading": True},
            {"readout_dtype": "complex64"},
            {"deployment": {"kind": "paper", "n_devices": 16, "seed": 8}},
            {"config": {"n_association_shifts": 4}},
        ],
    )
    def test_every_axis_moves_the_hash(self, override):
        assert (
            make_point(**override).content_hash()
            != make_point().content_hash()
        )

    def test_round_trips_through_dict(self):
        point = make_point()
        clone = CampaignPoint.from_dict(
            json.loads(json.dumps(point.to_dict()))
        )
        assert clone == point
        assert clone.content_hash() == point.content_hash()

    @pytest.mark.parametrize(
        "override",
        [
            {"engine": "warp"},
            {"noise_mode": "extra"},
            {"readout_dtype": "float16"},
            {"deployment": {"kind": "mars", "n_devices": 16, "seed": 1}},
            {"n_devices": 17},  # larger than the deployment
            {"n_rounds": 0},
        ],
    )
    def test_invalid_points_are_rejected(self, override):
        with pytest.raises(ConfigurationError):
            make_point(**override)


class TestCampaignSpec:
    def test_grid_expansion_order_and_size(self):
        spec = noise_grid_campaign(rng=1, device_counts=(4, 8), n_rounds=1)
        points = list(spec.points())
        assert len(points) == spec.n_points == 2 * 2 * 2
        # counts innermost, fading next, noise modes outermost axis
        assert [
            (p.noise_mode, p.fading, p.n_devices) for p in points
        ] == [
            ("payload", False, 4),
            ("payload", False, 8),
            ("payload", True, 4),
            ("payload", True, 8),
            ("full", False, 4),
            ("full", False, 8),
            ("full", True, 4),
            ("full", True, 8),
        ]

    def test_seeds_paired_across_axes(self):
        spec = noise_grid_campaign(rng=1, device_counts=(4, 8), n_rounds=1)
        seeds = {}
        for point in spec.points():
            seeds.setdefault(point.n_devices, set()).add(point.seed)
        assert all(len(s) == 1 for s in seeds.values())

    def test_float32_threshold_sets_dtype(self):
        spec = fig17_campaign(
            rng=0,
            device_counts=(1, 16),
            n_rounds=1,
            float32_min_devices=16,
        )
        dtypes = {p.n_devices: p.readout_dtype for p in spec.points()}
        assert dtypes == {1: None, 16: "complex64"}

    def test_round_trips_through_json(self):
        spec = small_spec()
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert list(clone.points()) == list(spec.points())

    def test_seed_count_mismatch_rejected(self):
        spec = small_spec()
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict(
                {**spec.to_dict(), "point_seeds": spec.point_seeds[:-1]}
            )

    def test_fig18_points_are_content_identical_to_fig17(self):
        fig17 = fig17_campaign(rng=0, device_counts=COUNTS, n_rounds=1)
        fig18 = fig18_campaign(rng=0, device_counts=COUNTS, n_rounds=1)
        assert [p.content_hash() for p in fig17.points()] == [
            p.content_hash() for p in fig18.points()
        ]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError):
            build_preset("fig99")


class TestCampaignStore:
    def test_save_load_round_trip_is_bit_exact(self, tmp_path):
        store = CampaignStore(tmp_path)
        point = make_point()
        metrics = {"phy_rate_bps": 0.1 + 0.2, "delivery_ratio": 1.0}
        store.save(point, metrics, {"backend": "analytic"})
        loaded = store.load(point)
        assert loaded["metrics"] == metrics  # exact float round trip
        assert loaded["provenance"]["backend"] == "analytic"
        assert store.has(point)
        assert not store.has(replace(point, seed=1))

    def test_array_chunks_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        point = make_point()
        arrays = {"goodput": np.arange(6.0).reshape(2, 3)}
        store.save(point, {"m": 1.0}, {}, arrays=arrays)
        loaded = store.load(point)
        assert np.array_equal(loaded["arrays"]["goodput"], arrays["goodput"])

    def test_missing_point_raises(self, tmp_path):
        with pytest.raises(ReproError):
            CampaignStore(tmp_path).load(make_point())

    def test_manifest_heals_after_lost_update(self, tmp_path):
        """Checkpointing never touches the manifest; a stale or deleted
        index is re-derived from the chunks whenever consulted."""
        store = CampaignStore(tmp_path)
        store.save(make_point(), {"m": 1.0}, {"backend": "analytic"})
        manifest = store.manifest()  # materialises the index
        assert len(manifest["points"]) == 1
        # A later checkpoint leaves the persisted index stale (O(1)
        # saves)…
        store.save(make_point(seed=9), {"m": 2.0}, {"backend": "fft"})
        assert len(store.manifest()["points"]) == 2  # …healed on read
        (tmp_path / "manifest.json").unlink()  # the index is lost…
        manifest = store.manifest()  # …and rebuilt from the chunks
        assert len(manifest["points"]) == 2
        fresh = CampaignStore(tmp_path).manifest()
        assert fresh == manifest

    def test_manifest_drops_deleted_chunks(self, tmp_path):
        store = CampaignStore(tmp_path)
        point = make_point()
        chunk = store.save(point, {"m": 1.0}, {})
        assert len(store.manifest()["points"]) == 1
        chunk.unlink()
        assert store.manifest()["points"] == {}

    def test_export_rows_are_sorted_and_merged(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save(
            make_point(n_devices=8),
            {"phy_rate_bps": 2.0},
            {"backend": "fft"},
        )
        store.save(
            make_point(n_devices=2),
            {"phy_rate_bps": 1.0},
            {"backend": "analytic"},
        )
        rows = store.export_rows()
        assert [r["n_devices"] for r in rows] == [2, 8]
        assert rows[0]["backend"] == "analytic"
        assert rows[0]["phy_rate_bps"] == 1.0


class TestRunnerEquivalence:
    def test_campaign_equals_direct_sweep_bit_for_bit(self):
        generator = make_rng(0)
        deployment = paper_deployment(rng=child_rng(generator, 0))
        direct = sweep_device_counts(
            deployment,
            COUNTS,
            config=NetScatterConfig(n_association_shifts=0),
            n_rounds=ROUNDS,
            rng=generator,
            engine="analytic",
        )
        campaign = run_campaign_sweep(small_spec())
        assert campaign == direct

    def test_store_backed_rerun_recomputes_zero_points(self, tmp_path):
        spec = small_spec()
        runner = CampaignRunner(store=tmp_path)
        first = runner.run(spec)
        assert (first.n_computed, first.n_cached) == (len(COUNTS), 0)
        second = runner.run(spec)
        assert (second.n_computed, second.n_cached) == (0, len(COUNTS))
        assert second.metrics == first.metrics  # served bit-for-bit

    def test_fig17_driver_rows_identical_with_and_without_store(
        self, tmp_path
    ):
        with_store = fig17_phy_rate.run(
            rng=0, device_counts=COUNTS, n_rounds=ROUNDS, store=tmp_path
        )
        plain = fig17_phy_rate.run(
            rng=0, device_counts=COUNTS, n_rounds=ROUNDS
        )
        assert with_store.rows == plain.rows

    def test_fig18_reuses_fig17_store_entirely(self, tmp_path):
        fig17_phy_rate.run(
            rng=0, device_counts=COUNTS, n_rounds=ROUNDS, store=tmp_path
        )
        store = CampaignStore(tmp_path)
        assert len(store) == len(COUNTS)
        calls = []
        original = campaign_runner.execute_point

        def counting(point):
            calls.append(point)
            return original(point)

        campaign_runner.execute_point = counting
        try:
            result = fig18_linklayer.run(
                rng=0,
                device_counts=COUNTS,
                n_rounds=ROUNDS,
                store=tmp_path,
            )
        finally:
            campaign_runner.execute_point = original
        assert calls == []  # every fig18 point served from fig17's run
        assert len(store) == len(COUNTS)  # nothing new stored
        plain = fig18_linklayer.run(
            rng=0, device_counts=COUNTS, n_rounds=ROUNDS
        )
        assert result.rows == plain.rows

    def test_provenance_is_stamped_on_stored_points(self, tmp_path):
        runner = CampaignRunner(store=tmp_path)
        runner.run(small_spec())
        for row in CampaignStore(tmp_path).export_rows():
            assert row["backend"] == "analytic"
            assert row["noise_mode"] == "payload"
            assert row["noise_version"] == 2
            assert row["calibration_schema"].startswith(
                "repro-backend-plan"
            )


class TestResumability:
    def test_killed_run_resumes_and_matches_single_shot(
        self, tmp_path, monkeypatch
    ):
        """Kill after the first point; the re-run must load it from the
        store, compute only the rest, and end bit-identical (manifest
        and metrics) to a fresh single-shot campaign."""
        spec = small_spec()
        original = campaign_runner.execute_point

        calls = {"n": 0}

        def dying(point):
            if calls["n"] >= 1:
                raise KeyboardInterrupt("simulated mid-campaign kill")
            calls["n"] += 1
            return original(point)

        resumed_dir = tmp_path / "resumed"
        monkeypatch.setattr(campaign_runner, "execute_point", dying)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(store=resumed_dir).run(spec)
        monkeypatch.setattr(campaign_runner, "execute_point", original)

        survivor = CampaignStore(resumed_dir)
        assert len(survivor) == 1  # the completed point was checkpointed

        executed = []

        def counting(point):
            executed.append(point.n_devices)
            return original(point)

        monkeypatch.setattr(campaign_runner, "execute_point", counting)
        resumed = CampaignRunner(store=resumed_dir).run(spec)
        assert executed == [COUNTS[1]]  # only the missing point ran
        assert (resumed.n_cached, resumed.n_computed) == (1, 1)

        fresh_dir = tmp_path / "fresh"
        monkeypatch.setattr(campaign_runner, "execute_point", original)
        fresh = CampaignRunner(store=fresh_dir).run(spec)
        assert resumed.metrics == fresh.metrics
        assert (
            CampaignStore(resumed_dir).manifest()
            == CampaignStore(fresh_dir).manifest()
        )

    def test_stale_schema_points_do_not_match(self, tmp_path):
        """A content-hash miss (here: a different seed) never serves a
        stale result — the point recomputes instead."""
        runner = CampaignRunner(store=tmp_path)
        runner.run(small_spec())
        shifted = runner.run(small_spec(rng=1))
        assert shifted.n_computed == len(COUNTS)


class TestPoolFallback:
    def test_resolve_rules(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_pool_workers(None) == 0
        assert resolve_pool_workers(0) == 0
        assert resolve_pool_workers(1) == 0
        assert resolve_pool_workers(4) == 4
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_pool_workers(4) == 0
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_pool_workers(4) == 0

    def test_sweep_on_single_cpu_never_spawns_a_pool(self, monkeypatch):
        """workers= on a 1-CPU host runs serially — pinned behaviour."""
        import repro.protocol.network as network

        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ProcessPoolExecutor spawned on a 1-CPU host"
                )

        monkeypatch.setattr(
            network, "ProcessPoolExecutor", ExplodingPool
        )
        deployment = paper_deployment(n_devices=16, rng=2026)
        pooled = sweep_device_counts(
            deployment,
            COUNTS,
            config=NetScatterConfig(n_association_shifts=0),
            n_rounds=1,
            rng=17,
            engine="analytic",
            workers=4,
        )
        serial = sweep_device_counts(
            deployment,
            COUNTS,
            config=NetScatterConfig(n_association_shifts=0),
            n_rounds=1,
            rng=17,
            engine="analytic",
        )
        assert pooled == serial

    def test_campaign_runner_on_single_cpu_never_spawns_a_pool(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ProcessPoolExecutor spawned on a 1-CPU host"
                )

        monkeypatch.setattr(
            campaign_runner, "ProcessPoolExecutor", ExplodingPool
        )
        run = CampaignRunner(store=tmp_path, workers=4).run(small_spec())
        assert run.n_computed == len(COUNTS)
        assert run.metrics == run_campaign_sweep(small_spec())

    def test_pooled_campaign_matches_serial(self, monkeypatch):
        """With CPUs available the pool path produces identical
        metrics (each point owns its pre-derived seed)."""
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        pooled = CampaignRunner(workers=2).run(small_spec())
        assert pooled.metrics == run_campaign_sweep(small_spec())


class TestCli:
    def run_cli(self, *argv):
        return campaign_cli(list(argv))

    def test_run_matches_fig17_driver_metrics(self, tmp_path, capsys):
        """Acceptance pin: `python -m repro.campaign run` reproduces
        fig17's sweep metrics identically to the direct driver path."""
        counts_arg = ",".join(str(c) for c in COUNTS)
        assert (
            self.run_cli(
                "run",
                "--spec",
                "fig17",
                "--seed",
                "0",
                "--counts",
                counts_arg,
                "--rounds",
                str(ROUNDS),
                "--store",
                str(tmp_path),
            )
            == 0
        )
        capsys.readouterr()
        driver = fig17_phy_rate.run(
            rng=0, device_counts=COUNTS, n_rounds=ROUNDS
        )
        rows = CampaignStore(tmp_path).export_rows()
        assert [r["n_devices"] for r in rows] == list(COUNTS)
        for row, driver_row in zip(rows, driver.rows):
            assert (
                row["phy_rate_bps"] / 1e3 == driver_row["netscatter_kbps"]
            )

    def test_rerun_reports_full_cache(self, tmp_path, capsys):
        for _ in range(2):
            self.run_cli(
                "run",
                "--spec",
                "fig17",
                "--seed",
                "0",
                "--counts",
                "1,16",
                "--rounds",
                "1",
                "--store",
                str(tmp_path),
            )
        out = capsys.readouterr().out
        assert "(2 cached, 0 computed)" in out

    def test_status_and_export(self, tmp_path, capsys):
        self.run_cli(
            "run",
            "--spec",
            "fig17",
            "--seed",
            "0",
            "--counts",
            "1,16",
            "--rounds",
            "1",
            "--store",
            str(tmp_path),
        )
        capsys.readouterr()
        assert self.run_cli("status", "--store", str(tmp_path)) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["n_points"] == 2
        assert status["by_engine"] == {"auto": 2}

        output = tmp_path / "export.csv"
        assert (
            self.run_cli(
                "export",
                "--store",
                str(tmp_path),
                "--format",
                "csv",
                "--output",
                str(output),
            )
            == 0
        )
        header, first, second = (
            output.read_text().strip().splitlines()
        )
        assert "phy_rate_bps" in header
        assert first.split(",")[1] == "1"
        assert second.split(",")[1] == "16"

    def test_spec_json_round_trip(self, tmp_path, capsys):
        self.run_cli(
            "run",
            "--spec",
            "fig17",
            "--seed",
            "0",
            "--counts",
            "1,16",
            "--rounds",
            "1",
            "--store",
            str(tmp_path),
            "--save-spec",
        )
        capsys.readouterr()
        assert self.run_cli(
            "run",
            "--spec",
            str(tmp_path / "spec.json"),
            "--store",
            str(tmp_path),
        ) == 0
        assert "(2 cached, 0 computed)" in capsys.readouterr().out

    def test_unknown_spec_errors(self, tmp_path):
        with pytest.raises(ReproError):
            self.run_cli(
                "run",
                "--spec",
                "not-a-preset",
                "--store",
                str(tmp_path),
            )

    def test_preset_only_flags_rejected_for_json_specs(
        self, tmp_path, capsys
    ):
        """A JSON spec is already expanded: --seed/--counts/--rounds/
        --engine must refuse loudly, not silently run the original
        grid."""
        self.run_cli(
            "run",
            "--spec",
            "fig17",
            "--counts",
            "1,16",
            "--rounds",
            "1",
            "--store",
            str(tmp_path),
            "--save-spec",
        )
        capsys.readouterr()
        spec_file = str(tmp_path / "spec.json")
        with pytest.raises(ReproError, match="--seed, --counts"):
            self.run_cli(
                "run",
                "--spec",
                spec_file,
                "--seed",
                "1",
                "--counts",
                "16",
                "--store",
                str(tmp_path),
            )
        # Without overrides the JSON spec still runs (fully cached).
        assert (
            self.run_cli("run", "--spec", spec_file, "--store", str(tmp_path))
            == 0
        )
        assert "(2 cached, 0 computed)" in capsys.readouterr().out

    def test_drivers_share_the_preset_grid_and_config(self):
        """Single source: the fig17/fig18 drivers' default grid and
        sweep config are the preset module's objects."""
        from repro.campaign.presets import (
            DEFAULT_DEVICE_COUNTS,
            SWEEP_CONFIG,
        )
        import inspect

        for driver in (fig17_phy_rate.run, fig18_linklayer.run):
            signature = inspect.signature(driver)
            assert (
                signature.parameters["device_counts"].default
                is DEFAULT_DEVICE_COUNTS
            )
        assert small_spec().config == SWEEP_CONFIG
