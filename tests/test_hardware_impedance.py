"""Unit tests for repro.hardware.impedance and switch network."""

import math

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hardware.impedance import (
    backscatter_power_gain,
    backscatter_power_gain_db,
    gain_sweep,
    paper_fig7a_series,
    reflection_coefficient,
    solve_z0_for_gain_db,
)
from repro.hardware.switch_network import PowerLevel, SwitchNetwork


class TestReflectionCoefficient:
    def test_matched_load(self):
        assert reflection_coefficient(50.0) == pytest.approx(0.0)

    def test_short(self):
        assert reflection_coefficient(0.0) == pytest.approx(-1.0)

    def test_open(self):
        assert reflection_coefficient(None) == pytest.approx(1.0)
        assert reflection_coefficient(math.inf) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            reflection_coefficient(-10.0)


class TestPowerGain:
    def test_short_open_is_0db(self):
        """Switching short <-> open maximises |G0 - G1| = 2: 0 dB gain."""
        assert backscatter_power_gain(0.0, None) == pytest.approx(1.0)
        assert backscatter_power_gain_db(0.0, None) == pytest.approx(0.0)

    def test_same_impedance_is_silent(self):
        assert backscatter_power_gain(100.0, 100.0) == pytest.approx(0.0)
        assert backscatter_power_gain_db(100.0, 100.0) == -math.inf

    def test_monotone_in_z0(self):
        gains = gain_sweep(np.linspace(0.0, 1000.0, 50))
        assert np.all(np.diff(gains) < 1e-9)

    def test_fig7a_range(self):
        """Fig. 7a spans roughly 0 to -30 dB over Z0 in [0, 1000]."""
        z0, gains = paper_fig7a_series()
        assert gains[0] == pytest.approx(0.0)
        assert -35.0 < gains[-1] < -20.0


class TestSolveZ0:
    def test_0db_is_short(self):
        assert solve_z0_for_gain_db(0.0) == pytest.approx(0.0)

    def test_solutions_realise_targets(self):
        for target in (-2.0, -4.0, -10.0, -20.0):
            z0 = solve_z0_for_gain_db(target)
            assert backscatter_power_gain_db(z0, None) == pytest.approx(
                target, abs=1e-9
            )

    def test_positive_gain_rejected(self):
        with pytest.raises(HardwareModelError):
            solve_z0_for_gain_db(1.0)


class TestSwitchNetwork:
    def test_paper_levels(self):
        network = SwitchNetwork()
        assert [lv.gain_db for lv in network.levels] == [0.0, -4.0, -10.0]

    def test_realisation_verified(self):
        assert SwitchNetwork().verify_realisation()

    def test_selection(self):
        network = SwitchNetwork()
        network.select(2)
        assert network.gain_db == -10.0

    def test_step_down_clamps(self):
        network = SwitchNetwork()
        network.select(2)
        network.step_down()
        assert network.gain_db == -10.0
        assert not network.can_step_down()

    def test_step_up_clamps(self):
        network = SwitchNetwork()
        network.step_up()
        assert network.gain_db == 0.0
        assert not network.can_step_up()

    def test_middle_index(self):
        assert SwitchNetwork().middle_index() == 1

    def test_select_gain_db(self):
        network = SwitchNetwork()
        level = network.select_gain_db(-4.2, tol_db=0.5)
        assert level.gain_db == -4.0

    def test_select_gain_out_of_tolerance(self):
        network = SwitchNetwork()
        with pytest.raises(HardwareModelError):
            network.select_gain_db(-7.0, tol_db=0.5)

    def test_invalid_index(self):
        with pytest.raises(HardwareModelError):
            SwitchNetwork().select(3)

    def test_duplicate_levels_rejected(self):
        with pytest.raises(HardwareModelError):
            SwitchNetwork(gains_db=(0.0, 0.0))

    def test_positive_level_rejected(self):
        with pytest.raises(HardwareModelError):
            SwitchNetwork(gains_db=(3.0,))

    def test_level_str(self):
        level = PowerLevel(index=0, gain_db=0.0, z0_ohm=0.0)
        assert "level 0" in str(level)
