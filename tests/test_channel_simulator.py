"""Unit tests for the waveform-fidelity channel simulator."""

import pytest

from repro.channel.simulator import (
    WaveformScenario,
    WaveformSimulator,
    cross_validate_paths,
)
from repro.core.dcss import DeviceTransmission
from repro.core.receiver import NetScatterReceiver
from repro.errors import ConfigurationError


@pytest.fixture
def sim(small_config):
    return WaveformSimulator(small_config, oversampling=4, rng=7)


class TestRendering:
    def test_stream_length(self, sim, small_config):
        txs = [DeviceTransmission(shift=4, bits=[1, 0, 1])]
        scenario = sim.render(txs, leading_silence_symbols=1,
                              trailing_silence_symbols=1)
        n = small_config.chirp_params.n_samples
        assert scenario.stream.size == (1 + 8 + 3 + 1) * n

    def test_true_start(self, sim, small_config):
        txs = [DeviceTransmission(shift=4, bits=[1])]
        scenario = sim.render(txs, leading_silence_symbols=3)
        assert scenario.true_start == 3 * small_config.chirp_params.n_samples

    def test_noiseless_decodes(self, sim, small_config):
        txs = [
            DeviceTransmission(shift=4, bits=[1, 0, 1, 1]),
            DeviceTransmission(shift=32, bits=[0, 1, 0, 1]),
        ]
        scenario = sim.render(txs)
        receiver = NetScatterReceiver(small_config, {0: 4, 1: 32})
        decode = receiver.decode_frame(scenario.stream, n_payload_bits=4)
        assert decode.bits_of(0) == [1, 0, 1, 1]
        assert decode.bits_of(1) == [0, 1, 0, 1]

    def test_noisy_decodes(self, sim, small_config):
        txs = [DeviceTransmission(shift=10, bits=[1, 1, 0, 0])]
        scenario = sim.render(txs, snr_db=5.0)
        receiver = NetScatterReceiver(small_config, {0: 10})
        decode = receiver.decode_frame(scenario.stream, n_payload_bits=4)
        assert decode.bits_of(0) == [1, 1, 0, 0]

    def test_subsample_delay_applied(self, small_config):
        """A half-critical-sample delay is representable at 4x OS and
        moves the dechirped peak downward by about half a bin.

        At fractional offsets the chirp's frequency-wrap point lands
        mid-window with a 2*pi*delta phase jump, splitting some energy
        between adjacent interpolated bins (real CSS behaves the same),
        so the tolerance is loose around the nominal -0.5-bin move.
        """
        from repro.phy.demodulation import Demodulator

        sim = WaveformSimulator(small_config, oversampling=4, rng=3)
        params = small_config.chirp_params
        delay_s = 0.5 / params.bandwidth_hz  # half a critical sample
        txs = [DeviceTransmission(shift=20, bits=[1], delay_s=delay_s)]
        scenario = sim.render(txs, leading_silence_symbols=0,
                              trailing_silence_symbols=0)
        demod = Demodulator(params)
        result = demod.dechirp(scenario.stream[: params.n_samples])
        peak = result.peak_bin()
        assert 18.5 <= peak <= 19.9  # moved down, near 19.5

    def test_integer_delay_exact(self, small_config):
        """Integer critical-sample delays shift the peak exactly."""
        from repro.phy.demodulation import Demodulator

        sim = WaveformSimulator(small_config, oversampling=4, rng=3)
        params = small_config.chirp_params
        delay_s = 1.0 / params.bandwidth_hz
        txs = [DeviceTransmission(shift=20, bits=[1], delay_s=delay_s)]
        scenario = sim.render(txs, leading_silence_symbols=0,
                              trailing_silence_symbols=0)
        demod = Demodulator(params)
        result = demod.dechirp(scenario.stream[: params.n_samples])
        assert result.peak_bin() == pytest.approx(19.0, abs=0.1)

    def test_multipath_still_decodes(self, small_config):
        sim = WaveformSimulator(
            small_config, oversampling=4, multipath=True, rng=9
        )
        txs = [DeviceTransmission(shift=8, bits=[1, 0, 1, 0])]
        scenario = sim.render(txs, snr_db=10.0)
        receiver = NetScatterReceiver(small_config, {0: 8})
        decode = receiver.decode_frame(scenario.stream, n_payload_bits=4)
        assert decode.bits_of(0) == [1, 0, 1, 0]

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            sim.render([])
        with pytest.raises(ConfigurationError):
            sim.render(
                [
                    DeviceTransmission(shift=4, bits=[1]),
                    DeviceTransmission(shift=8, bits=[1, 0]),
                ]
            )
        with pytest.raises(ConfigurationError):
            sim.render([DeviceTransmission(shift=4, bits=[2])])

    def test_invalid_oversampling(self, small_config):
        with pytest.raises(ConfigurationError):
            WaveformSimulator(small_config, oversampling=0)

    def test_scenario_carries_oversampled(self, sim):
        txs = [DeviceTransmission(shift=4, bits=[1])]
        scenario = sim.render(txs)
        assert isinstance(scenario, WaveformScenario)
        assert scenario.oversampled.size == 4 * scenario.stream.size


class TestCrossValidation:
    def test_paths_agree_at_moderate_snr(self, config):
        txs = [
            DeviceTransmission(shift=10, bits=[1, 0, 1, 1]),
            DeviceTransmission(shift=250, bits=[0, 1, 1, 0]),
        ]
        out = cross_validate_paths(config, txs, snr_db=0.0, rng=5)
        assert out["waveform"] == out["fast"]

    def test_paths_agree_below_noise(self, config):
        txs = [DeviceTransmission(shift=100, bits=[1, 1, 0, 1, 0, 0])]
        out = cross_validate_paths(config, txs, snr_db=-8.0, rng=6)
        assert out["waveform"] == out["fast"] == {0: [1, 1, 0, 1, 0, 0]}
