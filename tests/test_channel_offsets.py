"""Unit tests for repro.channel.offsets — timing/frequency/Doppler."""

import pytest

from repro.channel.offsets import (
    FrequencyOffsetModel,
    TimingOffsetModel,
    backscatter_frequency_model,
    doppler_bin_shift,
    radio_frequency_model,
    residual_bin_offset,
)
from repro.errors import ReproError


class TestTimingOffsetModel:
    def test_delays_within_bounds(self, rng):
        model = TimingOffsetModel()
        for _ in range(200):
            delay = model.sample_delay_s(rng)
            assert 0.0 <= delay <= model.max_delay_s

    def test_worst_case_bins_paper(self, params):
        """3.5 us of jitter at 500 kHz exceeds one FFT bin (Section
        3.2.1's motivation for SKIP)."""
        model = TimingOffsetModel(max_delay_s=3.5e-6)
        assert model.worst_case_bins(params) == pytest.approx(1.75)

    def test_bin_offset_scales_with_bandwidth(self, rng):
        model = TimingOffsetModel()
        from repro.phy.chirp import ChirpParams

        wide = ChirpParams(500e3, 9)
        narrow = ChirpParams(125e3, 7)
        # Same delay distribution: 4x the bandwidth, 4x the bins.
        assert model.worst_case_bins(wide) == pytest.approx(
            4 * model.worst_case_bins(narrow)
        )

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            TimingOffsetModel(max_delay_s=-1.0)


class TestFrequencyOffsetModel:
    def test_max_offset(self):
        model = FrequencyOffsetModel(
            oscillator_freq_hz=3e6, tolerance_ppm=100.0
        )
        assert model.max_offset_hz == pytest.approx(300.0)

    def test_samples_within_tolerance(self, rng):
        model = FrequencyOffsetModel(
            oscillator_freq_hz=3e6, tolerance_ppm=50.0
        )
        for _ in range(200):
            assert abs(model.sample_offset_hz(rng)) <= model.max_offset_hz

    def test_backscatter_vs_radio_ratio(self):
        """Section 2.2: tags synthesise ~3 MHz vs 900 MHz for radios,
        so their frequency offsets are 300x smaller at equal ppm."""
        tag = backscatter_frequency_model(tolerance_ppm=50.0)
        radio = radio_frequency_model(tolerance_ppm=50.0)
        assert radio.max_offset_hz / tag.max_offset_hz == pytest.approx(
            300.0
        )

    def test_tag_offset_below_one_bin(self, params, rng):
        """At (500 kHz, SF 9) the tag's crystal error stays well below
        one FFT bin — the paper's negligibility claim."""
        model = backscatter_frequency_model(tolerance_ppm=100.0)
        for _ in range(100):
            assert abs(model.sample_bin_offset(params, rng)) < 1.0

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            FrequencyOffsetModel(oscillator_freq_hz=0.0)


class TestDoppler:
    def test_paper_example(self, params):
        """10 m/s at 900 MHz: 30 Hz << 976 Hz bin spacing."""
        shift = doppler_bin_shift(10.0, params)
        assert shift == pytest.approx(30.0 / 976.5625, rel=0.01)
        assert shift < 0.05

    def test_static_no_shift(self, params):
        assert doppler_bin_shift(0.0, params) == 0.0


class TestResidual:
    def test_combines_both_sources(self, params, rng):
        timing = TimingOffsetModel()
        freq = backscatter_frequency_model()
        values = [
            residual_bin_offset(params, timing, freq, rng)
            for _ in range(100)
        ]
        assert all(v >= 0 for v in values)
        assert max(values) <= timing.worst_case_bins(params) + 1.0
