"""Unit tests for the access point and the network simulator."""

import numpy as np
import pytest

from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.ap import AccessPoint
from repro.protocol.network import NetworkSimulator, sweep_device_counts


class TestAccessPoint:
    def test_association_assigns_shift(self, config):
        ap = AccessPoint(config)
        shift = ap.run_association(0, measured_snr_db=12.0)
        assert shift % config.skip == 0
        assert ap.n_members == 1

    def test_queries_counted(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 12.0)
        ap.build_query()
        assert ap.stats.queries_sent >= 2
        assert ap.stats.downlink_bits_sent > 0

    def test_reassignment_piggybacked_once(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 10.0)
        # A stronger newcomer displaces device 0 -> reassignment query.
        ap.run_association(1, 30.0)
        query = ap.build_query()
        assert query.reassignment_order is not None
        follow_up = ap.build_query()
        assert follow_up.reassignment_order is None

    def test_receiver_bound_to_assignments(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 12.0)
        ap.run_association(1, 20.0)
        receiver = ap.receiver()
        assert set(receiver.assignments) == {0, 1}

    def test_receiver_requires_members(self, config):
        with pytest.raises(ProtocolError):
            AccessPoint(config).receiver()

    def test_round_scheduling(self, config):
        ap = AccessPoint(config)
        for device_id in range(5):
            ap.run_association(device_id, 10.0 + device_id)
        devices = ap.next_round_devices()
        assert sorted(devices) == [0, 1, 2, 3, 4]

    def test_member_snr_update(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 10.0)
        ap.run_association(1, 20.0)
        changed = ap.update_member_snr(0, 35.0)
        assert changed
        query = ap.build_query()
        assert query.reassignment_order is not None

    def test_unknown_member_update_rejected(self, config):
        ap = AccessPoint(config)
        with pytest.raises(Exception):
            ap.update_member_snr(9, 10.0)


class TestNetworkSimulator:
    def test_small_network_perfect_delivery(self):
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        metrics = sim.run_rounds(3)
        assert metrics.delivery_ratio == pytest.approx(1.0)
        assert metrics.bit_error_rate == pytest.approx(0.0, abs=1e-3)

    def test_phy_rate_tracks_device_count(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        small = NetworkSimulator(deployment.subset(16), rng=4).run_rounds(2)
        large = NetworkSimulator(deployment.subset(64), rng=4).run_rounds(2)
        assert large.phy_rate_bps > 3.0 * small.phy_rate_bps

    def test_power_control_limits_spread(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        sim = NetworkSimulator(deployment, power_control=True, rng=4)
        effective = sim.effective_snrs_db()
        assert max(effective) - min(effective) <= 36.0

    def test_no_power_control_wider_spread(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        on = NetworkSimulator(deployment, power_control=True, rng=4)
        off = NetworkSimulator(deployment, power_control=False, rng=4)
        spread_on = max(on.effective_snrs_db()) - min(on.effective_snrs_db())
        spread_off = max(off.effective_snrs_db()) - min(
            off.effective_snrs_db()
        )
        assert spread_off > spread_on

    def test_latency_matches_airtime_accounting(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, query_bits=32, rng=4)
        metrics = sim.run_rounds(1)
        # 32/160k + 48 * 1.024 ms = 49.35 ms.
        assert metrics.latency_s == pytest.approx(49.35e-3, abs=0.1e-3)

    def test_round_result_bookkeeping(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        result = sim.run_round()
        assert result.total_bits_sent == 4 * 40
        assert 0 <= result.packets_delivered <= 4
        assert set(result.sent_bits) == set(result.received_bits)

    def test_oversubscription_rejected(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        config = NetScatterConfig(
            bandwidth_hz=125e3, spreading_factor=6, skip=2,
            n_association_shifts=0,
        )
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, config=config)

    def test_zero_rounds_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        with pytest.raises(ConfigurationError):
            sim.run_rounds(0)

    def test_fading_round_runs(self):
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        result = sim.run_round(fading=True)
        assert result.n_devices == 8


class TestSweep:
    def test_sweep_shapes(self):
        deployment = paper_deployment(n_devices=32, rng=3)
        metrics = sweep_device_counts(
            deployment, (4, 16, 32), n_rounds=1, rng=5
        )
        assert [m.n_devices for m in metrics] == [4, 16, 32]
        rates = [m.phy_rate_bps for m in metrics]
        assert rates[0] < rates[1] < rates[2]

    def test_invalid_engine_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, engine="fft")
        with pytest.raises(ConfigurationError):
            sweep_device_counts(deployment, (2,), engine="waveform")

    def test_engines_agree_on_clean_networks(self):
        """Both engines deliver perfectly on an easy deployment."""
        deployment = paper_deployment(n_devices=8, rng=3)
        for engine in ("analytic", "time"):
            sim = NetworkSimulator(deployment, rng=4, engine=engine)
            metrics = sim.run_rounds(3)
            assert metrics.delivery_ratio == pytest.approx(1.0)
            assert metrics.goodput_bits_per_round == pytest.approx(
                8 * 40
            )

    def test_airtime_is_typed(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        result = NetworkSimulator(deployment, rng=4).run_round()
        from repro.analysis.airtime import RoundAirtime

        assert isinstance(result.airtime, RoundAirtime)
        assert result.airtime.total_s > 0

    def test_float32_threshold_applies_to_large_points(self):
        deployment = paper_deployment(n_devices=32, rng=3)
        metrics = sweep_device_counts(
            deployment,
            (8, 32),
            n_rounds=1,
            rng=5,
            float32_min_devices=16,
        )
        assert [m.n_devices for m in metrics] == [8, 32]
        assert all(m.delivery_ratio > 0.9 for m in metrics)

    def test_worker_pool_matches_serial(self):
        """Process-pool sweeps reproduce the serial results exactly."""
        deployment = paper_deployment(n_devices=16, rng=3)
        serial = sweep_device_counts(
            deployment, (4, 8, 16), n_rounds=2, rng=6
        )
        pooled = sweep_device_counts(
            deployment, (4, 8, 16), n_rounds=2, rng=6, workers=2
        )
        for a, b in zip(serial, pooled):
            assert a == b
