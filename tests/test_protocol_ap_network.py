"""Unit tests for the access point and the network simulator."""

import numpy as np
import pytest

from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.ap import AccessPoint
from repro.protocol.network import NetworkSimulator, sweep_device_counts


class TestAccessPoint:
    def test_association_assigns_shift(self, config):
        ap = AccessPoint(config)
        shift = ap.run_association(0, measured_snr_db=12.0)
        assert shift % config.skip == 0
        assert ap.n_members == 1

    def test_queries_counted(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 12.0)
        ap.build_query()
        assert ap.stats.queries_sent >= 2
        assert ap.stats.downlink_bits_sent > 0

    def test_reassignment_piggybacked_once(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 10.0)
        # A stronger newcomer displaces device 0 -> reassignment query.
        ap.run_association(1, 30.0)
        query = ap.build_query()
        assert query.reassignment_order is not None
        follow_up = ap.build_query()
        assert follow_up.reassignment_order is None

    def test_receiver_bound_to_assignments(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 12.0)
        ap.run_association(1, 20.0)
        receiver = ap.receiver()
        assert set(receiver.assignments) == {0, 1}

    def test_receiver_requires_members(self, config):
        with pytest.raises(ProtocolError):
            AccessPoint(config).receiver()

    def test_round_scheduling(self, config):
        ap = AccessPoint(config)
        for device_id in range(5):
            ap.run_association(device_id, 10.0 + device_id)
        devices = ap.next_round_devices()
        assert sorted(devices) == [0, 1, 2, 3, 4]

    def test_member_snr_update(self, config):
        ap = AccessPoint(config)
        ap.run_association(0, 10.0)
        ap.run_association(1, 20.0)
        changed = ap.update_member_snr(0, 35.0)
        assert changed
        query = ap.build_query()
        assert query.reassignment_order is not None

    def test_unknown_member_update_rejected(self, config):
        ap = AccessPoint(config)
        with pytest.raises(Exception):
            ap.update_member_snr(9, 10.0)


class TestNetworkSimulator:
    def test_small_network_perfect_delivery(self):
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        metrics = sim.run_rounds(3)
        assert metrics.delivery_ratio == pytest.approx(1.0)
        assert metrics.bit_error_rate == pytest.approx(0.0, abs=1e-3)

    def test_phy_rate_tracks_device_count(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        small = NetworkSimulator(deployment.subset(16), rng=4).run_rounds(2)
        large = NetworkSimulator(deployment.subset(64), rng=4).run_rounds(2)
        assert large.phy_rate_bps > 3.0 * small.phy_rate_bps

    def test_power_control_limits_spread(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        sim = NetworkSimulator(deployment, power_control=True, rng=4)
        effective = sim.effective_snrs_db()
        assert max(effective) - min(effective) <= 36.0

    def test_no_power_control_wider_spread(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        on = NetworkSimulator(deployment, power_control=True, rng=4)
        off = NetworkSimulator(deployment, power_control=False, rng=4)
        spread_on = max(on.effective_snrs_db()) - min(on.effective_snrs_db())
        spread_off = max(off.effective_snrs_db()) - min(
            off.effective_snrs_db()
        )
        assert spread_off > spread_on

    def test_latency_matches_airtime_accounting(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, query_bits=32, rng=4)
        metrics = sim.run_rounds(1)
        # 32/160k + 48 * 1.024 ms = 49.35 ms.
        assert metrics.latency_s == pytest.approx(49.35e-3, abs=0.1e-3)

    def test_round_result_bookkeeping(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        result = sim.run_round()
        assert result.total_bits_sent == 4 * 40
        assert 0 <= result.packets_delivered <= 4
        assert set(result.sent_bits) == set(result.received_bits)

    def test_oversubscription_rejected(self):
        deployment = paper_deployment(n_devices=64, rng=3)
        config = NetScatterConfig(
            bandwidth_hz=125e3, spreading_factor=6, skip=2,
            n_association_shifts=0,
        )
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, config=config)

    def test_zero_rounds_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        with pytest.raises(ConfigurationError):
            sim.run_rounds(0)

    def test_fading_round_runs(self):
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4)
        result = sim.run_round(fading=True)
        assert result.n_devices == 8


class TestSweep:
    def test_sweep_shapes(self):
        deployment = paper_deployment(n_devices=32, rng=3)
        metrics = sweep_device_counts(
            deployment, (4, 16, 32), n_rounds=1, rng=5
        )
        assert [m.n_devices for m in metrics] == [4, 16, 32]
        rates = [m.phy_rate_bps for m in metrics]
        assert rates[0] < rates[1] < rates[2]

    def test_invalid_engine_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, engine="fft")
        with pytest.raises(ConfigurationError):
            sweep_device_counts(deployment, (2,), engine="waveform")

    def test_engines_agree_on_clean_networks(self):
        """Both engines deliver perfectly on an easy deployment."""
        deployment = paper_deployment(n_devices=8, rng=3)
        for engine in ("analytic", "time"):
            sim = NetworkSimulator(deployment, rng=4, engine=engine)
            metrics = sim.run_rounds(3)
            assert metrics.delivery_ratio == pytest.approx(1.0)
            assert metrics.goodput_bits_per_round == pytest.approx(
                8 * 40
            )

    def test_airtime_is_typed(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        result = NetworkSimulator(deployment, rng=4).run_round()
        from repro.analysis.airtime import RoundAirtime

        assert isinstance(result.airtime, RoundAirtime)
        assert result.airtime.total_s > 0

    def test_float32_threshold_applies_to_large_points(self):
        deployment = paper_deployment(n_devices=32, rng=3)
        metrics = sweep_device_counts(
            deployment,
            (8, 32),
            n_rounds=1,
            rng=5,
            float32_min_devices=16,
        )
        assert [m.n_devices for m in metrics] == [8, 32]
        assert all(m.delivery_ratio > 0.9 for m in metrics)

    def test_worker_pool_matches_serial(self):
        """Process-pool sweeps reproduce the serial results exactly."""
        deployment = paper_deployment(n_devices=16, rng=3)
        serial = sweep_device_counts(
            deployment, (4, 8, 16), n_rounds=2, rng=6
        )
        pooled = sweep_device_counts(
            deployment, (4, 8, 16), n_rounds=2, rng=6, workers=2
        )
        for a, b in zip(serial, pooled):
            assert a == b


class TestAdaptiveEngineAndFading:
    def test_auto_engine_records_backend(self):
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4, engine="auto")
        metrics = sim.run_rounds(2)
        assert metrics.backend in ("analytic", "sparse", "fft")
        assert metrics.delivery_ratio == pytest.approx(1.0)
        result = sim.run_round()
        assert result.backend == metrics.backend

    def test_fixed_engines_record_their_backend(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        analytic = NetworkSimulator(deployment, rng=4, engine="analytic")
        assert analytic.run_rounds(1).backend == "analytic"
        time_sim = NetworkSimulator(deployment, rng=4, engine="time")
        assert time_sim.run_rounds(1).backend == "sparse"

    def test_sweep_auto_engine(self):
        deployment = paper_deployment(n_devices=32, rng=3)
        metrics = sweep_device_counts(
            deployment, (4, 32), n_rounds=1, rng=5, engine="auto"
        )
        assert [m.n_devices for m in metrics] == [4, 32]
        assert all(
            m.backend in ("analytic", "sparse", "fft") for m in metrics
        )

    def test_invalid_fading_mode_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=3)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(deployment, fading_mode="vectorised")

    def test_batched_fading_statistically_matches_per_round(self):
        """Same deployment, same seed: the batched AR(1)-track path and
        the legacy per-round execution draw through different stream
        interleavings, so metrics agree statistically, not bitwise.
        The nonzero reference scale must shift both paths alike."""
        outcomes = {}
        for mode in ("batched", "per_round"):
            deployment = paper_deployment(n_devices=24, rng=6)
            sim = NetworkSimulator(
                deployment,
                rng=7,
                engine="analytic",
                fading_mode=mode,
                reference_snr_scale_db=4.0,
            )
            outcomes[mode] = sim.run_rounds(60, fading=True)
        batched, legacy = outcomes["batched"], outcomes["per_round"]
        assert batched.delivery_ratio == pytest.approx(
            legacy.delivery_ratio, abs=0.03
        )
        assert batched.bit_error_rate == pytest.approx(
            legacy.bit_error_rate, abs=0.01
        )
        assert batched.phy_rate_bps == pytest.approx(
            legacy.phy_rate_bps, rel=0.05
        )

    def test_fading_rounds_flow_through_batched_engine(self):
        """A multi-round fading batch is one decode call (not a Python
        loop): its backend is recorded and the metrics are finite."""
        deployment = paper_deployment(n_devices=8, rng=3)
        sim = NetworkSimulator(deployment, rng=4, engine="auto")
        metrics = sim.run_rounds(5, fading=True)
        assert metrics.backend in ("analytic", "sparse", "fft")
        assert 0.0 <= metrics.delivery_ratio <= 1.0

    def test_batched_fading_keeps_reference_scale(self):
        """The batched track floor equals the per-round convention:
        fading SNR + reference scale + power gain."""
        deployment = paper_deployment(n_devices=6, rng=6)
        sim = NetworkSimulator(
            deployment, rng=7, engine="analytic",
            reference_snr_scale_db=6.0,
        )
        effective = sim._fading_effective_snrs_db(4)
        states = np.array(
            [d.fading.current_snr_db for d in deployment.devices]
        )
        expected_last = states + 6.0 + np.array(sim._gains_db)
        assert np.allclose(effective[-1], expected_last)
