"""Unit tests for repro.utils.sampling."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils.sampling import (
    apply_cfo,
    decimate,
    fractional_delay,
    integer_roll,
    oversample,
    pad_to_length,
)


class TestOversample:
    def test_length(self):
        assert oversample(np.arange(4), 3).size == 12

    def test_hold_semantics(self):
        out = oversample(np.array([1.0, 2.0]), 2)
        assert out.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_identity_factor(self):
        x = np.arange(5)
        assert np.array_equal(oversample(x, 1), x)

    def test_invalid_factor(self):
        with pytest.raises(ReproError):
            oversample(np.arange(4), 0)


class TestDecimate:
    def test_inverse_of_oversample(self):
        x = np.arange(8, dtype=float)
        assert np.array_equal(decimate(oversample(x, 4), 4), x)

    def test_phase_offset(self):
        x = np.arange(8)
        assert decimate(x, 2, phase=1).tolist() == [1, 3, 5, 7]

    def test_invalid_phase(self):
        with pytest.raises(ReproError):
            decimate(np.arange(4), 2, phase=2)


class TestFractionalDelay:
    def test_integer_delay_matches_roll(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        delayed = fractional_delay(x, 5.0)
        assert np.allclose(delayed, np.roll(x, 5), atol=1e-9)

    def test_zero_delay_is_identity(self, rng):
        x = rng.normal(size=32) + 1j * rng.normal(size=32)
        assert np.allclose(fractional_delay(x, 0.0), x, atol=1e-12)

    def test_half_sample_preserves_energy(self, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        delayed = fractional_delay(x, 0.5)
        assert np.sum(np.abs(delayed) ** 2) == pytest.approx(
            np.sum(np.abs(x) ** 2), rel=1e-9
        )

    def test_delays_compose(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        once = fractional_delay(fractional_delay(x, 0.3), 0.7)
        direct = fractional_delay(x, 1.0)
        assert np.allclose(once, direct, atol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            fractional_delay(np.array([]), 1.0)


class TestCfo:
    def test_zero_cfo_is_identity(self, rng):
        x = rng.normal(size=32) + 1j * rng.normal(size=32)
        assert np.allclose(apply_cfo(x, 0.0, 1e6), x)

    def test_cfo_shifts_tone(self):
        fs = 1000.0
        n = 1000
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 100.0 * t)
        shifted = apply_cfo(tone, 50.0, fs)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_hz = np.fft.fftfreq(n, 1 / fs)[np.argmax(spectrum)]
        assert peak_hz == pytest.approx(150.0, abs=1.0)

    def test_invalid_sample_rate(self):
        with pytest.raises(ReproError):
            apply_cfo(np.ones(4, dtype=complex), 10.0, 0.0)


class TestPadAndRoll:
    def test_pad_preserves_prefix(self):
        x = np.arange(4, dtype=complex)
        padded = pad_to_length(x, 10)
        assert padded.size == 10
        assert np.array_equal(padded[:4], x)
        assert np.all(padded[4:] == 0)

    def test_pad_rejects_shrink(self):
        with pytest.raises(ReproError):
            pad_to_length(np.arange(10), 4)

    def test_integer_roll_wraps(self):
        assert integer_roll(np.array([1, 2, 3]), 1).tolist() == [3, 1, 2]
