"""Fault-tolerant campaign execution: leases, retries, quarantine.

The load-bearing pins:

* **leases** — concurrent runners on one store partition the pending
  points; a killed runner's leases expire and its points are
  reclaimed; the converged store manifest is byte-identical to a
  single-shot clean run's, with zero duplicated point computations;
* **retries** — a crashed or timed-out attempt retries with bounded,
  deterministic backoff; permanent failures surface as
  ``CampaignExecutionError`` (or as ``CampaignRun.failures`` under
  ``allow_partial``) and leave a persisted failure record;
* **quarantine** — a torn chunk or array payload is never served: it
  moves to ``quarantine/`` with a reason stamp and the point is
  recomputed, healing the store;
* **degradation** — a broken process pool downgrades the campaign (and
  the direct network sweep) to serial execution instead of dying.
"""

import json
import multiprocessing
import os
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.campaign.faults as faults_module
import repro.campaign.runner as campaign_runner
import repro.protocol.network as network_module
from repro.campaign.faults import FAULT_PLAN_ENV, FaultPlan, FaultRule, tear_file
from repro.campaign.leases import (
    HeartbeatThread,
    LeaseManager,
    read_lease,
    scan_leases,
)
from repro.campaign.presets import fig17_campaign
from repro.campaign.runner import (
    EXEC_LOG_ENV,
    CampaignRunner,
    RetryPolicy,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.channel.deployment import paper_deployment
from repro.errors import (
    CampaignExecutionError,
    CampaignIntegrityError,
    ConfigurationError,
    FaultInjectedError,
)
from repro.protocol.network import sweep_device_counts

COUNTS = (1, 2)
ROUNDS = 1

#: Fast retry policy for tests (real backoffs, tiny delays).
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)


def small_spec(counts=COUNTS, **overrides):
    kwargs = dict(
        rng=0, device_counts=counts, n_rounds=ROUNDS, engine="analytic"
    )
    kwargs.update(overrides)
    return fig17_campaign(**kwargs)


def make_point(**overrides):
    kwargs = dict(
        deployment={"kind": "paper", "n_devices": 16, "seed": 7},
        config={"n_association_shifts": 0},
        n_devices=8,
        n_rounds=1,
        query_bits=32,
        engine="analytic",
        noise_mode="payload",
        fading=False,
        readout_dtype=None,
        seed=1234,
    )
    kwargs.update(overrides)
    return CampaignPoint(**kwargs)


def plan_from(rules, seed=0):
    return FaultPlan.from_dict(
        {"schema": "repro-fault-plan-v1", "seed": seed, "rules": rules}
    )


def crash_rule(attempts=(1,), **match):
    return {
        "stage": "execute",
        "kind": "crash",
        "match": match,
        "attempts": list(attempts),
    }


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=3)
        assert policy.backoff_s("abc", 1) == policy.backoff_s("abc", 1)
        assert policy.backoff_s("abc", 1) == RetryPolicy(seed=3).backoff_s(
            "abc", 1
        )

    def test_backoff_varies_with_seed_and_hash(self):
        a = RetryPolicy(seed=0).backoff_s("abc", 1)
        assert a != RetryPolicy(seed=1).backoff_s("abc", 1)
        assert a != RetryPolicy(seed=0).backoff_s("abd", 1)

    def test_backoff_grows_and_stays_bounded(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=1.0, jitter=0.25
        )
        delays = [policy.backoff_s("deadbeef", a) for a in range(1, 10)]
        assert delays[1] > delays[0]
        for attempt, delay in enumerate(delays, start=1):
            assert delay >= min(1.0, 0.1 * 2 ** (attempt - 1))
            assert delay <= 1.0 * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay_s=0.5, max_delay_s=64.0, jitter=0.0)
        assert policy.backoff_s("x", 1) == 0.5
        assert policy.backoff_s("x", 3) == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"base_delay_s": -1.0},
            {"base_delay_s": 2.0, "max_delay_s": 1.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_round_trips_through_dict_and_json(self):
        plan = plan_from(
            [
                crash_rule(n_devices=16),
                {
                    "stage": "execute",
                    "kind": "hang",
                    "match": {"hash_prefix": "3f"},
                    "attempts": [1, 2],
                    "hang_s": 0.5,
                },
            ],
            seed=7,
        )
        rebuilt = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert rebuilt == plan

    def test_matches_on_fields_attempts_and_hash_prefix(self):
        point = make_point()
        fields = point.to_dict()
        content = point.content_hash()
        plan = plan_from(
            [
                crash_rule(attempts=(2,), n_devices=8),
                {
                    "stage": "execute",
                    "kind": "hang",
                    "match": {"hash_prefix": content[:6]},
                    "attempts": [1],
                },
            ]
        )
        assert plan.match("execute", fields, content, 2).kind == "crash"
        assert plan.match("execute", fields, content, 1).kind == "hang"
        assert plan.match("execute", fields, "ffff", 1) is None
        assert plan.match("write", fields, content, 1) is None
        other = make_point(n_devices=4).to_dict()
        assert plan.match("execute", other, "ffff", 2) is None

    def test_from_env_inline_file_and_unset(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        plan = plan_from([crash_rule(n_devices=1)])
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan.to_dict()))
        assert FaultPlan.from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert FaultPlan.from_env() == plan
        monkeypatch.setenv(FAULT_PLAN_ENV, "")
        assert FaultPlan.from_env() is None

    @pytest.mark.parametrize(
        "rule",
        [
            {"stage": "nope", "kind": "crash"},
            {"stage": "execute", "kind": "nope"},
            {"stage": "execute", "kind": "torn"},  # torn is write-only
            {"stage": "write", "kind": "crash"},  # write is torn-only
            {
                "stage": "execute",
                "kind": "crash",
                "match": {"frobnicate": 1},
            },
        ],
    )
    def test_invalid_rules_rejected(self, rule):
        with pytest.raises(ConfigurationError):
            FaultRule(**rule)

    def test_unknown_plan_keys_and_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"schema": "other", "rules": []})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(
                {"schema": "repro-fault-plan-v1", "bogus": 1}
            )

    def test_fire_execute_crash_raises(self):
        plan = plan_from([crash_rule(n_devices=8)])
        point = make_point()
        with pytest.raises(FaultInjectedError):
            plan.fire_execute(point.to_dict(), point.content_hash(), 1)
        # Off-attempt: no fault.
        plan.fire_execute(point.to_dict(), point.content_hash(), 2)

    def test_fire_execute_hang_sleeps(self):
        plan = plan_from(
            [
                {
                    "stage": "execute",
                    "kind": "hang",
                    "match": {},
                    "attempts": [1],
                    "hang_s": 0.05,
                }
            ]
        )
        point = make_point()
        started = time.perf_counter()
        plan.fire_execute(point.to_dict(), point.content_hash(), 1)
        assert time.perf_counter() - started >= 0.05

    def test_kill_degrades_to_crash_in_main_process(self, monkeypatch):
        monkeypatch.setattr(
            faults_module, "_in_pool_worker", lambda: False
        )
        plan = plan_from(
            [{"stage": "execute", "kind": "kill", "match": {}}]
        )
        point = make_point()
        with pytest.raises(FaultInjectedError, match="kill"):
            plan.fire_execute(point.to_dict(), point.content_hash(), 1)

    def test_kill_hard_exits_in_pool_worker(self, monkeypatch):
        monkeypatch.setattr(
            faults_module, "_in_pool_worker", lambda: True
        )
        calls = []

        def fake_exit(code):
            calls.append(code)
            raise SystemExit(code)

        monkeypatch.setattr(faults_module.os, "_exit", fake_exit)
        plan = plan_from(
            [{"stage": "execute", "kind": "kill", "match": {}}]
        )
        point = make_point()
        with pytest.raises(SystemExit):
            plan.fire_execute(point.to_dict(), point.content_hash(), 1)
        assert calls == [86]

    def test_tear_file_truncates(self, tmp_path):
        path = tmp_path / "chunk.json"
        path.write_bytes(b"x" * 100)
        tear_file(path)
        assert path.stat().st_size == 50


class TestLeaseManager:
    def test_acquire_vacant_and_conflict(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=10.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert a.acquire("h1")
        assert not b.acquire("h1")
        assert a.held == ["h1"]
        assert b.held == []
        lease = read_lease(tmp_path / "h1.lease")
        assert lease["owner"] == "a"

    def test_expired_lease_is_stolen(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=0.05)
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert a.acquire("h1")
        time.sleep(0.1)
        assert b.acquire("h1")
        assert read_lease(tmp_path / "h1.lease")["owner"] == "b"

    def test_torn_lease_file_is_stolen(self, tmp_path):
        (tmp_path / "h1.lease").write_text("{ not json")
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert b.acquire("h1")
        assert read_lease(tmp_path / "h1.lease")["owner"] == "b"

    def test_renew_pushes_deadline_forward(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=5.0)
        assert a.acquire("h1")
        first = read_lease(tmp_path / "h1.lease")["deadline"]
        time.sleep(0.02)
        assert a.renew("h1")
        renewed = read_lease(tmp_path / "h1.lease")
        assert renewed["deadline"] > first
        assert renewed["renewals"] == 1

    def test_renew_after_steal_reports_loss(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=0.05)
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert a.acquire("h1")
        time.sleep(0.1)
        assert b.acquire("h1")
        assert not a.renew("h1")
        assert a.held == []

    def test_release_only_unlinks_own_lease(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=10.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert a.acquire("h1")
        b.release("h1")  # not b's lease: must stay
        assert (tmp_path / "h1.lease").exists()
        a.release("h1")
        assert not (tmp_path / "h1.lease").exists()

    def test_holder_none_when_vacant_or_expired(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=0.05)
        assert a.holder("h1") is None
        assert a.acquire("h1")
        assert a.holder("h1")["owner"] == "a"
        time.sleep(0.1)
        assert a.holder("h1") is None

    def test_scan_skips_torn_leases(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=10.0)
        assert a.acquire("h1")
        (tmp_path / "h2.lease").write_text("not json")
        leases = scan_leases(tmp_path)
        assert [lease["content_hash"] for lease in leases] == ["h1"]

    def test_heartbeat_keeps_short_ttl_alive(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=0.3)
        assert a.acquire("h1")
        with HeartbeatThread(a):
            time.sleep(0.8)
            assert a.holder("h1") is not None  # renewed past 2x ttl
        a.release("h1")

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, owner="a", ttl_s=0.0)


class TestStoreIntegrity:
    def test_torn_chunk_is_quarantined_not_served(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        chunk = store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        tear_file(chunk)
        assert not store.has(point)
        reasons = store.quarantined()
        assert reasons == {point.content_hash(): "undecodable-json"}
        assert not chunk.exists()
        assert (
            tmp_path / "quarantine" / f"{point.content_hash()}.json"
        ).exists()

    def test_torn_npz_payload_is_quarantined(self, tmp_path):
        import numpy as np

        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        store.save(
            point,
            {"phy_rate_bps": 1.0},
            {"backend": "x"},
            arrays={"trace": np.arange(4.0)},
        )
        assert store.has(point)
        tear_file(tmp_path / "points" / f"{point.content_hash()}.npz")
        assert not store.has(point)
        assert (
            store.quarantined()[point.content_hash()]
            == "torn-array-payload"
        )
        # The npz moved out of points/ with its chunk.
        assert not (
            tmp_path / "points" / f"{point.content_hash()}.npz"
        ).exists()

    def test_tampered_point_content_is_rejected(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        chunk = store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        payload = json.loads(chunk.read_text())
        payload["point"]["seed"] = 9999  # physics swap under same name
        chunk.write_text(json.dumps(payload))
        with pytest.raises(CampaignIntegrityError):
            store.verify_chunk(point.content_hash())
        assert (
            store.quarantined()[point.content_hash()]
            == "content-hash-mismatch"
        )

    def test_schema_and_hash_field_mismatches_quarantine(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        chunk = store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        payload = json.loads(chunk.read_text())
        payload["content_hash"] = "f" * 64
        chunk.write_text(json.dumps(payload))
        assert not store.has(point)
        assert store.quarantined() == {
            point.content_hash(): "content-hash-field-mismatch"
        }

    def test_quarantined_chunk_heals_on_resave(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        chunk = store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        tear_file(chunk)
        assert not store.has(point)
        store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        assert store.has(point)
        assert len(store) == 1
        assert point.content_hash() in store.manifest()["points"]

    def test_corrupt_manifest_is_rebuilt(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        manifest_path = tmp_path / "manifest.json"
        store.manifest()
        manifest_path.write_text("{ torn")
        healed = store.manifest()
        assert sorted(healed["points"]) == [point.content_hash()]
        manifest_path.write_text(json.dumps({"schema": "other"}))
        assert sorted(store.manifest()["points"]) == [
            point.content_hash()
        ]

    def test_export_rows_skip_quarantined_chunks(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        good, bad = make_point(), make_point(seed=4321)
        store.save(good, {"phy_rate_bps": 1.0}, {"backend": "x"})
        torn = store.save(bad, {"phy_rate_bps": 2.0}, {"backend": "x"})
        tear_file(torn)
        rows = store.export_rows()
        assert [row["content_hash"] for row in rows] == [
            good.content_hash()
        ]

    def test_status_counts_failures_and_quarantine(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        ok, torn_pt, failed = (
            make_point(),
            make_point(seed=4321),
            make_point(seed=5678),
        )
        store.save(ok, {"phy_rate_bps": 1.0}, {"backend": "x"})
        tear_file(store.save(torn_pt, {"phy_rate_bps": 2.0}, {"b": 1}))
        assert not store.has(torn_pt)
        store.record_failure(
            failed,
            [{"attempt": 1, "error": "E", "message": "m"}],
            status="failed",
            owner="w1",
        )
        store.record_failure(
            make_point(seed=8765),
            [{"attempt": 1, "error": "E", "message": "m"}],
            status="retrying",
        )
        status = store.status()
        assert status["n_points"] == 1
        assert status["n_failed"] == 1
        assert status["n_retrying"] == 1
        assert status["n_quarantined"] == 1
        assert status["n_leased"] == 0

    def test_failure_record_cleared_by_save(self, tmp_path):
        store = CampaignStore(tmp_path, fault_plan=FaultPlan())
        point = make_point()
        store.record_failure(
            point,
            [{"attempt": 1, "error": "E", "message": "m"}],
            status="retrying",
        )
        record = store.load_failure(point.content_hash())
        assert record["status"] == "retrying"
        assert record["attempts"][0]["error"] == "E"
        store.save(point, {"phy_rate_bps": 1.0}, {"backend": "x"})
        assert store.load_failure(point.content_hash()) is None
        assert store.failures() == []


class TestRunnerRetries:
    def test_crash_then_success_records_attempts(self, tmp_path):
        spec = small_spec()
        plan = plan_from([crash_rule(n_devices=1)])
        runner = CampaignRunner(
            store=tmp_path / "store",
            fault_plan=plan,
            retry=FAST_RETRY,
            use_leases=False,
        )
        run = runner.run(spec)
        assert run.n_computed == 2 and not run.failures
        by_count = {r.point.n_devices: r for r in run.results}
        assert by_count[1].attempts == 2  # crashed once, then succeeded
        assert by_count[2].attempts == 1
        # The transient failure record was cleared by the checkpoint.
        assert runner.store.failures() == []

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        spec = small_spec()
        plan = plan_from([crash_rule(attempts=(1, 2, 3), n_devices=1)])
        runner = CampaignRunner(
            store=tmp_path / "store",
            fault_plan=plan,
            retry=FAST_RETRY,
            use_leases=False,
        )
        with pytest.raises(CampaignExecutionError, match="FaultInjected"):
            runner.run(spec)
        # The good point still checkpointed; the bad one left a record.
        store = runner.store
        assert len(store) == 1
        records = store.failures()
        assert len(records) == 1
        assert records[0]["status"] == "failed"
        assert len(records[0]["attempts"]) == 3
        assert store.status()["n_failed"] == 1

    def test_allow_partial_reports_failures(self, tmp_path):
        spec = small_spec()
        plan = plan_from([crash_rule(attempts=(1, 2, 3), n_devices=1)])
        runner = CampaignRunner(
            store=tmp_path / "store",
            fault_plan=plan,
            retry=FAST_RETRY,
            use_leases=False,
            allow_partial=True,
        )
        run = runner.run(spec)
        assert run.n_failed == 1 and run.n_computed == 1
        failure = run.failures[0]
        assert failure.point.n_devices == 1
        assert [a["attempt"] for a in failure.attempts] == [1, 2, 3]
        assert all(
            a["error"] == "FaultInjectedError" for a in failure.attempts
        )

    def test_failed_point_recovers_on_clean_rerun(self, tmp_path):
        spec = small_spec()
        plan = plan_from([crash_rule(attempts=(1, 2, 3), n_devices=1)])
        store_root = tmp_path / "store"
        with pytest.raises(CampaignExecutionError):
            CampaignRunner(
                store=store_root,
                fault_plan=plan,
                retry=FAST_RETRY,
                use_leases=False,
            ).run(spec)
        clean = CampaignRunner(
            store=store_root, fault_plan=FaultPlan(), use_leases=False
        )
        run = clean.run(spec)
        assert run.n_cached == 1 and run.n_computed == 1
        assert clean.store.failures() == []
        assert clean.store.status()["n_failed"] == 0

    def test_hang_is_timed_out_and_retried(self, tmp_path):
        spec = small_spec()
        plan = plan_from(
            [
                {
                    "stage": "execute",
                    "kind": "hang",
                    "match": {"n_devices": 1},
                    "attempts": [1],
                    "hang_s": 5.0,
                }
            ]
        )
        runner = CampaignRunner(
            store=tmp_path / "store",
            fault_plan=plan,
            retry=FAST_RETRY,
            point_timeout_s=0.3,
            use_leases=False,
        )
        started = time.perf_counter()
        run = runner.run(spec)
        elapsed = time.perf_counter() - started
        assert not run.failures
        by_count = {r.point.n_devices: r for r in run.results}
        assert by_count[1].attempts == 2
        assert elapsed < 5.0  # never waited out the hang

    def test_torn_write_quarantined_and_recomputed(self, tmp_path):
        """Satellite: kill-mid-write healing. A write-stage fault tears
        the chunk as it lands; the next run quarantines it, recomputes
        the point, and converges to a manifest byte-identical to a
        store that never saw the fault."""
        spec = small_spec()
        store_root = tmp_path / "store"
        plan = plan_from(
            [
                {
                    "stage": "write",
                    "kind": "torn",
                    "match": {"n_devices": 1},
                    "attempts": [1],
                }
            ]
        )
        CampaignRunner(
            store=store_root, fault_plan=plan, use_leases=False
        ).run(spec)
        healer = CampaignRunner(
            store=store_root, fault_plan=FaultPlan(), use_leases=False
        )
        run = healer.run(spec)
        assert run.n_computed == 1 and run.n_cached == 1
        store = healer.store
        assert len(store.quarantined()) == 1
        assert set(store.manifest()["points"]) == {
            point.content_hash() for point in spec.points()
        }

        clean_root = tmp_path / "clean"
        clean = CampaignRunner(
            store=clean_root, fault_plan=FaultPlan(), use_leases=False
        )
        clean.run(spec)
        store.manifest(), clean.store.manifest()
        assert (store_root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

    def test_leased_run_cleans_up_lease_files(self, tmp_path):
        spec = small_spec()
        runner = CampaignRunner(
            store=tmp_path / "store",
            fault_plan=FaultPlan(),
            lease_ttl_s=5.0,
        )
        run = runner.run(spec)
        assert run.n_computed == 2
        assert runner.store.active_leases() == []
        assert list((tmp_path / "store" / "leases").glob("*.lease")) == []


class _BrokenFuture:
    def result(self, timeout=None):
        raise BrokenProcessPool("injected worker death")


class _ExplodingPool:
    """Stands in for ProcessPoolExecutor; every future is broken."""

    def __init__(self, max_workers=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _BrokenFuture()

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestPoolDegradation:
    def test_runner_degrades_broken_pool_to_serial(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            campaign_runner, "ProcessPoolExecutor", _ExplodingPool
        )
        monkeypatch.setattr(
            campaign_runner, "resolve_pool_workers", lambda w: 2
        )
        spec = small_spec()
        runner = CampaignRunner(
            store=tmp_path / "store",
            workers=2,
            fault_plan=FaultPlan(),
            retry=FAST_RETRY,
            use_leases=False,
        )
        run = runner.run(spec)
        assert run.n_computed == 2 and not run.failures
        # Each point burned its pool attempt before the serial retry.
        assert all(r.attempts == 2 for r in run.results)
        assert runner.store.failures() == []

    def test_injected_worker_kill_completes_campaign(self, tmp_path):
        """End to end: a kill fault in a real pool worker (or, on a
        1-CPU host, its crash degradation in the serial path) never
        loses the campaign."""
        spec = small_spec()
        plan = plan_from(
            [
                {
                    "stage": "execute",
                    "kind": "kill",
                    "match": {"n_devices": 1},
                    "attempts": [1],
                }
            ]
        )
        runner = CampaignRunner(
            store=tmp_path / "store",
            workers=2,
            fault_plan=plan,
            retry=FAST_RETRY,
            use_leases=False,
        )
        run = runner.run(spec)
        assert not run.failures
        assert {r.point.n_devices for r in run.results} == {1, 2}
        assert len(runner.store) == 2

    def test_network_sweep_finishes_serially_after_pool_break(
        self, monkeypatch, caplog
    ):
        class _PartialPool:
            """Yields the first sweep point, then breaks."""

            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def map(self, fn, jobs):
                jobs = list(jobs)

                def results():
                    yield fn(jobs[0])
                    raise BrokenProcessPool("worker died mid-sweep")

                return results()

        deployment = paper_deployment(n_devices=4, rng=0)
        serial = sweep_device_counts(
            deployment, (1, 2), n_rounds=1, rng=0, workers=None
        )
        monkeypatch.setattr(
            network_module, "ProcessPoolExecutor", _PartialPool
        )
        monkeypatch.setattr(
            network_module, "resolve_pool_workers", lambda w: 2
        )
        with caplog.at_level("WARNING", logger="repro.protocol.network"):
            degraded = sweep_device_counts(
                deployment, (1, 2), n_rounds=1, rng=0, workers=2
            )
        assert any(
            "finishing the remaining points serially" in r.message
            for r in caplog.records
        )
        # Pre-derived per-point seeds: the serial finish is
        # bit-identical to what the lost worker would have produced.
        from dataclasses import asdict

        assert [asdict(m) for m in degraded] == [
            asdict(m) for m in serial
        ]


def _child_run(store_root, spec_dict, plan_json, owner, lease_ttl_s):
    """Run one campaign in a forked child (acceptance-test worker)."""
    plan = (
        FaultPlan.from_json(plan_json) if plan_json else FaultPlan()
    )
    spec = CampaignSpec.from_dict(spec_dict)
    CampaignRunner(
        store=store_root,
        workers=None,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
        owner=owner,
        lease_ttl_s=lease_ttl_s,
        wait_poll_s=0.05,
    ).run(spec)


class TestConcurrentRunners:
    """The PR's acceptance bar: two concurrent runners on one store,
    one killed mid-run under an injected hang, converge to a manifest
    byte-identical to a single-shot clean run with zero duplicated
    point computations."""

    def test_killed_runner_is_reclaimed_and_store_converges(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(counts=(1, 2, 3))
        spec_dict = spec.to_dict()
        points = list(spec.points())
        hashes = [point.content_hash() for point in points]
        store_root = tmp_path / "store"

        # Reference: single-shot clean run (no exec log, no faults).
        clean_root = tmp_path / "clean"
        CampaignRunner(
            store=clean_root, fault_plan=FaultPlan(), use_leases=False
        ).run(spec)
        CampaignStore(clean_root, fault_plan=FaultPlan()).manifest()

        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))

        # Victim A hangs forever on the first point while holding its
        # lease (heartbeat keeps it live until A dies).
        victim_plan = json.dumps(
            plan_from(
                [
                    {
                        "stage": "execute",
                        "kind": "hang",
                        "match": {"n_devices": 1},
                        "attempts": [1, 2, 3],
                        "hang_s": 120.0,
                    }
                ]
            ).to_dict()
        )
        # Survivor B also weathers a transient crash of its own.
        survivor_plan = json.dumps(
            plan_from([crash_rule(n_devices=2)]).to_dict()
        )

        context = multiprocessing.get_context("fork")
        victim = context.Process(
            target=_child_run,
            args=(str(store_root), spec_dict, victim_plan, "victim", 1.0),
        )
        survivor = context.Process(
            target=_child_run,
            args=(
                str(store_root),
                spec_dict,
                survivor_plan,
                "survivor",
                1.0,
            ),
        )
        survivor_started = False
        try:
            victim.start()
            hung_lease = store_root / "leases" / f"{hashes[0]}.lease"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                lease = read_lease(hung_lease)
                if lease is not None and lease["owner"] == "victim":
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never claimed its point")

            survivor.start()
            survivor_started = True
            store = CampaignStore(store_root, fault_plan=FaultPlan())
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                done = {
                    p.stem
                    for p in (store_root / "points").glob("*.json")
                }
                if {hashes[1], hashes[2]} <= done:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("survivor never checkpointed its points")

            # Kill A mid-run: its heartbeat dies with it, the lease on
            # the hung point expires, and B reclaims it.
            victim.terminate()
            victim.join(timeout=30.0)
            survivor.join(timeout=120.0)
            assert survivor.exitcode == 0
        finally:
            for process in (victim, survivor):
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)

        assert survivor_started
        store = CampaignStore(store_root, fault_plan=FaultPlan())
        assert sorted(store.manifest()["points"]) == sorted(hashes)
        assert store.active_leases() == []
        assert store.failures() == []

        # Byte-identical to the clean single-shot store's manifest.
        assert (store_root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

        # Zero duplicated computations: every completed execution
        # logged exactly once, all by the surviving runner.
        logged = [
            line.split()[0]
            for line in exec_log.read_text().splitlines()
            if line.strip()
        ]
        assert sorted(logged) == sorted(hashes)

    def test_two_live_runners_partition_without_duplicates(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [point.content_hash() for point in spec.points()]
        store_root = tmp_path / "store"
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))

        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_child_run,
                args=(str(store_root), spec.to_dict(), None, name, 5.0),
            )
            for name in ("w1", "w2")
        ]
        try:
            for process in workers:
                process.start()
            for process in workers:
                process.join(timeout=120.0)
                assert process.exitcode == 0
        finally:
            for process in workers:
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)

        store = CampaignStore(store_root, fault_plan=FaultPlan())
        assert sorted(store.manifest()["points"]) == sorted(hashes)
        logged = [
            line.split()[0]
            for line in exec_log.read_text().splitlines()
            if line.strip()
        ]
        assert sorted(logged) == sorted(hashes)
        assert len(logged) == len(set(logged))


class TestCliFaultFlags:
    def test_run_with_fault_plan_retries_and_reports(
        self, tmp_path, capsys
    ):
        from repro.campaign.cli import main as campaign_cli

        plan = plan_from([crash_rule(n_devices=1)])
        code = campaign_cli(
            [
                "run",
                "--spec",
                "fig17",
                "--counts",
                "1,2",
                "--rounds",
                "1",
                "--engine",
                "analytic",
                "--store",
                str(tmp_path / "store"),
                "--fault-plan",
                json.dumps(plan.to_dict()),
                "--max-attempts",
                "3",
                "--no-leases",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(0 cached, 2 computed)" in out
        assert "attempts=2" in out

    def test_run_permanent_failure_exits_nonzero(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_cli

        plan = plan_from([crash_rule(attempts=(1, 2), n_devices=1)])
        code = campaign_cli(
            [
                "run",
                "--spec",
                "fig17",
                "--counts",
                "1,2",
                "--rounds",
                "1",
                "--engine",
                "analytic",
                "--store",
                str(tmp_path / "store"),
                "--fault-plan",
                json.dumps(plan.to_dict()),
                "--max-attempts",
                "2",
                "--no-leases",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        assert "--allow-partial" in captured.err

    def test_run_allow_partial_lists_failures(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_cli

        plan = plan_from([crash_rule(attempts=(1, 2), n_devices=1)])
        code = campaign_cli(
            [
                "run",
                "--spec",
                "fig17",
                "--counts",
                "1,2",
                "--rounds",
                "1",
                "--engine",
                "analytic",
                "--store",
                str(tmp_path / "store"),
                "--fault-plan",
                json.dumps(plan.to_dict()),
                "--max-attempts",
                "2",
                "--no-leases",
                "--allow-partial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "1 failed" in out
        assert "[FAIL" in out

    def test_status_reports_fault_columns(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_cli

        store = CampaignStore(tmp_path / "store", fault_plan=FaultPlan())
        store.save(make_point(), {"phy_rate_bps": 1.0}, {"backend": "x"})
        code = campaign_cli(
            ["status", "--store", str(tmp_path / "store")]
        )
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        for key in (
            "n_leased",
            "n_failed",
            "n_retrying",
            "n_quarantined",
            "quarantine_reasons",
        ):
            assert key in status


class TestExecLog:
    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(EXEC_LOG_ENV, raising=False)
        campaign_runner._log_execution("abc")  # no-op, no file

    def test_appends_one_line_per_completion(self, tmp_path, monkeypatch):
        log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(log))
        campaign_runner._log_execution("abc")
        campaign_runner._log_execution("def")
        lines = log.read_text().splitlines()
        assert [line.split()[0] for line in lines] == ["abc", "def"]
        assert all(line.split()[1] == str(os.getpid()) for line in lines)
