"""Unit tests for repro.channel.deployment and link budget."""

import numpy as np
import pytest

from repro.channel.deployment import (
    generate_office_deployment,
    paper_deployment,
    snr_from_downlink_rssi,
)
from repro.channel.link import LinkBudget
from repro.constants import ENVELOPE_DETECTOR_SENSITIVITY_DBM
from repro.errors import ReproError


class TestLinkBudget:
    def test_uplink_pays_double_path_loss(self):
        budget = LinkBudget()
        down_10 = budget.downlink_rssi_dbm(10.0)
        down_20 = budget.downlink_rssi_dbm(20.0)
        up_10 = budget.uplink_rssi_dbm(10.0)
        up_20 = budget.uplink_rssi_dbm(20.0)
        one_way_drop = down_10 - down_20
        two_way_drop = up_10 - up_20
        assert two_way_drop == pytest.approx(2 * one_way_drop)

    def test_tag_power_gain_shifts_uplink(self):
        budget = LinkBudget()
        full = budget.uplink_rssi_dbm(10.0, tag_power_gain_db=0.0)
        reduced = budget.uplink_rssi_dbm(10.0, tag_power_gain_db=-10.0)
        assert full - reduced == pytest.approx(10.0)

    def test_query_decodable_at_short_range(self):
        budget = LinkBudget()
        assert budget.query_decodable(2.0)

    def test_query_sensitivity_boundary(self):
        budget = LinkBudget()
        # Find a distance where the downlink is just below sensitivity.
        for distance in np.linspace(1.0, 500.0, 200):
            if not budget.query_decodable(float(distance)):
                rssi = budget.downlink_rssi_dbm(float(distance))
                assert rssi < ENVELOPE_DETECTOR_SENSITIVITY_DBM
                break
        else:
            pytest.skip("query decodable at all tested ranges")

    def test_walls_reduce_both_directions(self):
        budget = LinkBudget()
        assert budget.uplink_snr_db(10.0, n_walls=2) < budget.uplink_snr_db(
            10.0, n_walls=0
        )


class TestDeploymentGeneration:
    def test_device_count(self, rng):
        deployment = generate_office_deployment(n_devices=32, rng=rng)
        assert deployment.n_devices == 32

    def test_devices_inside_floor(self, rng):
        deployment = generate_office_deployment(
            n_devices=64, floor_size_m=(40.0, 20.0), rng=rng
        )
        for device in deployment.devices:
            x, y = device.position_m
            assert 0.0 <= x <= 40.0
            assert 0.0 <= y <= 20.0

    def test_min_distance_respected(self, rng):
        deployment = generate_office_deployment(
            n_devices=64, rng=rng, min_distance_m=4.0
        )
        assert all(d.distance_m >= 4.0 for d in deployment.devices)

    def test_snr_decreases_with_distance(self, rng):
        deployment = generate_office_deployment(n_devices=128, rng=rng)
        distances = np.array([d.distance_m for d in deployment.devices])
        snrs = deployment.snrs_db()
        # Correlation must be strongly negative (walls add scatter).
        assert np.corrcoef(distances, snrs)[0, 1] < -0.6

    def test_subset_preserves_order(self, rng):
        deployment = generate_office_deployment(n_devices=16, rng=rng)
        subset = deployment.subset(4)
        assert [d.device_id for d in subset.devices] == [0, 1, 2, 3]

    def test_subset_validation(self, rng):
        deployment = generate_office_deployment(n_devices=8, rng=rng)
        with pytest.raises(ReproError):
            deployment.subset(0)
        with pytest.raises(ReproError):
            deployment.subset(9)

    def test_deterministic_with_seed(self):
        a = generate_office_deployment(n_devices=8, rng=123)
        b = generate_office_deployment(n_devices=8, rng=123)
        assert np.allclose(a.snrs_db(), b.snrs_db())

    def test_invalid_device_count(self):
        with pytest.raises(ReproError):
            generate_office_deployment(n_devices=0)


class TestPaperDeployment:
    def test_snr_spread_near_dynamic_range(self):
        """The calibrated deployment must exercise the near-far design:
        a pre-control spread in the 30-55 dB window."""
        deployment = paper_deployment(rng=7)
        assert 30.0 <= deployment.snr_spread_db() <= 55.0

    def test_supports_256_devices(self):
        deployment = paper_deployment(n_devices=256, rng=7)
        assert deployment.n_devices == 256

    def test_fading_attached(self):
        deployment = paper_deployment(n_devices=4, rng=7)
        for device in deployment.devices:
            assert device.fading is not None
            before = device.current_uplink_snr_db()
            device.step_channel(10.0, np.random.default_rng(1))
            after = device.current_uplink_snr_db()
            assert before != after or device.fading.std_db == 0.0


class TestReciprocity:
    def test_rssi_predicts_snr_monotonically(self):
        """Stronger downlink RSSI must imply higher inferred uplink SNR —
        the property the tag's power control needs."""
        budget = LinkBudget()
        rssi_values = [-30.0, -35.0, -40.0, -45.0]
        inferred = [
            snr_from_downlink_rssi(r, budget) for r in rssi_values
        ]
        assert all(a > b for a, b in zip(inferred, inferred[1:]))

    def test_reciprocity_consistency(self):
        """Inferring SNR from the true downlink RSSI at a distance must
        match the direct uplink computation."""
        budget = LinkBudget()
        for distance in (5.0, 10.0, 20.0):
            rssi = budget.downlink_rssi_dbm(distance)
            inferred = snr_from_downlink_rssi(rssi, budget)
            direct = budget.uplink_snr_db(distance)
            assert inferred == pytest.approx(direct, abs=0.1)
