"""Unit tests for repro.phy.chirp — the CSS symbol algebra."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import (
    ChirpParams,
    cyclic_shifted_downchirp,
    cyclic_shifted_upchirp,
    downchirp,
    oversampled_upchirp,
    upchirp,
)


class TestChirpParams:
    def test_n_samples(self, params):
        assert params.n_samples == 512

    def test_symbol_duration(self, params):
        # 512 / 500 kHz = 1.024 ms
        assert params.symbol_duration_s == pytest.approx(1.024e-3)

    def test_symbol_rate_is_device_bitrate(self, params):
        # The paper's ~1 kbps (976 bps) per-device OOK bitrate.
        assert params.symbol_rate_hz == pytest.approx(976.5625)

    def test_lora_bitrate(self, params):
        # Classic CSS: SF * BW / 2^SF = 8789 bps at (500 kHz, SF 9).
        assert params.lora_bitrate_bps == pytest.approx(8789.0625)

    def test_bin_spacing(self, params):
        assert params.bin_spacing_hz == pytest.approx(976.5625)

    def test_slope_identity(self):
        # (500 kHz, SF 8) and (250 kHz, SF 6) share a slope (Section 2.2).
        a = ChirpParams(500e3, 8).chirp_slope_hz_per_s
        b = ChirpParams(250e3, 6).chirp_slope_hz_per_s
        assert a == pytest.approx(b)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            ChirpParams(bandwidth_hz=0.0, spreading_factor=9)

    def test_invalid_sf(self):
        with pytest.raises(ConfigurationError):
            ChirpParams(bandwidth_hz=500e3, spreading_factor=0)
        with pytest.raises(ConfigurationError):
            ChirpParams(bandwidth_hz=500e3, spreading_factor=17)

    def test_sample_times(self, params):
        t = params.sample_times()
        assert t.size == params.n_samples
        assert t[1] - t[0] == pytest.approx(1.0 / params.bandwidth_hz)


class TestChirpWaveforms:
    def test_unit_modulus(self, params):
        assert np.allclose(np.abs(upchirp(params)), 1.0)

    def test_downchirp_is_conjugate(self, params):
        assert np.allclose(downchirp(params), np.conjugate(upchirp(params)))

    def test_dechirp_of_base_is_dc(self, params):
        despread = upchirp(params) * downchirp(params)
        assert np.allclose(despread, np.ones(params.n_samples))

    def test_cached_chirp_is_readonly(self, params):
        chirp = upchirp(params)
        with pytest.raises((ValueError, RuntimeError)):
            chirp[0] = 0.0

    def test_cyclic_shift_is_frequency_shift(self, params):
        """The central CSS identity: shift k dechirps to a clean tone at
        bin k with no wrap discontinuity (N is a power of two)."""
        n = params.n_samples
        for k in (1, 7, 255, 256, 511):
            despread = cyclic_shifted_upchirp(params, k) * downchirp(params)
            spectrum = np.abs(np.fft.fft(despread))
            assert np.argmax(spectrum) == k
            # The tone must be pure: all energy in one bin.
            assert spectrum[k] == pytest.approx(n, rel=1e-9)

    def test_shift_zero_is_base(self, params):
        assert np.array_equal(
            cyclic_shifted_upchirp(params, 0), upchirp(params)
        )

    def test_shift_wraps_modulo(self, params):
        n = params.n_samples
        assert np.allclose(
            cyclic_shifted_upchirp(params, 5),
            cyclic_shifted_upchirp(params, 5 + n),
        )

    def test_negative_shift(self, params):
        n = params.n_samples
        assert np.allclose(
            cyclic_shifted_upchirp(params, -1),
            cyclic_shifted_upchirp(params, n - 1),
        )

    def test_shifted_downchirp_conjugate_pair(self, params):
        k = 42
        up = cyclic_shifted_upchirp(params, k)
        down = cyclic_shifted_downchirp(params, k)
        assert np.allclose(down, np.conjugate(up))

    def test_orthogonality_of_shifts(self, params):
        """Different cyclic shifts are orthogonal after dechirping —
        the CDMA-view of distributed CSS (Section 3.1)."""
        a = cyclic_shifted_upchirp(params, 10)
        b = cyclic_shifted_upchirp(params, 20)
        inner = np.vdot(a, b)
        assert abs(inner) < 1e-6 * params.n_samples


class TestOversampledChirp:
    def test_length(self, params):
        assert oversampled_upchirp(params, 4).size == 4 * params.n_samples

    def test_decimates_to_critical(self, params):
        over = oversampled_upchirp(params, 4, shift=17)
        critical = over[::4]
        expected = cyclic_shifted_upchirp(params, 17)
        assert np.allclose(critical, expected, atol=1e-9)

    def test_invalid_oversampling(self, params):
        with pytest.raises(ConfigurationError):
            oversampled_upchirp(params, 0)

    def test_unit_modulus(self, params):
        assert np.allclose(np.abs(oversampled_upchirp(params, 2)), 1.0)
