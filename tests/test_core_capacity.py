"""Unit tests for the multi-user capacity analysis (Section 3.1)."""

import pytest

from repro.core.capacity import (
    approximation_error,
    below_noise_approximation_bps,
    capacity_scaling_series,
    multiuser_capacity_bps,
    netscatter_utilisation,
)
from repro.errors import LinkBudgetError


class TestExactCapacity:
    def test_zero_devices_zero_capacity(self):
        assert multiuser_capacity_bps(500e3, -20.0, 0) == 0.0

    def test_monotone_in_devices(self):
        values = [
            multiuser_capacity_bps(500e3, -20.0, n) for n in (1, 10, 100)
        ]
        assert values[0] < values[1] < values[2]

    def test_known_value(self):
        # N*snr = 1 -> BW * log2(2) = BW.
        assert multiuser_capacity_bps(500e3, -20.0, 100) == pytest.approx(
            500e3
        )

    def test_invalid_inputs(self):
        with pytest.raises(LinkBudgetError):
            multiuser_capacity_bps(0.0, -20.0, 1)
        with pytest.raises(LinkBudgetError):
            multiuser_capacity_bps(500e3, -20.0, -1)


class TestLinearApproximation:
    def test_linear_in_n(self):
        one = below_noise_approximation_bps(500e3, -20.0, 1)
        ten = below_noise_approximation_bps(500e3, -20.0, 10)
        assert ten == pytest.approx(10 * one)

    def test_accurate_below_noise(self):
        """The paper's claim: below the noise floor capacity scales
        linearly. At N*snr = 0.01 the linearisation is within 1%."""
        assert approximation_error(-30.0, 10) < 0.01

    def test_degrades_above_noise(self):
        assert approximation_error(0.0, 100) > 0.5

    def test_zero_devices_zero_error(self):
        assert approximation_error(-20.0, 0) == 0.0


class TestSeries:
    def test_row_structure(self):
        rows = capacity_scaling_series(500e3, -25.0, [1, 2, 4])
        assert len(rows) == 3
        assert rows[0]["n_devices"] == 1.0
        assert rows[2]["capacity_bps"] > rows[0]["capacity_bps"]

    def test_approx_tracks_exact_at_low_snr(self):
        rows = capacity_scaling_series(500e3, -40.0, [1, 64, 256])
        for row in rows:
            assert row["linear_approx_bps"] == pytest.approx(
                row["capacity_bps"], rel=0.02
            )


class TestUtilisation:
    def test_full_band(self):
        assert netscatter_utilisation(500e3, 500e3) == pytest.approx(1.0)

    def test_deployment_skip2_half(self):
        """SKIP = 2 halves the 500 kbps ceiling to ~250 kbps."""
        assert netscatter_utilisation(250e3, 500e3) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(LinkBudgetError):
            netscatter_utilisation(1.0, 0.0)
        with pytest.raises(LinkBudgetError):
            netscatter_utilisation(-1.0, 500e3)
