"""Unit tests for the AP-side association state machine."""

import pytest

from repro.core.config import NetScatterConfig
from repro.errors import AssociationError
from repro.protocol.association import AssociationController


@pytest.fixture
def controller():
    return AssociationController(NetScatterConfig())


class TestRequestShiftChoice:
    def test_strong_downlink_high_region(self, controller):
        shift = controller.request_shift_for_rssi(-30.0)
        assert shift == controller.association_shifts[0]

    def test_weak_downlink_low_region(self, controller):
        shift = controller.request_shift_for_rssi(-45.0)
        assert shift == controller.association_shifts[1]

    def test_no_reserved_shifts_rejected(self):
        config = NetScatterConfig(n_association_shifts=0)
        controller = AssociationController(config)
        with pytest.raises(AssociationError):
            controller.request_shift_for_rssi(-30.0)


class TestHandshake:
    def test_request_grant_ack(self, controller):
        grant, reassigned = controller.handle_request(5, measured_snr_db=12.0)
        assert grant.network_id == 5
        shift = controller.handle_ack(5)
        assert shift == grant.cyclic_shift * controller.table.config.skip
        assert controller.n_members == 1

    def test_duplicate_request_repeats_grant(self, controller):
        first, _ = controller.handle_request(5, 12.0)
        second, reassigned = controller.handle_request(5, 12.0)
        assert second.cyclic_shift == first.cyclic_shift
        assert not reassigned

    def test_unexpected_ack_rejected(self, controller):
        with pytest.raises(AssociationError):
            controller.handle_ack(99)

    def test_grant_abandoned_after_repeats(self, controller):
        controller.handle_request(5, 12.0)
        with pytest.raises(AssociationError):
            for _ in range(10):
                controller.handle_request(5, 12.0)
        # The slot must be freed for others.
        assert controller.table.n_devices == 0

    def test_pending_grants_listed(self, controller):
        controller.handle_request(5, 12.0)
        grants = controller.pending_grants()
        assert len(grants) == 1
        controller.handle_ack(5)
        assert controller.pending_grants() == []

    def test_many_devices_join(self, controller, rng):
        for device_id in range(32):
            controller.handle_request(device_id, float(rng.uniform(0, 35)))
            controller.handle_ack(device_id)
        assert controller.n_members == 32
        controller.table.validate()

    def test_assignments_unique(self, controller, rng):
        for device_id in range(16):
            controller.handle_request(device_id, float(rng.uniform(0, 35)))
            controller.handle_ack(device_id)
        shifts = list(controller.assignments().values())
        assert len(set(shifts)) == 16


class TestReassociation:
    def test_snr_change_triggers_repack(self, controller):
        controller.handle_request(0, 30.0)
        controller.handle_ack(0)
        controller.handle_request(1, 10.0)
        controller.handle_ack(1)
        changed = controller.handle_reassociation(1, 40.0)
        assert changed
        controller.table.validate()

    def test_small_change_no_repack(self, controller):
        controller.handle_request(0, 30.0)
        controller.handle_ack(0)
        controller.handle_request(1, 10.0)
        controller.handle_ack(1)
        assert not controller.handle_reassociation(1, 11.0)
