"""Tests for the receiver's per-device SNR estimation."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.dcss import (
    DeviceTransmission,
    compose_preamble_and_payload_symbols,
)
from repro.core.receiver import NetScatterReceiver


def _decode(config, txs, assignments, snr_db, rng):
    symbols = compose_preamble_and_payload_symbols(
        config.chirp_params, txs, rng=rng
    )
    noisy = [awgn(s, snr_db, rng) for s in symbols]
    receiver = NetScatterReceiver(config, assignments)
    return receiver.decode_fast_symbols(noisy)


class TestSnrEstimation:
    def test_undetected_device_has_no_estimate(self, config, rng):
        txs = [DeviceTransmission(shift=10, bits=[1, 1])]
        decode = _decode(config, txs, {0: 10, 1: 300}, 0.0, rng)
        assert decode.devices[1].estimated_snr_db is None

    def test_estimate_tracks_true_snr_ordering(self, config, rng):
        """A 20 dB stronger device must estimate ~20 dB higher."""
        txs = [
            DeviceTransmission(shift=10, bits=[1, 1], power_gain_db=0.0),
            DeviceTransmission(shift=300, bits=[1, 1], power_gain_db=20.0),
        ]
        decode = _decode(config, txs, {0: 10, 1: 300}, 5.0, rng)
        weak = decode.devices[0].estimated_snr_db
        strong = decode.devices[1].estimated_snr_db
        assert weak is not None and strong is not None
        assert strong - weak == pytest.approx(20.0, abs=3.0)

    def test_estimate_increases_with_channel_snr(self, config, rng):
        estimates = []
        for snr in (-10.0, 0.0, 10.0):
            txs = [DeviceTransmission(shift=50, bits=[1, 0])]
            decode = _decode(config, txs, {0: 50}, snr, rng)
            estimates.append(decode.devices[0].estimated_snr_db)
        assert estimates[0] < estimates[1] < estimates[2]

    def test_estimate_usable_for_association(self, config, rng):
        """The estimate plugs directly into the allocation table: admit
        two devices by their *measured* SNRs and verify the stronger one
        ranks first."""
        from repro.core.allocation import AllocationTable

        txs = [
            DeviceTransmission(shift=10, bits=[1], power_gain_db=0.0),
            DeviceTransmission(shift=300, bits=[1], power_gain_db=15.0),
        ]
        decode = _decode(config, txs, {0: 10, 1: 300}, 5.0, rng)
        table = AllocationTable(config)
        for device_id in (0, 1):
            table.add_device(
                device_id, decode.devices[device_id].estimated_snr_db
            )
        assert table.snr_of(1) > table.snr_of(0)
        table.validate()

    def test_vectorised_path_estimates_too(self, config, rng):
        from repro.core.dcss import compose_round_matrix

        bins = np.array([20.0, 260.0])
        amps = np.array([1.0, 10.0])  # +20 dB
        bit_matrix = np.vstack([np.ones((6, 2)), np.ones((4, 2))])
        symbols = compose_round_matrix(
            config.chirp_params,
            bins,
            amps,
            np.array([0.1, 1.0]),
            bit_matrix,
        )
        receiver = NetScatterReceiver(config, {0: 20, 1: 260})
        decode = receiver.decode_round_matrix(awgn(symbols, 0.0, rng))
        weak = decode.devices[0].estimated_snr_db
        strong = decode.devices[1].estimated_snr_db
        assert strong - weak == pytest.approx(20.0, abs=3.0)
