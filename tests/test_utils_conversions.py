"""Unit tests for repro.utils.conversions."""

import math

import pytest

from repro.errors import LinkBudgetError
from repro.utils.conversions import (
    amplitude_from_db,
    bins_to_freq_offset,
    bins_to_timing_offset,
    db_to_linear,
    dbm_to_watts,
    doppler_shift_hz,
    freq_offset_to_bins,
    linear_to_db,
    power_db,
    timing_offset_to_bins,
    watts_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        for value in (0.1, 1.0, 3.0, 42.0, 1e-6):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_negative_db(self):
        assert db_to_linear(-30.0) == pytest.approx(1e-3)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(LinkBudgetError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(LinkBudgetError):
            linear_to_db(-1.0)

    def test_linear_to_db_rejects_nan(self):
        with pytest.raises(LinkBudgetError):
            linear_to_db(float("nan"))


class TestDbmConversions:
    def test_30_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_0_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_roundtrip(self):
        for dbm in (-120.0, -49.0, 0.0, 30.0):
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(LinkBudgetError):
            watts_to_dbm(0.0)


class TestSignalPower:
    def test_unit_tone(self, rng):
        import numpy as np

        tone = np.exp(1j * rng.uniform(0, 2 * math.pi, size=1000))
        assert power_db(tone) == pytest.approx(0.0, abs=1e-9)

    def test_scaled_signal(self):
        import numpy as np

        signal = 0.5 * np.ones(64, dtype=complex)
        assert power_db(signal) == pytest.approx(-6.02, abs=0.01)

    def test_empty_signal_rejected(self):
        import numpy as np

        with pytest.raises(LinkBudgetError):
            power_db(np.array([]))


class TestAmplitude:
    def test_zero_db(self):
        assert amplitude_from_db(0.0) == pytest.approx(1.0)

    def test_minus_20_db(self):
        assert amplitude_from_db(-20.0) == pytest.approx(0.1)

    def test_power_consistency(self):
        amp = amplitude_from_db(-7.0)
        assert linear_to_db(amp**2) == pytest.approx(-7.0)


class TestBinOffsets:
    def test_timing_paper_example(self):
        # 2 us at 500 kHz is exactly one FFT bin (Table 1).
        assert timing_offset_to_bins(2e-6, 500e3) == pytest.approx(1.0)

    def test_timing_roundtrip(self):
        dt = 3.3e-6
        bins = timing_offset_to_bins(dt, 250e3)
        assert bins_to_timing_offset(bins, 250e3) == pytest.approx(dt)

    def test_freq_paper_example(self):
        # 976 Hz at (500 kHz, SF 9) is one bin (Table 1).
        assert freq_offset_to_bins(976.5625, 500e3, 9) == pytest.approx(1.0)

    def test_freq_roundtrip(self):
        df = 123.4
        bins = freq_offset_to_bins(df, 125e3, 7)
        assert bins_to_freq_offset(bins, 125e3, 7) == pytest.approx(df)

    def test_timing_rejects_bad_bandwidth(self):
        with pytest.raises(LinkBudgetError):
            timing_offset_to_bins(1e-6, 0.0)

    def test_freq_rejects_bad_sf(self):
        with pytest.raises(LinkBudgetError):
            freq_offset_to_bins(100.0, 500e3, 0)


class TestDoppler:
    def test_paper_example(self):
        # 10 m/s at 900 MHz -> 30 Hz (Section 4.2).
        assert doppler_shift_hz(10.0, 900e6) == pytest.approx(30.0)

    def test_zero_speed(self):
        assert doppler_shift_hz(0.0, 900e6) == 0.0

    def test_negative_speed_rejected(self):
        with pytest.raises(LinkBudgetError):
            doppler_shift_hz(-1.0, 900e6)
