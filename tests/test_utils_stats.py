"""Unit tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils.stats import (
    ber_estimate,
    cdf_at,
    complementary_cdf,
    db_variance,
    empirical_cdf,
    geometric_mean,
    quantile,
)


class TestEmpiricalCdf:
    def test_sorted_output(self, rng):
        x, y = empirical_cdf(rng.normal(size=100))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) > 0)

    def test_reaches_one(self, rng):
        _, y = empirical_cdf(rng.normal(size=50))
        assert y[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            empirical_cdf([])

    def test_complementary(self, rng):
        samples = rng.normal(size=100)
        x, ccdf = complementary_cdf(samples)
        assert ccdf[0] == pytest.approx(1.0)
        assert np.all(np.diff(ccdf) <= 0)


class TestCdfAt:
    def test_median(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)

    def test_below_all(self):
        assert cdf_at([1, 2, 3], 0.0) == 0.0

    def test_above_all(self):
        assert cdf_at([1, 2, 3], 10.0) == 1.0


class TestQuantile:
    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == pytest.approx(2.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            quantile([1.0], 1.5)


class TestBerEstimate:
    def test_point_estimate(self):
        est = ber_estimate(10, 1000)
        assert est.ber == pytest.approx(0.01)

    def test_interval_contains_estimate(self):
        est = ber_estimate(10, 1000)
        assert est.ci_low <= est.ber <= est.ci_high

    def test_zero_errors_has_positive_upper(self):
        est = ber_estimate(0, 10000)
        assert est.ber == 0.0
        assert est.ci_high > 0.0

    def test_interval_shrinks_with_trials(self):
        narrow = ber_estimate(100, 100000)
        wide = ber_estimate(1, 1000)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            ber_estimate(5, 0)
        with pytest.raises(ReproError):
            ber_estimate(11, 10)
        with pytest.raises(ReproError):
            ber_estimate(-1, 10)

    def test_str_mentions_counts(self):
        assert "10/1000" in str(ber_estimate(10, 1000))


class TestDbVariance:
    def test_constant_series(self):
        assert db_variance([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_known_variance(self):
        assert db_variance([0.0, 2.0]) == pytest.approx(2.0)

    def test_single_sample_rejected(self):
        with pytest.raises(ReproError):
            db_variance([1.0])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_scale_invariance(self, rng):
        values = rng.uniform(1.0, 10.0, size=20)
        assert geometric_mean(10 * values) == pytest.approx(
            10 * geometric_mean(values)
        )

    def test_nonpositive_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
