"""Occupancy-adaptive backend planner: cost model + auto equivalence.

Two contracts under test:

* the planner itself — the calibrated cost model orders the three
  spectral backends correctly across occupancy (analytic at small ``D``,
  FFT near ``D = N/2``), calibration persists/reloads, and inapplicable
  backends are never offered;
* ``readout="auto"`` — whatever backend the planner picks (or is forced
  to pick), the decode decisions are bit-identical to every fixed
  backend at, below and above the crossover, with CFO/jitter offsets
  and with same-seed engine noise.
"""

import json

import numpy as np
import pytest

from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.errors import ConfigurationError, DecodingError
from repro.phy.backend_plan import (
    BACKENDS,
    DEFAULT_COEFFICIENTS,
    BackendPlanner,
    CalibrationCoefficients,
    ReadoutWorkload,
    _load_coefficients,
    _persist_coefficients,
    calibrate,
    host_planner,
)

#: The deployment operating point's readout shape (SF 9, zp 10, W = 13).
def _workload(n_devices, n_samples=512, zp=10, window_width=13,
              n_symbols=46, n_rounds=3, tone_input=True,
              noise_mode=None, carry_width=False):
    return ReadoutWorkload(
        n_rounds=n_rounds,
        n_symbols=n_symbols,
        n_devices=n_devices,
        n_samples=n_samples,
        zero_pad_factor=zp,
        window_bins=n_devices * window_width,
        probe_bins=min(n_samples, 512),
        tone_input=tone_input,
        window_width=window_width if (noise_mode or carry_width) else 0,
        noise_mode=noise_mode,
    )


class _ForcedPlanner:
    """Duck-typed planner pinning the auto dispatch to one backend."""

    def __init__(self, backend: str) -> None:
        self.backend = backend

    def select(self, workload) -> str:
        if not workload.tone_input and self.backend == "analytic":
            return "sparse"
        return self.backend


class TestCostModel:
    def test_analytic_wins_small_occupancy(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        for d in (1, 2, 8):
            assert planner.select(_workload(d)) == "analytic"

    def test_fft_wins_half_occupancy(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        costs = planner.costs(_workload(256))
        assert planner.select(_workload(256)) == "fft"
        assert costs["fft"] < costs["analytic"] < costs["sparse"]

    def test_crossover_is_monotone(self):
        """Once the FFT wins, it keeps winning at higher occupancy."""
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        picks = [planner.select(_workload(d)) for d in range(1, 257)]
        first_fft = picks.index("fft")
        assert all(p == "fft" for p in picks[first_fft:])
        assert all(p != "fft" for p in picks[:first_fft])

    def test_tensor_input_excludes_analytic(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        costs = planner.costs(_workload(16, tone_input=False))
        assert set(costs) == {"sparse", "fft"}
        assert planner.select(_workload(16, tone_input=False)) in (
            "sparse",
            "fft",
        )

    def test_tensor_costs_carry_no_synthesis_term(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        with_tones = planner.costs(_workload(64))
        tensor = planner.costs(_workload(64, tone_input=False))
        assert tensor["sparse"] < with_tones["sparse"]
        assert tensor["fft"] < with_tones["fft"]

    def test_invalid_workloads_rejected(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        with pytest.raises(ConfigurationError):
            planner.costs(_workload(0))  # tone input needs devices
        with pytest.raises(ConfigurationError):
            planner.costs(_workload(4, n_symbols=0))

    def test_coefficients_validated(self):
        with pytest.raises(ConfigurationError):
            CalibrationCoefficients(0.0, 1e-9, 1e-9, 1e-9, 1e-9)
        with pytest.raises(ConfigurationError):
            CalibrationCoefficients(1e-9, 1e-9, float("nan"), 1e-9, 1e-9)


class TestCalibration:
    def test_calibrate_measures_positive_finite(self):
        coefficients = calibrate()
        for value in (
            coefficients.real_mac_s,
            coefficients.cplx_mac_s,
            coefficients.fft_elem_s,
            coefficients.exp_elem_s,
            coefficients.ew_pass_s,
        ):
            assert value > 0 and np.isfinite(value)
        # A real GEMM multiply-add cannot cost more than a complex one.
        assert coefficients.real_mac_s <= coefficients.cplx_mac_s * 2

    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "calibration.json"
        _persist_coefficients(path, DEFAULT_COEFFICIENTS)
        loaded = _load_coefficients(path)
        assert loaded == DEFAULT_COEFFICIENTS

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "calibration.json"
        assert _load_coefficients(path) is None  # missing
        path.write_text("not json")
        assert _load_coefficients(path) is None
        path.write_text(json.dumps({"schema": "other", "coefficients": {}}))
        assert _load_coefficients(path) is None

    def test_corrupt_file_logs_and_recalibrates(
        self, tmp_path, monkeypatch, caplog
    ):
        # A torn/corrupt $REPRO_BACKEND_CALIBRATION must log a warning
        # and fall through to a fresh calibration, never raise.
        import repro.phy.backend_plan as plan_module

        path = tmp_path / "host.json"
        path.write_text('{"schema": "repro-backend-c')  # torn write
        monkeypatch.setenv("REPRO_BACKEND_CALIBRATION", str(path))
        monkeypatch.setattr(plan_module, "_HOST_PLANNER", None)
        with caplog.at_level("WARNING", logger="repro.phy.backend_plan"):
            planner = host_planner()
        assert any(
            "re-calibrating" in record.message
            for record in caplog.records
        )
        assert planner.coefficients is not None
        # The re-calibration overwrote the corrupt file with a valid one.
        assert _load_coefficients(path) == planner.coefficients

    def test_host_planner_persists_once(self, tmp_path, monkeypatch):
        import repro.phy.backend_plan as plan_module

        path = tmp_path / "host.json"
        monkeypatch.setenv("REPRO_BACKEND_CALIBRATION", str(path))
        monkeypatch.setattr(plan_module, "_HOST_PLANNER", None)
        first = host_planner()
        assert path.exists()
        monkeypatch.setattr(plan_module, "_HOST_PLANNER", None)
        second = host_planner()
        # The second process-equivalent load reuses the persisted file.
        assert second.coefficients == first.coefficients


def _random_batch(shifts, n_rounds, n_payload, rng, offsets_std=0.4):
    n_devices = shifts.size
    bits = rng.integers(0, 2, size=(n_rounds, n_payload, n_devices))
    bit_tensor = np.concatenate(
        [np.ones((n_rounds, 6, n_devices)), bits], axis=1
    )
    bins = shifts[None, :] + rng.normal(
        0.0, offsets_std, size=(n_rounds, n_devices)
    )
    amplitudes = 10.0 ** (
        rng.uniform(-6.0, 6.0, size=(n_rounds, n_devices)) / 20.0
    )
    phases = rng.uniform(0, 2 * np.pi, size=(n_rounds, n_devices))
    return bins, amplitudes, phases, bit_tensor


def _assert_same_decisions(reference, *others):
    for other in others:
        assert np.array_equal(reference.detected, other.detected)
        assert np.array_equal(reference.bits, other.bits)


class TestAutoEquivalence:
    """Auto decisions == every fixed backend, across the crossover grid.

    ``D = N/2`` sits above the measured crossover (the planner moves to
    the FFT), 16 below it (analytic), and the forced planners exercise
    every auto branch regardless of where this host's calibration put
    the crossover.
    """

    @pytest.mark.parametrize(
        "sf,n_devices",
        [
            (7, 1), (7, 16), (7, 64),       # 64 = N/2 at SF 7
            (9, 1), (9, 16), (9, 256),      # 256 = N/2 at SF 9
            (12, 1), (12, 16),
        ],
    )
    def test_noiseless_grid(self, sf, n_devices):
        config = NetScatterConfig(
            spreading_factor=sf, n_association_shifts=0
        )
        assignments = {i: i * config.skip for i in range(n_devices)}
        rng = np.random.default_rng(1000 * sf + n_devices)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(shifts, 2, 6, rng)
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )

        auto = NetScatterReceiver(config, assignments, readout="auto")
        reference = auto.decode_readout(bins, amps, phases, bt)
        assert reference.backend in BACKENDS

        fixed = [
            NetScatterReceiver(
                config, assignments, readout="analytic"
            ).decode_readout(bins, amps, phases, bt),
            NetScatterReceiver(config, assignments).decode_rounds(symbols),
            NetScatterReceiver(
                config, assignments, readout="fft"
            ).decode_rounds(symbols),
        ]
        forced = [
            NetScatterReceiver(
                config,
                assignments,
                readout="auto",
                planner=_ForcedPlanner(backend),
            ).decode_readout(bins, amps, phases, bt)
            for backend in BACKENDS
        ]
        for decode, backend in zip(forced, BACKENDS):
            assert decode.backend == backend
        _assert_same_decisions(reference, *fixed, *forced)

    def test_half_occupancy_sf12(self):
        """The heaviest paper point: SF 12 at D = N/2 (2048 devices).

        The sparse matmul is deliberately excluded (its ``N * K`` cost
        is exactly what the planner exists to avoid here); auto, forced
        FFT and analytic must still agree bit for bit.
        """
        config = NetScatterConfig(
            spreading_factor=12, zero_pad_factor=4, n_association_shifts=0
        )
        n_devices = config.n_bins // 2
        assignments = {i: 2 * i for i in range(n_devices)}
        rng = np.random.default_rng(12)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(shifts, 1, 2, rng)

        auto = NetScatterReceiver(config, assignments, readout="auto")
        reference = auto.decode_readout(bins, amps, phases, bt)
        analytic = NetScatterReceiver(
            config,
            assignments,
            readout="auto",
            planner=_ForcedPlanner("analytic"),
        ).decode_readout(bins, amps, phases, bt)
        fft = NetScatterReceiver(
            config,
            assignments,
            readout="auto",
            planner=_ForcedPlanner("fft"),
        ).decode_readout(bins, amps, phases, bt)
        assert analytic.backend == "analytic"
        assert fft.backend == "fft"
        _assert_same_decisions(reference, analytic, fft)

    def test_auto_tensor_input_matches_fixed_backends(self):
        """decode_rounds under auto == sparse == fft on the same tensor."""
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(16)}
        rng = np.random.default_rng(3)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(shifts, 3, 8, rng)
        symbols = compose_rounds(
            config.chirp_params, bins, amps, phases, bt
        )
        auto = NetScatterReceiver(
            config, assignments, readout="auto"
        ).decode_rounds(symbols)
        assert auto.backend in ("sparse", "fft")
        sparse = NetScatterReceiver(config, assignments).decode_rounds(
            symbols
        )
        fft = NetScatterReceiver(
            config, assignments, readout="fft"
        ).decode_rounds(symbols)
        _assert_same_decisions(auto, sparse, fft)

    def test_same_seed_noise_identical_across_auto_backends(self):
        """Engine noise: every auto branch consumes the generator alike."""
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(8)}
        rng = np.random.default_rng(9)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins, amps, phases, bt = _random_batch(shifts, 4, 10, rng)
        decodes = [
            NetScatterReceiver(
                config,
                assignments,
                readout="auto",
                planner=_ForcedPlanner(backend),
            ).decode_readout(
                bins,
                amps,
                phases,
                bt,
                noise_snr_db=-18.0,
                rng=np.random.default_rng(77),
            )
            for backend in BACKENDS
        ]
        _assert_same_decisions(decodes[0], *decodes[1:])
        for a, b in zip(decodes, decodes[1:]):
            assert np.allclose(a.noise_power, b.noise_power, rtol=1e-9)

    def test_planner_returning_nonsense_is_rejected(self):
        config = NetScatterConfig(n_association_shifts=0)
        receiver = NetScatterReceiver(
            config,
            {0: 0, 1: 2},
            readout="auto",
            planner=_ForcedPlanner("bogus"),
        )
        bins = np.zeros((1, 2))
        ones = np.ones((1, 2))
        with pytest.raises(DecodingError):
            receiver.decode_readout(bins, ones, bins, np.ones((1, 8, 2)))
        with pytest.raises(DecodingError):
            receiver.decode_rounds(np.zeros((1, 8, 512), dtype=complex))


class TestNoiseCostModel:
    """Engine-noise accounting in the cost model (PR-4).

    The noise term follows the versioned stream layouts of
    :mod:`repro.phy.noise` and is backend-common by construction — it
    must scale the totals without ever flipping the selection.
    """

    def test_payload_cheaper_than_full_everywhere(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        for d in (1, 16, 64, 256):
            full = planner.costs(_workload(d, noise_mode="full"))
            payload = planner.costs(_workload(d, noise_mode="payload"))
            for backend in full:
                assert payload[backend] < full[backend]

    def test_noise_term_is_backend_common(self):
        """Pairwise cost gaps are mode-independent (selection-neutral)."""
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        for d in (8, 64, 256):
            baseline = planner.costs(_workload(d, carry_width=True))
            for mode in ("full", "payload"):
                noisy = planner.costs(_workload(d, noise_mode=mode))
                gaps = {
                    b: noisy[b] - baseline[b] for b in baseline
                }
                values = list(gaps.values())
                assert all(
                    abs(v - values[0]) < 1e-12 for v in values
                ), gaps
                assert values[0] > 0.0

    def test_selection_unchanged_by_noise_mode(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        for d in (1, 32, 100, 145, 200, 256):
            picks = {
                planner.select(_workload(d, carry_width=True)),
                planner.select(_workload(d, noise_mode="full")),
                planner.select(_workload(d, noise_mode="payload")),
            }
            assert len(picks) == 1

    def test_noise_validation(self):
        planner = BackendPlanner(DEFAULT_COEFFICIENTS)
        with pytest.raises(ConfigurationError):
            planner.costs(_workload(8, noise_mode="bogus"))
        with pytest.raises(ConfigurationError):
            planner.costs(
                _workload(8, window_width=0, noise_mode="payload")
            )

    def test_calibrate_measures_gauss_primitive(self):
        coefficients = calibrate()
        assert coefficients.gauss_elem_s > 0
        assert np.isfinite(coefficients.gauss_elem_s)

    def test_v1_schema_files_recalibrated(self, tmp_path):
        """A five-primitive v1 calibration file is ignored, not guessed."""
        path = tmp_path / "calibration.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-backend-plan-v1",
                    "coefficients": {
                        "real_mac_s": 1e-9,
                        "cplx_mac_s": 1e-9,
                        "fft_elem_s": 1e-9,
                        "exp_elem_s": 1e-9,
                        "ew_pass_s": 1e-9,
                    },
                }
            )
        )
        assert _load_coefficients(path) is None

    def test_persisted_schema_carries_gauss(self, tmp_path):
        path = tmp_path / "calibration.json"
        _persist_coefficients(path, DEFAULT_COEFFICIENTS)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-backend-plan-v2"
        assert "gauss_elem_s" in payload["coefficients"]
        assert _load_coefficients(path) == DEFAULT_COEFFICIENTS
