"""Unit tests for bandwidth aggregation (Fig. 5)."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.core.aggregation import AggregateBand, compare_receiver_costs
from repro.errors import ConfigurationError, DecodingError


@pytest.fixture
def band(small_params):
    return AggregateBand(chirp_params=small_params, aggregation_factor=2)


class TestGeometry:
    def test_slot_count_doubles(self, band, small_params):
        assert band.n_slots == 2 * small_params.n_samples

    def test_bin_spacing_preserved(self, band, small_params):
        """The aggregate band keeps the single-band bin spacing, so
        per-device bitrate is unchanged (the design goal)."""
        assert band.slot_spacing_hz == pytest.approx(
            small_params.bin_spacing_hz
        )

    def test_sample_rate(self, band, small_params):
        assert band.sample_rate_hz == 2 * small_params.bandwidth_hz

    def test_invalid_factor(self, small_params):
        with pytest.raises(ConfigurationError):
            AggregateBand(small_params, aggregation_factor=0)


class TestWaveforms:
    def test_slot_zero_is_base_chirp(self, band):
        assert np.allclose(band.slot_waveform(0), band.base_chirp())

    def test_slot_out_of_range(self, band):
        with pytest.raises(ConfigurationError):
            band.slot_waveform(band.n_slots)

    def test_each_slot_decodes_to_own_bin(self, band):
        for slot in (0, 1, 63, 64, 100, band.n_slots - 1):
            spectrum = np.abs(band.dechirp(band.slot_waveform(slot)))
            assert int(np.argmax(spectrum)) == slot

    def test_alias_behaviour(self, band):
        """Slots in the upper half wrap past the band edge mid-symbol
        (Fig. 5) yet still land in their own FFT bin — the aliasing the
        paper exploits to avoid per-band filters."""
        upper_slot = band.n_slots - 5
        spectrum = np.abs(band.dechirp(band.slot_waveform(upper_slot)))
        assert int(np.argmax(spectrum)) == upper_slot


class TestConcurrentDecode:
    def test_multiple_slots_single_fft(self, band, rng):
        active = [3, 64, 90, 120]
        symbol = band.compose_symbol(active, rng=rng)
        decoded = band.decode_slots(symbol, threshold_ratio=0.3)
        assert set(decoded) == set(active)

    def test_with_noise(self, band, rng):
        active = [10, 70]
        symbol = awgn(band.compose_symbol(active, rng=rng), 0.0, rng)
        decoded = band.decode_slots(symbol, threshold_ratio=0.3)
        assert set(active) <= set(decoded)

    def test_devices_across_subbands(self, band, rng):
        """One device per sub-band, decoded together with one FFT."""
        groups = band.slots_by_subband()
        assert len(groups) == 2
        active = [groups[0][5], groups[1][5]]
        symbol = band.compose_symbol(active, rng=rng)
        assert set(band.decode_slots(symbol, 0.3)) == set(active)

    def test_gain_alignment_validated(self, band, rng):
        with pytest.raises(ConfigurationError):
            band.compose_symbol([1, 2], gains_db=[0.0], rng=rng)

    def test_dechirp_length_validated(self, band):
        with pytest.raises(DecodingError):
            band.dechirp(np.ones(10, dtype=complex))


class TestReceiverCost:
    def test_aggregate_slightly_costlier_fft_but_no_filters(self, band):
        costs = compare_receiver_costs(band)
        # One m*N-point FFT costs a bit more than m N-point FFTs in pure
        # FFT work, but saves the band-split filters entirely; the ratio
        # must stay close to 1 (log factor).
        assert 1.0 <= costs["aggregate_over_filtered"] < 1.5

    def test_factor_one_equal(self, small_params):
        band = AggregateBand(small_params, aggregation_factor=1)
        costs = compare_receiver_costs(band)
        assert costs["aggregate_over_filtered"] == pytest.approx(1.0)
