"""Unit tests for repro.channel.multipath — Saleh-Valenzuela model."""

import numpy as np
import pytest

from repro.channel.multipath import (
    MultipathChannel,
    MultipathTap,
    delay_spread_in_bins,
    paper_delay_spread_range_bins,
    saleh_valenzuela_channel,
)
from repro.errors import ReproError


class TestTapsAndChannel:
    def test_single_tap_identity(self, rng):
        channel = MultipathChannel(
            taps=[MultipathTap(delay_s=0.0, gain=1.0 + 0j)]
        )
        signal = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert np.allclose(channel.apply(signal, 1e6), signal)

    def test_delayed_tap_shifts(self):
        channel = MultipathChannel(
            taps=[MultipathTap(delay_s=2e-6, gain=1.0 + 0j)]
        )
        signal = np.zeros(16, dtype=complex)
        signal[0] = 1.0
        out = channel.apply(signal, 1e6)  # 2 us at 1 Msps = 2 samples
        assert out[2] == pytest.approx(1.0)
        assert np.sum(np.abs(out)) == pytest.approx(1.0)

    def test_tap_beyond_signal_is_dropped(self):
        channel = MultipathChannel(
            taps=[MultipathTap(delay_s=1.0, gain=1.0 + 0j)]
        )
        out = channel.apply(np.ones(8, dtype=complex), 1e6)
        assert np.all(out == 0)

    def test_empty_taps_rejected(self):
        with pytest.raises(ReproError):
            MultipathChannel(taps=[])

    def test_normalization(self, rng):
        channel = saleh_valenzuela_channel(rng)
        total = sum(abs(t.gain) ** 2 for t in channel.taps)
        assert total == pytest.approx(1.0, rel=1e-9)


class TestRmsDelaySpread:
    def test_single_tap_zero_spread(self):
        channel = MultipathChannel(
            taps=[MultipathTap(delay_s=5e-8, gain=1.0 + 0j)]
        )
        assert channel.rms_delay_spread_s == pytest.approx(0.0, abs=1e-15)

    def test_two_equal_taps(self):
        channel = MultipathChannel(
            taps=[
                MultipathTap(delay_s=0.0, gain=1.0 + 0j),
                MultipathTap(delay_s=100e-9, gain=1.0 + 0j),
            ]
        )
        assert channel.rms_delay_spread_s == pytest.approx(50e-9)

    def test_generated_channels_in_indoor_range(self, rng):
        """Most SV realisations should produce spreads consistent with
        the paper's cited 50-300 ns indoor environment (we allow the
        generator's natural spread around it)."""
        spreads = [
            saleh_valenzuela_channel(rng).rms_delay_spread_s
            for _ in range(50)
        ]
        median = float(np.median(spreads))
        assert 10e-9 < median < 400e-9


class TestNegligibilityClaim:
    def test_paper_bin_numbers(self):
        """Section 3.2.1: 300 ns at 500 kHz is 0.15 bins (negligible)."""
        assert delay_spread_in_bins(300e-9, 500e3) == pytest.approx(0.15)
        low, high = paper_delay_spread_range_bins(500e3)
        assert low == pytest.approx(0.025)
        assert high == pytest.approx(0.15)

    def test_chirp_survives_indoor_multipath(self, params, rng):
        """End-to-end check of the claim: a chirp through a 300 ns-class
        channel still decodes to the right bin (possibly +/- a fraction
        absorbed by the guard)."""
        from repro.phy.chirp import cyclic_shifted_upchirp
        from repro.phy.demodulation import Demodulator

        channel = saleh_valenzuela_channel(rng)
        demod = Demodulator(params)
        symbol = np.asarray(cyclic_shifted_upchirp(params, 100))
        # Critical rate: 500 kHz -> taps round to 0-1 samples.
        out = channel.apply(symbol, params.bandwidth_hz)
        decoded = demod.classic_decode(out)
        assert abs(decoded - 100) <= 1

    def test_invalid_sample_rate(self):
        channel = MultipathChannel(
            taps=[MultipathTap(delay_s=0.0, gain=1.0 + 0j)]
        )
        with pytest.raises(ReproError):
            channel.apply(np.ones(4, dtype=complex), 0.0)

    def test_negative_spread_rejected(self):
        with pytest.raises(ReproError):
            delay_spread_in_bins(-1e-9, 500e3)
