"""Tests for the RNG plumbing, error hierarchy and paper constants."""

import numpy as np
import pytest

from repro import constants
from repro.errors import (
    AllocationError,
    AssociationError,
    ConfigurationError,
    DecodingError,
    HardwareModelError,
    LinkBudgetError,
    ProtocolError,
    ReproError,
    SynchronizationError,
)
from repro.utils.rng import child_rng, make_rng, optional_seed, spawn_rngs


class TestRng:
    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_make_rng_from_seed_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_child_streams_differ(self):
        base = make_rng(7)
        children = [child_rng(base, i) for i in range(4)]
        draws = [c.integers(0, 2**31) for c in children]
        assert len(set(draws)) == len(draws)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_spawn_deterministic(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 1000) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_optional_seed(self):
        assert optional_seed(5) == 5
        assert optional_seed(np.random.default_rng(0)) is None
        assert optional_seed(None) is None


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_cls in (
            ConfigurationError,
            AllocationError,
            AssociationError,
            DecodingError,
            SynchronizationError,
            LinkBudgetError,
            HardwareModelError,
            ProtocolError,
        ):
            assert issubclass(error_cls, ReproError)

    def test_sync_error_is_decoding_error(self):
        assert issubclass(SynchronizationError, DecodingError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise AllocationError("full")


class TestPaperConstants:
    def test_ic_power_blocks_sum_to_total(self):
        total = (
            constants.IC_POWER_ENVELOPE_DETECTOR_UW
            + constants.IC_POWER_BASEBAND_UW
            + constants.IC_POWER_CHIRP_GENERATOR_UW
            + constants.IC_POWER_SWITCH_NETWORK_UW
        )
        assert total == pytest.approx(constants.IC_POWER_TOTAL_UW, abs=0.01)

    def test_deployment_capacity_arithmetic(self):
        n_bins = 2**constants.DEFAULT_SPREADING_FACTOR
        assert (
            n_bins // constants.DEFAULT_SKIP
            == constants.MAX_CONCURRENT_DEVICES
        )

    def test_query_length_hierarchy(self):
        assert (
            constants.LORA_BACKSCATTER_QUERY_BITS
            < constants.QUERY_BITS_CONFIG1
            < constants.QUERY_BITS_CONFIG2
        )

    def test_sensitivity_gap_between_links(self):
        """The paper's footnote: the one-way downlink needs only
        -44 dBm vs the -120 dBm-class uplink."""
        assert (
            constants.QUERY_REQUIRED_SENSITIVITY_DBM
            > constants.RECEIVER_SENSITIVITY_SF9_DBM + 70
        )

    def test_power_levels_descending(self):
        levels = constants.POWER_GAIN_LEVELS_DB
        assert list(levels) == sorted(levels, reverse=True)
        assert levels[0] == 0.0

    def test_preamble_structure(self):
        assert constants.PREAMBLE_UPCHIRPS == 6
        assert constants.PREAMBLE_DOWNCHIRPS == 2

    def test_dynamic_range_practice_below_sim(self):
        assert (
            constants.DYNAMIC_RANGE_PRACTICE_DB
            < constants.DYNAMIC_RANGE_SIM_DB
        )
