"""Sparse-readout decode engine: equivalence, noise rules, batching.

The contract under test: the batched engine with the default ``sparse``
readout makes exactly the decisions of the opt-in ``fft`` exact path
(the sparse operator *is* the zero-padded FFT restricted to the read
columns), the unified noise-floor estimator behaves the same on both
paths, and the readout-domain AWGN fast path realises the physical
noise law.
"""

import numpy as np
import pytest

from repro.channel.awgn import awgn, awgn_rounds
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_round_matrix, compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.errors import DecodingError
from repro.phy.chirp import ChirpParams
from repro.phy.demodulation import Demodulator
from repro.phy.noise import estimate_noise_floor, spectrum_noise_floor
from repro.phy.sparse_readout import (
    SparseReadout,
    full_fft_values,
    natural_probe_readout,
)


def _compose_batch(config, assignments, n_rounds, n_payload, rng,
                   offsets_std=0.1):
    """Seeded random batch of concurrent rounds for the given layout."""
    params = config.chirp_params
    shifts = np.array(list(assignments.values()), dtype=float)
    n_devices = shifts.size
    bits = rng.integers(0, 2, size=(n_rounds, n_payload, n_devices))
    bit_tensor = np.concatenate(
        [np.ones((n_rounds, 6, n_devices)), bits], axis=1
    )
    bins = shifts[None, :] + rng.normal(
        0.0, offsets_std, size=(n_rounds, n_devices)
    )
    amplitudes = 10.0 ** (
        rng.uniform(-6.0, 6.0, size=(n_rounds, n_devices)) / 20.0
    )
    phases = rng.uniform(0, 2 * np.pi, size=(n_rounds, n_devices))
    symbols = compose_rounds(params, bins, amplitudes, phases, bit_tensor)
    return symbols, bits


class TestOperatorMatchesFft:
    @pytest.mark.parametrize("sf", [7, 9, 12])
    def test_values_match_padded_fft(self, sf):
        """The operator equals the padded FFT at the selected columns."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=sf)
        rng = np.random.default_rng(sf)
        zp = 10
        bins = rng.integers(0, params.n_samples * zp, size=40)
        readout = SparseReadout(params, zp, bins)
        symbols = rng.normal(size=(3, params.n_samples)) + 1j * rng.normal(
            size=(3, params.n_samples)
        )
        sparse = readout.spectrum(symbols)
        exact = full_fft_values(params, zp, symbols, bin_indices=bins)
        assert np.allclose(sparse, exact, rtol=1e-9, atol=1e-6)

    def test_rejects_out_of_range_bins(self):
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=7)
        with pytest.raises(DecodingError):
            SparseReadout(params, 10, np.array([params.n_samples * 10]))

    def test_probe_grid_is_orthogonal(self):
        """Natural-grid probes see AWGN as iid: covariance 2^SF * I."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=8)
        readout = natural_probe_readout(params, 10, 4)
        cov = readout.noise_covariance()
        n = params.n_samples
        assert np.allclose(cov, n * np.eye(cov.shape[0]), atol=1e-6)


class TestDecodeEquivalence:
    """Sparse vs zero-padded-FFT decisions are identical bit-for-bit."""

    @pytest.mark.parametrize(
        "sf,n_devices",
        [(7, 1), (7, 16), (9, 2), (9, 64), (9, 256), (12, 8)],
    )
    def test_bits_and_detections_match(self, sf, n_devices):
        config = NetScatterConfig(spreading_factor=sf)
        rng = np.random.default_rng(100 * sf + n_devices)
        step = max(config.skip, (config.n_bins // max(1, n_devices)))
        step = (step // config.skip) * config.skip
        assignments = {
            i: int(i * step) % config.n_bins for i in range(n_devices)
        }
        symbols, _ = _compose_batch(config, assignments, 4, 10, rng)
        noisy = awgn_rounds(symbols, 2.0, rng)
        sparse_rx = NetScatterReceiver(config, assignments)
        fft_rx = NetScatterReceiver(config, assignments, readout="fft")
        sparse = sparse_rx.decode_rounds(noisy)
        exact = fft_rx.decode_rounds(noisy)
        assert np.array_equal(sparse.detected, exact.detected)
        assert np.array_equal(sparse.bits, exact.bits)
        assert np.allclose(sparse.noise_power, exact.noise_power)
        assert np.allclose(sparse.preamble_power, exact.preamble_power)

    def test_round_matrix_agrees_with_per_symbol_reference(self):
        """Engine (sparse) == the slow per-symbol reference decoder."""
        config = NetScatterConfig()
        rng = np.random.default_rng(5)
        assignments = {0: 20, 1: 260, 2: 400}
        symbols, _ = _compose_batch(config, assignments, 1, 8, rng)
        noisy = awgn(symbols[0], 5.0, rng)
        receiver = NetScatterReceiver(config, assignments)
        fast = receiver.decode_round_matrix(noisy)
        slow = receiver.decode_fast_symbols(list(noisy))
        for device_id in assignments:
            assert (
                fast.devices[device_id].detected
                == slow.devices[device_id].detected
            )
            assert fast.bits_of(device_id) == slow.bits_of(device_id)

    def test_dechirped_domain_decodes_identically(self):
        """respread=False + dechirped=True equals the symbol-domain path."""
        config = NetScatterConfig()
        rng = np.random.default_rng(6)
        assignments = {0: 2, 1: 258}
        params = config.chirp_params
        bits = rng.integers(0, 2, size=(5, 12, 2))
        bit_tensor = np.concatenate([np.ones((5, 6, 2)), bits], axis=1)
        bins = np.array([2.0, 258.0])[None, :] + rng.normal(
            0, 0.1, (5, 2)
        )
        amps = np.ones((5, 2))
        phases = rng.uniform(0, 2 * np.pi, (5, 2))
        spread = compose_rounds(params, bins, amps, phases, bit_tensor)
        dechirped = compose_rounds(
            params, bins, amps, phases, bit_tensor, respread=False
        )
        receiver = NetScatterReceiver(config, assignments)
        a = receiver.decode_rounds(spread)
        b = receiver.decode_rounds(dechirped, dechirped=True)
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.detected, b.detected)

    def test_sparse_and_fft_match_under_engine_noise(self):
        """Same seed -> identical readout-noise draws on both backends."""
        config = NetScatterConfig()
        assignments = {0: 2, 1: 258}
        rng = np.random.default_rng(11)
        symbols, _ = _compose_batch(config, assignments, 6, 10, rng)
        sparse_rx = NetScatterReceiver(config, assignments)
        fft_rx = NetScatterReceiver(config, assignments, readout="fft")
        a = sparse_rx.decode_rounds(
            symbols, noise_snr_db=-5.0, rng=np.random.default_rng(1)
        )
        b = fft_rx.decode_rounds(
            symbols, noise_snr_db=-5.0, rng=np.random.default_rng(1)
        )
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.detected, b.detected)


class TestReadoutNoiseLaw:
    def test_window_noise_covariance_realised(self):
        """Injected window noise reproduces the time-domain noise law.

        Compare second moments of the window readout of pure time-domain
        AWGN against the engine's factor-based draws.
        """
        config = NetScatterConfig()
        receiver = NetScatterReceiver(config, {0: 50})
        plan = receiver.readout_plan
        rng = np.random.default_rng(2)
        n = config.chirp_params.n_samples
        trials = 4000
        noise = (
            rng.normal(size=(trials, n)) + 1j * rng.normal(size=(trials, n))
        ) * np.sqrt(0.5)
        through_readout = plan.window_values(noise, exact=False)[:, 0, :]
        # empirical[j, k] = E[y_j conj(y_k)], the covariance the factor
        # realises as L @ L^H; agreement up to Monte-Carlo error (~ n).
        empirical = through_readout.T @ through_readout.conj() / trials
        factor = plan.window_noise_factor
        model = factor @ factor.T.conj()
        assert np.allclose(empirical, model, atol=0.15 * n)

    def test_ber_statistics_match_time_domain_noise(self):
        """Readout-domain noise gives the same BER as awgn_rounds."""
        config = NetScatterConfig()
        assignments = {0: 2}
        receiver = NetScatterReceiver(
            config, assignments, detection_snr_db=-100.0
        )
        rng = np.random.default_rng(3)
        symbols, bits = _compose_batch(
            config, assignments, 60, 30, rng, offsets_std=0.05
        )
        snr = -16.0
        time_noisy = awgn_rounds(symbols, snr, rng)
        a = receiver.decode_rounds(time_noisy)
        b = receiver.decode_rounds(
            symbols, noise_snr_db=snr, rng=np.random.default_rng(4)
        )
        sent = bits[:, :, 0]
        ber_time = float(np.mean(a.bits[:, :, 0] != sent))
        ber_readout = float(np.mean(b.bits[:, :, 0] != sent))
        assert ber_time > 0.005 and ber_readout > 0.005
        assert abs(ber_time - ber_readout) < 0.35 * max(
            ber_time, ber_readout
        )

    def test_noise_requires_rng(self):
        config = NetScatterConfig()
        receiver = NetScatterReceiver(config, {0: 2})
        with pytest.raises(DecodingError):
            receiver.decode_rounds(
                np.zeros((1, 7, config.n_bins), dtype=complex),
                noise_snr_db=0.0,
            )


class TestUnifiedNoiseFloor:
    def test_shared_helper_median_path(self):
        power = np.array([1.0, 2.0, 3.0, 100.0])
        floor = estimate_noise_floor(power[:3], fallback_powers=power)
        assert floor == 2.0

    def test_shared_helper_batched(self):
        powers = np.array([[1.0, 3.0, 5.0], [2.0, 4.0, 6.0]])
        floors = estimate_noise_floor(powers)
        assert np.array_equal(floors, [3.0, 4.0])

    def test_fallback_quantile_under_full_occupancy(self):
        """Full exclusion falls back to the low quantile, not an error."""
        rng = np.random.default_rng(0)
        power = rng.exponential(size=512)
        empty = power[:0]
        floor = estimate_noise_floor(empty, fallback_powers=power)
        assert floor == pytest.approx(np.quantile(power, 0.25))

    def test_demodulator_delegates_to_shared_helper(self):
        """Demodulator.noise_floor == the shared spectrum helper."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=8)
        demod = Demodulator(params)
        rng = np.random.default_rng(1)
        n = params.n_samples
        result = demod.dechirp(
            (rng.normal(size=n) + 1j * rng.normal(size=n))
        )
        direct = spectrum_noise_floor(result.power, 10, exclude_shifts=[7])
        assert demod.noise_floor(result, exclude_bins=[7]) == direct

    def test_engine_full_occupancy_fallback(self):
        """256 devices at SKIP=2 exclude every probe: quantile fallback.

        Regression for the noise_floor full-occupancy fallback on the
        batched path: every natural bin sits within one bin of an
        assignment, so the floor must come from the quantile rule and
        stay positive and finite.
        """
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(256)}
        receiver = NetScatterReceiver(config, assignments)
        plan = receiver.readout_plan
        assert not plan.free_probe_mask.any()
        rng = np.random.default_rng(9)
        symbols, _ = _compose_batch(
            config, assignments, 2, 4, rng, offsets_std=0.05
        )
        decode = receiver.decode_rounds(awgn_rounds(symbols, 0.0, rng))
        assert np.all(decode.noise_power > 0.0)
        assert np.all(np.isfinite(decode.noise_power))


class TestCachedSpectra:
    def test_power_and_magnitude_cached(self):
        """Repeated property access returns the same array object."""
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=7)
        demod = Demodulator(params)
        rng = np.random.default_rng(0)
        n = params.n_samples
        result = demod.dechirp(
            rng.normal(size=n) + 1j * rng.normal(size=n)
        )
        assert result.power is result.power
        assert result.magnitude is result.magnitude
        assert np.allclose(result.power, result.magnitude**2)


class TestComposeRoundsValidation:
    def test_wrapper_matches_batched(self):
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=7)
        rng = np.random.default_rng(0)
        bins = rng.uniform(0, 10, 3)
        amps = rng.uniform(0.5, 2.0, 3)
        phases = rng.uniform(0, 2 * np.pi, 3)
        bit_matrix = rng.integers(0, 2, size=(5, 3)).astype(float)
        single = compose_round_matrix(params, bins, amps, phases, bit_matrix)
        batched = compose_rounds(
            params,
            bins[None],
            amps[None],
            phases[None],
            bit_matrix[None],
        )
        assert np.array_equal(single, batched[0])

    def test_shape_errors(self):
        from repro.errors import ConfigurationError

        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=7)
        with pytest.raises(ConfigurationError):
            compose_rounds(
                params,
                np.zeros(3),
                np.zeros((1, 3)),
                np.zeros((1, 3)),
                np.zeros((1, 5, 3)),
            )
        with pytest.raises(ConfigurationError):
            compose_rounds(
                params,
                np.zeros((1, 3)),
                np.zeros((1, 2)),
                np.zeros((1, 3)),
                np.zeros((1, 5, 3)),
            )


class TestLazyOperator:
    """The (N, K) operator must stay unbuilt until time-domain use."""

    def test_operator_bytes_zero_until_materialised(self):
        params = ChirpParams(bandwidth_hz=500e3, spreading_factor=9)
        readout = SparseReadout(params, 10, np.arange(0, 100))
        assert not readout.operator_materialised
        assert readout.operator_bytes == 0
        # Analytic consumers leave it unbuilt...
        readout.tone_kernel(np.array([1.0, 2.5]))
        readout.analytic_noise_covariance()
        assert not readout.operator_materialised
        assert readout.operator_bytes == 0
        # ...and the first time-domain readout builds exactly (N, K).
        readout.spectrum(np.zeros(params.n_samples, dtype=complex))
        assert readout.operator_materialised
        assert readout.operator_bytes == 16 * params.n_samples * 100

    def test_analytic_receiver_never_builds_operators(self):
        """readout="analytic" decode paths never touch the operator."""
        # The probe readout is shared process-wide (lru cache); start
        # from a fresh instance so earlier time-domain tests cannot have
        # materialised it already.
        natural_probe_readout.cache_clear()
        config = NetScatterConfig(n_association_shifts=0)
        assignments = {i: 2 * i for i in range(16)}
        rng = np.random.default_rng(21)
        shifts = np.array(list(assignments.values()), dtype=float)
        bins = shifts[None, :] + rng.normal(0.0, 0.2, (2, 16))
        amps = np.ones((2, 16))
        phases = rng.uniform(0, 2 * np.pi, (2, 16))
        bits = np.concatenate(
            [np.ones((2, 6, 16)), rng.integers(0, 2, (2, 8, 16))], axis=1
        )
        receiver = NetScatterReceiver(
            config, assignments, readout="analytic"
        )
        receiver.decode_readout(
            bins, amps, phases, bits,
            noise_snr_db=-15.0, rng=np.random.default_rng(1),
        )
        plan = receiver._readout_plan(dechirped=True)
        for readout in (plan.window_readout, plan.probe_readout):
            assert not readout.operator_materialised
            assert readout.operator_bytes == 0
