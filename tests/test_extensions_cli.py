"""Tests for the extension experiments, the registry and the CLI."""

import pytest

from repro.errors import ReproError
from repro.experiments import choir_comparison, fig10_association
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)
from repro.__main__ import main as cli_main


class TestChoirComparison:
    def test_checks_pass(self):
        result = choir_comparison.run(
            device_counts=(2, 5, 20), n_rounds=150, rng=3
        )
        assert result.all_checks_pass(), result.report()

    def test_netscatter_outscales_choir(self):
        result = choir_comparison.run(
            device_counts=(10,), n_rounds=150, rng=3
        )
        row = result.rows[0]
        assert row["netscatter_delivery"] > 0.95
        assert row["choir_success"] < 0.05

    def test_ideal_radio_column_matches_analytics(self):
        from repro.baselines.choir import (
            choir_distinct_fraction_probability,
            choir_same_shift_collision_probability,
        )

        result = choir_comparison.run(
            device_counts=(5,), n_rounds=50, rng=3
        )
        expected = choir_distinct_fraction_probability(5) * (
            1 - choir_same_shift_collision_probability(5, 9)
        )
        assert result.rows[0]["choir_ideal_radio"] == pytest.approx(
            expected
        )


class TestAssociationExperiment:
    def test_flow_completes(self):
        result = fig10_association.run(n_trials=3, rng=4)
        assert result.all_checks_pass(), result.report()

    def test_rows_record_grants(self):
        result = fig10_association.run(n_trials=2, rng=4)
        for row in result.rows:
            assert row["ack_confirmed"]
            assert row["granted_shift"] >= 0


class TestGroupScaling:
    def test_checks_pass(self):
        from repro.experiments import group_scaling

        result = group_scaling.run(populations=(128, 512), rng=5)
        assert result.all_checks_pass(), result.report()

    def test_latency_steps_with_groups(self):
        from repro.experiments import group_scaling

        result = group_scaling.run(populations=(256, 1024), rng=5)
        small, large = result.rows
        assert large["n_groups"] > small["n_groups"]
        assert (
            large["netscatter_latency_ms"] > small["netscatter_latency_ms"]
        )


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = experiment_ids()
        for required in (
            "fig04", "table1", "fig07", "fig08", "fig09", "fig12",
            "fig14a", "fig14b", "fig15a", "fig15b", "fig16", "fig17",
            "fig18", "fig19", "sec22",
        ):
            assert required in ids

    def test_run_by_id(self):
        result = run_experiment("table1")
        assert result.all_checks_pass()

    def test_quick_mode(self):
        result = run_experiment("fig09", quick=True, seed=1)
        assert result.all_checks_pass()

    def test_unknown_id_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_registry_callables(self):
        for driver in EXPERIMENTS.values():
            assert callable(driver)


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out

    def test_run_command(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_run_quick(self, capsys):
        assert cli_main(["run", "fig08", "--quick"]) == 0

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "not-a-figure"])
