"""Unit tests for repro.phy.sync — packet-start estimation."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import SynchronizationError
from repro.phy.onoff import OnOffKeyedTransmitter
from repro.phy.sync import PreambleSynchronizer, estimate_cfo_bins
from repro.utils.sampling import apply_cfo


def _stream_with_packet(params, shift, start, payload, rng, snr_db=None):
    tx = OnOffKeyedTransmitter(params, shift)
    packet = tx.packet(payload)
    stream = np.zeros(start + packet.size + 2 * params.n_samples, dtype=complex)
    stream[start : start + packet.size] = packet
    if snr_db is not None:
        stream = awgn(stream, snr_db, rng)
    return stream


class TestSynchronizer:
    def test_exact_start_noiseless(self, small_params, rng):
        start = 137
        stream = _stream_with_packet(
            small_params, 11, start, [1, 0, 1, 0], rng
        )
        sync = PreambleSynchronizer(small_params)
        result = sync.synchronize(stream, coarse_step=4)
        assert result.start_sample == start

    def test_start_with_noise(self, small_params, rng):
        start = 55
        stream = _stream_with_packet(
            small_params, 3, start, [1, 1, 0, 0], rng, snr_db=5.0
        )
        sync = PreambleSynchronizer(small_params)
        result = sync.synchronize(stream, coarse_step=4)
        assert abs(result.start_sample - start) <= 1

    def test_multiple_devices_share_boundary(self, small_params, rng):
        """Concurrent devices with different shifts share the packet
        boundary; the estimator must still lock."""
        start = 40
        stream = None
        for shift in (2, 20, 40):
            s = _stream_with_packet(small_params, shift, start, [1, 0], rng)
            stream = s if stream is None else stream + s
        sync = PreambleSynchronizer(small_params)
        result = sync.synchronize(stream, coarse_step=2)
        assert abs(result.start_sample - start) <= 1

    def test_alignment_score_peaks_at_truth(self, small_params, rng):
        start = 64
        stream = _stream_with_packet(small_params, 5, start, [1, 0], rng)
        sync = PreambleSynchronizer(small_params)
        at_truth = sync.alignment_score(stream, start)
        off = sync.alignment_score(stream, start + small_params.n_samples // 2)
        assert at_truth > off

    def test_too_short_stream_rejected(self, small_params):
        sync = PreambleSynchronizer(small_params)
        with pytest.raises(SynchronizationError):
            sync.synchronize(np.zeros(10, dtype=complex))

    def test_out_of_bounds_score_rejected(self, small_params):
        sync = PreambleSynchronizer(small_params)
        stream = np.zeros(sync.preamble_samples + 10, dtype=complex)
        with pytest.raises(SynchronizationError):
            sync.alignment_score(stream, -1)
        with pytest.raises(SynchronizationError):
            sync.alignment_score(stream, 11)

    def test_invalid_preamble_shape(self, small_params):
        with pytest.raises(SynchronizationError):
            PreambleSynchronizer(small_params, n_upchirps=0)


class TestCfoEstimation:
    def test_zero_cfo(self, params):
        tx = OnOffKeyedTransmitter(params, 123)
        preamble = tx.preamble()
        n = params.n_samples
        up = preamble[:n]
        down = preamble[6 * n : 7 * n]
        cfo = estimate_cfo_bins(params, up, down)
        assert cfo == pytest.approx(0.0, abs=0.06)

    def test_positive_cfo_recovered(self, params):
        tx = OnOffKeyedTransmitter(params, 40)
        preamble = tx.preamble()
        shifted = apply_cfo(preamble, 300.0, params.bandwidth_hz)
        n = params.n_samples
        cfo_bins = estimate_cfo_bins(
            params, shifted[:n], shifted[6 * n : 7 * n]
        )
        expected = 300.0 * params.n_samples / params.bandwidth_hz
        assert cfo_bins == pytest.approx(expected, abs=0.1)

    def test_cfo_independent_of_shift(self, params):
        """The half-sum cancels the unknown cyclic shift."""
        estimates = []
        for shift in (3, 100, 400):
            tx = OnOffKeyedTransmitter(params, shift)
            preamble = apply_cfo(
                tx.preamble(), 200.0, params.bandwidth_hz
            )
            n = params.n_samples
            estimates.append(
                estimate_cfo_bins(
                    params, preamble[:n], preamble[6 * n : 7 * n]
                )
            )
        assert max(estimates) - min(estimates) < 0.15
