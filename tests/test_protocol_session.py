"""Tests for the long-running network session (protocol dynamics)."""

import pytest

from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError
from repro.protocol.session import NetworkSession


@pytest.fixture(scope="module")
def quiet_session():
    """A session over a calm channel (no fading to speak of)."""
    deployment = paper_deployment(n_devices=32, rng=21)
    session = NetworkSession(
        deployment=deployment, fading_std_db=0.1, rng=22
    )
    session.run(20)
    return session


class TestQuietChannel:
    def test_high_delivery(self, quiet_session):
        assert quiet_session.stats.mean_delivery > 0.97

    def test_full_participation(self, quiet_session):
        assert quiet_session.stats.mean_participation > 0.99

    def test_no_reassociation_needed(self, quiet_session):
        assert quiet_session.stats.reassociations == 0

    def test_round_count(self, quiet_session):
        assert quiet_session.stats.rounds == 20


class TestFadingChannel:
    def test_dynamics_engage_under_fading(self):
        deployment = paper_deployment(n_devices=32, rng=23)
        session = NetworkSession(
            deployment=deployment, fading_std_db=4.0, rng=24
        )
        stats = session.run(40)
        # The control loop must actually act...
        assert stats.power_steps > 0
        # ...while keeping the network usable.
        assert stats.mean_delivery > 0.7
        assert stats.mean_participation > 0.6

    def test_reassociation_restores_membership(self):
        deployment = paper_deployment(n_devices=16, rng=25)
        session = NetworkSession(
            deployment=deployment, fading_std_db=6.0, rng=26
        )
        stats = session.run(50)
        # Strong fading forces re-joins, and every device must still be
        # a member afterwards (re-association is seamless).
        assert stats.reassociations > 0
        assert session.ap.n_members == 16

    def test_reassignment_queries_follow_rank_changes(self):
        deployment = paper_deployment(n_devices=16, rng=27)
        session = NetworkSession(
            deployment=deployment, fading_std_db=6.0, rng=28
        )
        stats = session.run(50)
        assert stats.reassignment_queries <= stats.reassociations


class TestValidation:
    def test_oversubscription_rejected(self):
        deployment = paper_deployment(n_devices=64, rng=29)
        config = NetScatterConfig(
            bandwidth_hz=125e3, spreading_factor=6, skip=2,
            n_association_shifts=0,
        )
        with pytest.raises(ConfigurationError):
            NetworkSession(deployment=deployment, config=config)

    def test_zero_rounds_rejected(self):
        deployment = paper_deployment(n_devices=4, rng=30)
        session = NetworkSession(deployment=deployment, rng=31)
        with pytest.raises(ConfigurationError):
            session.run(0)
