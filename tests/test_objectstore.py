"""Remote object-store driver + chaos-hardened HTTP storage service.

The load-bearing pins:

* **wire protocol** — integrity headers are verified in both
  directions (a corrupt body or lost ETag surfaces as a transient,
  retryable error, never silent corruption), writes to an unknown
  bucket fail loudly, and backend faults map onto retryable 5xx;
* **network chaos** — every network-class fault kind (``refuse``,
  ``http_error`` + Retry-After, ``disconnect`` mid-body, ``delay``,
  ``stale_read``) injected server-side heals inside the client retry
  stack with zero recomputation;
* **circuit breaker** — consecutive transport failures trip the
  breaker into fail-fast ``CircuitOpenError``; a half-open probe
  closes it again once the endpoint heals; missing keys are answers,
  not failures;
* **delayed-landing writes** — a write that times out client-side but
  lands server-side is reconciled by the idempotent retry (ETag
  read-back) and by the lease protocol's own-owner steal path;
* **acceptance** — two concurrent forked runners over ``HttpDriver``
  against one chaos-injected server converge to a manifest
  byte-identical to a clean single-shot posix run with zero
  duplicated computations.
"""

import json
import multiprocessing
import subprocess
import sys
import time

import pytest

from repro.campaign.cli import main as campaign_cli
from repro.campaign.faults import (
    FaultPlan,
    StorageFaultPlan,
    StorageFaultRule,
)
from repro.campaign.leases import LeaseManager
from repro.campaign.objectstore import (
    CircuitBreakerDriver,
    HttpDriver,
    ObjectStoreService,
)
from repro.campaign.presets import fig17_campaign
from repro.campaign.runner import (
    EXEC_LOG_ENV,
    CampaignRunner,
    RetryPolicy,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.storage import (
    FaultyDriver,
    MemoryDriver,
    PosixDriver,
    PrefixDriver,
    RetryingDriver,
    StorageRetryPolicy,
    build_driver,
)
from repro.campaign.store import CampaignStore
from repro.errors import (
    CircuitOpenError,
    PersistentStorageError,
    StorageMissingError,
    TransientStorageError,
)

#: Fast client retry policy (real backoffs, tiny delays).
FAST_RETRY = StorageRetryPolicy(
    max_attempts=5, base_delay_s=0.002, max_delay_s=0.01
)


def small_spec(counts=(1, 2), **overrides):
    kwargs = dict(
        rng=0, device_counts=counts, n_rounds=1, engine="analytic"
    )
    kwargs.update(overrides)
    return fig17_campaign(**kwargs)


def network_plan(rules, seed=0):
    return StorageFaultPlan(
        rules=tuple(StorageFaultRule(**rule) for rule in rules),
        seed=seed,
    )


@pytest.fixture
def service(request):
    """A live in-process object-store service over a memory driver."""
    svc = ObjectStoreService()
    svc.start()
    request.addfinalizer(svc.stop)
    return svc


def chaos_service(request, rules, driver=None, seed=0):
    svc = ObjectStoreService(
        driver=driver, fault_plan=network_plan(rules, seed=seed)
    )
    svc.start()
    request.addfinalizer(svc.stop)
    return svc


def dead_url(request):
    """A URL whose endpoint refuses connections (bound, then closed)."""
    svc = ObjectStoreService()
    svc.start()
    url = svc.url
    svc.stop()
    return url


class TestWireProtocol:
    """Integrity and error-mapping pins beyond the shared contract
    suite (which already runs the full driver contract over HTTP)."""

    def test_writes_to_unknown_bucket_fail_loudly(self, service):
        driver = HttpDriver(
            service.url.rsplit("/", 1)[0] + "/wrong-bucket",
            timeout_s=5.0,
        )
        with pytest.raises(PersistentStorageError):
            driver.put_atomic("points/a.json", b"x")

    def test_corrupt_response_body_is_transient(self, service):
        driver = HttpDriver(service.url, timeout_s=5.0)
        with pytest.raises(TransientStorageError):
            driver._verify(
                "get", "points/a.json", b"body", "0" * 64
            )

    def test_lost_etag_readback_retries_the_write(self, service):
        driver = HttpDriver(service.url, timeout_s=5.0)
        driver._request = lambda *a, **k: (200, {"etag": '"bogus"'}, b"")
        with pytest.raises(TransientStorageError) as info:
            driver.put_atomic("points/a.json", b"payload")
        assert "ETag" in str(info.value)

    def test_server_rejects_torn_request_body(self, service):
        # A PUT whose body disagrees with its integrity header must be
        # refused (422) with nothing committed.
        from http.client import HTTPConnection
        from urllib.parse import urlsplit

        from repro.campaign.objectstore import SHA_HEADER

        netloc = urlsplit(service.url).netloc
        conn = HTTPConnection(netloc, timeout=5.0)
        try:
            conn.request(
                "PUT",
                "/campaign/points/torn.json",
                body=b"actual bytes",
                headers={SHA_HEADER: "0" * 64},
            )
            response = conn.getresponse()
            response.read()
        finally:
            conn.close()
        assert response.status == 422
        assert not service.driver.exists("points/torn.json")

    def test_backend_transient_fault_maps_to_retryable_503(self, request):
        # The service's *backing* driver hiccups -> 503 on the wire ->
        # TransientStorageError client-side -> the retry wrapper heals.
        backing = FaultyDriver(
            MemoryDriver(),
            StorageFaultPlan(
                rules=(
                    StorageFaultRule(
                        kind="error", op="get", calls=(1,)
                    ),
                )
            ),
        )
        svc = ObjectStoreService(driver=backing)
        svc.start()
        request.addfinalizer(svc.stop)
        retrying = RetryingDriver(
            HttpDriver(svc.url, timeout_s=5.0), FAST_RETRY
        )
        retrying.put_atomic("points/a.json", b"x")
        assert retrying.get("points/a.json") == b"x"
        assert retrying.n_retries == 1


class TestNetworkChaosKinds:
    """Each network-class fault kind, injected server-side from a
    seeded plan, heals inside the client retry stack."""

    def test_refused_connection_heals_on_retry(self, request):
        svc = chaos_service(
            request, [{"kind": "refuse", "op": "get", "calls": [1]}]
        )
        retrying = RetryingDriver(
            HttpDriver(svc.url, timeout_s=5.0), FAST_RETRY
        )
        retrying.put_atomic("points/a.json", b"x")
        assert retrying.get("points/a.json") == b"x"
        assert retrying.n_retries == 1
        assert svc.selector.n_injected == 1

    def test_http_error_carries_retry_after_hint(self, request):
        svc = chaos_service(
            request,
            [
                {
                    "kind": "http_error",
                    "op": "get",
                    "calls": [1],
                    "status": 503,
                    "retry_after_s": 0.05,
                }
            ],
        )
        driver = HttpDriver(svc.url, timeout_s=5.0)
        driver.put_atomic("points/a.json", b"x")
        with pytest.raises(TransientStorageError) as info:
            driver.get("points/a.json")
        assert info.value.retry_after_s == 0.05

    def test_retry_after_floors_the_backoff(self, request):
        # A 429 with Retry-After: retrying sooner is pointless, so the
        # hint stretches the (otherwise ~1ms) backoff.
        svc = chaos_service(
            request,
            [
                {
                    "kind": "http_error",
                    "op": "get",
                    "calls": [1],
                    "status": 429,
                    "retry_after_s": 0.08,
                }
            ],
        )
        retrying = RetryingDriver(
            HttpDriver(svc.url, timeout_s=5.0),
            StorageRetryPolicy(
                max_attempts=3, base_delay_s=0.001, max_delay_s=0.5
            ),
        )
        retrying.put_atomic("points/a.json", b"x")
        start = time.monotonic()
        assert retrying.get("points/a.json") == b"x"
        assert time.monotonic() - start >= 0.08

    def test_disconnect_mid_body_lands_the_write(self, request):
        # The canonical eventually-landing write: the server commits,
        # then truncates the response. The raw client sees a failure;
        # the retry reconciles via the idempotent replace + ETag
        # read-back, with the committed value intact throughout.
        svc = chaos_service(
            request,
            [{"kind": "disconnect", "op": "replace", "calls": [1]}],
        )
        raw = HttpDriver(svc.url, timeout_s=5.0)
        raw.put_atomic("points/a.json", b"old")
        with pytest.raises(TransientStorageError):
            raw.replace("points/a.json", b"new")
        assert raw.get("points/a.json") == b"new"  # it landed
        retrying = RetryingDriver(raw, FAST_RETRY)
        retrying.replace("points/a.json", b"newer")
        assert retrying.get("points/a.json") == b"newer"

    def test_delay_slows_but_does_not_fail(self, request):
        svc = chaos_service(
            request,
            [
                {
                    "kind": "delay",
                    "op": "get",
                    "calls": [1],
                    "hang_s": 0.05,
                }
            ],
        )
        driver = HttpDriver(svc.url, timeout_s=5.0)
        driver.put_atomic("points/a.json", b"x")
        start = time.monotonic()
        assert driver.get("points/a.json") == b"x"
        assert time.monotonic() - start >= 0.05

    def test_stale_read_serves_previous_committed_state(self, request):
        svc = chaos_service(
            request,
            [{"kind": "stale_read", "op": "get", "calls": [2]}],
        )
        driver = HttpDriver(svc.url, timeout_s=5.0)
        driver.put_atomic("points/a.json", b"v1")
        assert driver.get("points/a.json") == b"v1"
        driver.replace("points/a.json", b"v2")
        assert driver.get("points/a.json") == b"v1"  # stale view
        assert driver.get("points/a.json") == b"v2"  # converged

    def test_stale_read_hides_a_fresh_write(self, request):
        # A never-before-written key under a stale read is simply not
        # visible yet — Missing, the answer an eventually-consistent
        # backend would give.
        svc = chaos_service(
            request,
            [{"kind": "stale_read", "op": "get", "calls": [1]}],
        )
        driver = HttpDriver(svc.url, timeout_s=5.0)
        driver.put_atomic("points/a.json", b"v1")
        with pytest.raises(StorageMissingError):
            driver.get("points/a.json")
        assert driver.get("points/a.json") == b"v1"


class TestCircuitBreaker:
    def test_consecutive_failures_trip_then_fail_fast(self, request):
        url = dead_url(request)
        breaker = CircuitBreakerDriver(
            HttpDriver(url, timeout_s=1.0),
            failure_threshold=3,
            reset_after_s=60.0,
        )
        for _ in range(3):
            with pytest.raises(TransientStorageError):
                breaker.get("points/a.json")
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.get("points/a.json")
        stats = breaker.stats()
        assert stats["n_trips"] == 1
        assert stats["n_short_circuited"] == 1

    def test_circuit_open_error_degrades_like_persistent(self, request):
        assert issubclass(CircuitOpenError, PersistentStorageError)
        url = dead_url(request)
        retrying = RetryingDriver(
            CircuitBreakerDriver(
                HttpDriver(url, timeout_s=1.0),
                failure_threshold=1,
                reset_after_s=60.0,
            ),
            FAST_RETRY,
        )
        with pytest.raises(PersistentStorageError):
            retrying.get("points/a.json")
        # Open breaker: the retrying wrapper passes the persistent
        # fail-fast straight through — no retry storm.
        before = retrying.n_retries
        with pytest.raises(CircuitOpenError):
            retrying.get("points/a.json")
        assert retrying.n_retries == before

    def test_missing_keys_are_answers_not_failures(self, service):
        breaker = CircuitBreakerDriver(
            HttpDriver(service.url, timeout_s=5.0),
            failure_threshold=1,
            reset_after_s=60.0,
        )
        for _ in range(3):
            with pytest.raises(StorageMissingError):
                breaker.get("points/absent.json")
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_recovery(self):
        flaky = FaultyDriver(
            MemoryDriver(),
            StorageFaultPlan(
                rules=(
                    StorageFaultRule(
                        kind="error", op="get", calls=(1,)
                    ),
                )
            ),
        )
        breaker = CircuitBreakerDriver(
            flaky, failure_threshold=1, reset_after_s=0.05
        )
        breaker.put_atomic("points/a.json", b"x")
        with pytest.raises(TransientStorageError):
            breaker.get("points/a.json")
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.get("points/a.json")
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.get("points/a.json") == b"x"  # the probe
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self, request):
        url = dead_url(request)
        breaker = CircuitBreakerDriver(
            HttpDriver(url, timeout_s=1.0),
            failure_threshold=1,
            reset_after_s=0.05,
        )
        with pytest.raises(TransientStorageError):
            breaker.get("points/a.json")
        time.sleep(0.06)
        with pytest.raises(TransientStorageError):
            breaker.get("points/a.json")  # half-open probe fails
        assert breaker.state == "open"
        assert breaker.stats()["n_trips"] == 2


class TestRunnerDegradation:
    """A dead endpoint degrades the run instead of hanging it: the
    breaker's fail-fast CircuitOpenError rides the runner's existing
    allow_partial read-only path."""

    def _dead_store(self, request):
        url = dead_url(request)
        driver = RetryingDriver(
            CircuitBreakerDriver(
                HttpDriver(url, timeout_s=0.5),
                failure_threshold=1,
                reset_after_s=60.0,
            ),
            StorageRetryPolicy(
                max_attempts=2, base_delay_s=0.001, max_delay_s=0.002
            ),
        )
        return CampaignStore(driver=driver, fault_plan=FaultPlan())

    def test_allow_partial_computes_without_persistence(self, request):
        store = self._dead_store(request)
        run = CampaignRunner(
            store=store,
            workers=None,
            fault_plan=FaultPlan(),
            use_leases=False,
            allow_partial=True,
        ).run(small_spec(counts=(1,)))
        assert run.storage_degraded
        assert len(run.results) == 1
        assert run.results[0].metrics

    def test_without_allow_partial_the_fault_surfaces(self, request):
        store = self._dead_store(request)
        with pytest.raises(PersistentStorageError):
            CampaignRunner(
                store=store,
                workers=None,
                fault_plan=FaultPlan(),
                use_leases=False,
            ).run(small_spec(counts=(1,)))


class TestDelayedLandingWrites:
    """``op_timeout_s`` vs writes that land after the client gave up:
    the abandoned operation completes server-side while the retry
    reconciles — idempotent replace via ETag read-back, exclusive
    claims via the lease protocol's own-owner steal path."""

    def test_timed_out_replace_reconciles_idempotently(self, request):
        svc = chaos_service(
            request,
            [
                {
                    "kind": "delay",
                    "op": "replace",
                    "calls": [1],
                    "hang_s": 0.3,
                }
            ],
        )
        raw = HttpDriver(svc.url, timeout_s=5.0)
        raw.put_atomic("points/a.json", b"old")
        retrying = RetryingDriver(
            raw,
            StorageRetryPolicy(
                max_attempts=3,
                base_delay_s=0.01,
                max_delay_s=0.05,
                op_timeout_s=0.1,
            ),
        )
        # Attempt 1 times out client-side at 100ms while the server is
        # still sleeping; the abandoned request lands the same bytes at
        # ~300ms. The retry's identical write + ETag read-back makes
        # the race harmless.
        retrying.replace("points/a.json", b"new")
        assert retrying.n_retries >= 1
        time.sleep(0.35)  # let the abandoned write land too
        assert raw.get("points/a.json") == b"new"

    def test_timed_out_claim_reconciled_by_lease_acquire(self, request):
        svc = chaos_service(
            request,
            [
                {
                    "kind": "delay",
                    "op": "put_exclusive",
                    "key_prefix": "leases/",
                    "calls": [1],
                    "hang_s": 0.15,
                }
            ],
        )
        backend = PrefixDriver(
            RetryingDriver(
                HttpDriver(svc.url, timeout_s=5.0),
                StorageRetryPolicy(
                    max_attempts=3,
                    base_delay_s=0.2,  # retry only after the landing
                    max_delay_s=0.3,
                    jitter=0.0,
                    op_timeout_s=0.05,
                ),
            ),
            "leases/",
        )
        manager = LeaseManager(backend, owner="w1", ttl_s=5.0)
        # The exclusive create times out client-side but lands
        # server-side; the retry then loses to *our own* stale entry,
        # and acquire()'s read-back recognises the owner and steals it
        # back — the claim is granted, not deadlocked.
        assert manager.acquire("abc123") is True
        assert manager.held == ["abc123"]
        holder = manager.holder("abc123")
        assert holder is not None and holder["owner"] == "w1"


class TestServeCli:
    """End-to-end over the CLI: ``serve`` in a subprocess, campaigns
    and fleet monitoring against its URL."""

    def test_run_and_status_over_http(self, request, tmp_path, capsys):
        svc = ObjectStoreService(
            driver=PosixDriver(tmp_path / "store")
        )
        svc.start()
        request.addfinalizer(svc.stop)
        assert (
            campaign_cli(
                [
                    "run",
                    "--spec",
                    "fig17",
                    "--counts",
                    "1,2",
                    "--rounds",
                    "1",
                    "--engine",
                    "analytic",
                    "--workers",
                    "0",
                    "--no-leases",
                    "--storage-driver",
                    svc.url,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            campaign_cli(
                ["status", "--json", "--storage-driver", svc.url]
            )
            == 0
        )
        status = json.loads(capsys.readouterr().out.strip())
        assert status["n_points"] == 2
        assert status["storage"]["driver"].startswith(
            "retrying(breaker(http("
        )
        # Per-layer nested stats all the way down to the remote driver.
        assert "state" in status["storage"]["inner"]
        assert "ops" in status["storage"]["inner"]["inner"]

    def test_serve_subprocess_round_trip(self, tmp_path, capsys):
        root = tmp_path / "served"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.campaign",
                "serve",
                "--root",
                str(root),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner
            url = banner.split("--storage-driver ")[1].rstrip(")\n")
            driver = RetryingDriver(
                HttpDriver(url, timeout_s=5.0), FAST_RETRY
            )
            driver.put_atomic("notes/a.json", b"{}")
            assert driver.get("notes/a.json") == b"{}"
            assert (
                campaign_cli(
                    ["status", "--json", "--storage-driver", url]
                )
                == 0
            )
            status = json.loads(capsys.readouterr().out.strip())
            assert status["n_points"] == 0
            assert status["root"].startswith("retrying(breaker(http(")
        finally:
            process.terminate()
            process.wait(timeout=10.0)
        # Durable: the served posix root holds the committed bytes.
        assert (root / "notes" / "a.json").read_bytes() == b"{}"


def _child_run_http(url, spec_dict, owner, lease_ttl_s):
    """One campaign over the remote driver in a forked child."""
    store = CampaignStore(
        driver=build_driver(url),
        fault_plan=FaultPlan(),
        retry=StorageRetryPolicy(
            max_attempts=6, base_delay_s=0.005, max_delay_s=0.03
        ),
    )
    CampaignRunner(
        store=store,
        workers=None,
        fault_plan=FaultPlan(),
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
        owner=owner,
        lease_ttl_s=lease_ttl_s,
        wait_poll_s=0.05,
    ).run(CampaignSpec.from_dict(spec_dict))


class TestHttpAcceptance:
    """The PR's acceptance bar: two concurrent runners over
    ``HttpDriver`` against one server under seeded network chaos
    (refused connections, 503s, truncated bodies, one stale read)
    produce a manifest byte-identical to a clean single-shot posix
    run with zero duplicated computations."""

    def test_two_runners_over_http_converge(
        self, request, tmp_path, monkeypatch
    ):
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]
        store_root = tmp_path / "store"

        clean_root = tmp_path / "clean"
        CampaignRunner(
            store=CampaignStore(clean_root, fault_plan=FaultPlan()),
            use_leases=False,
        ).run(spec)
        CampaignStore(clean_root, fault_plan=FaultPlan()).manifest()

        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))

        # Server-side chaos: refused connections and 503s on reads, a
        # 503 on a lease claim, truncated response bodies on chunk
        # writes (the writes land), and one stale read on the points
        # namespace — all within the clients' retry budgets.
        svc = chaos_service(
            request,
            [
                {"kind": "refuse", "op": "get", "calls": [3]},
                {
                    "kind": "http_error",
                    "op": "get",
                    "calls": [6],
                    "status": 503,
                    "retry_after_s": 0.02,
                },
                {
                    "kind": "http_error",
                    "op": "put_exclusive",
                    "key_prefix": "leases/",
                    "calls": [2],
                    "status": 503,
                },
                {
                    "kind": "disconnect",
                    "op": "put_atomic",
                    "key_prefix": "points/",
                    "calls": [1, 3],
                },
                {
                    "kind": "stale_read",
                    "op": "exists",
                    "key_prefix": "points/",
                    "calls": [1],
                },
            ],
            driver=PosixDriver(store_root),
            seed=7,
        )

        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_child_run_http,
                args=(svc.url, spec.to_dict(), name, 5.0),
            )
            for name in ("w1", "w2")
        ]
        try:
            for process in workers:
                process.start()
            for process in workers:
                process.join(timeout=120.0)
                assert process.exitcode == 0
        finally:
            for process in workers:
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)

        # Every planned rule fired at least the chaos it promised.
        assert svc.selector.n_injected >= 5

        store = CampaignStore(store_root, fault_plan=FaultPlan())
        assert sorted(store.manifest()["points"]) == sorted(hashes)
        assert store.active_leases() == []
        assert store.failures() == []
        assert store.quarantined() == {}

        # Byte-identical to the clean single-shot posix manifest.
        assert (store_root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

        # Zero duplicated computations despite every injected fault.
        logged = [
            line.split()[0]
            for line in exec_log.read_text().splitlines()
            if line.strip()
        ]
        assert len(logged) == len(set(logged))
        assert sorted(logged) == sorted(hashes)


class TestClientDisconnects:
    """Regression: a client hanging up mid-response must be counted
    and logged once — never a traceback spewed to stderr by the
    ThreadingHTTPServer machinery."""

    def test_mid_response_hangup_is_counted_not_tracebacked(
        self, request, capfd
    ):
        import socket
        import struct
        from urllib.parse import urlsplit

        svc = ObjectStoreService()
        svc.start()
        request.addfinalizer(svc.stop)
        # Big enough that the response write outlives the socket.
        svc.driver.put_atomic("points/big.bin", b"x" * (8 << 20))

        netloc = urlsplit(svc.url).netloc
        host, port = netloc.rsplit(":", 1)
        for _ in range(3):
            sock = socket.create_connection((host, int(port)), 10)
            try:
                # RST on close so the server-side write fails hard.
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.sendall(
                    b"GET /campaign/points/big.bin HTTP/1.1\r\n"
                    b"Host: store\r\n\r\n"
                )
                sock.recv(1024)  # headers + first body bytes
            finally:
                sock.close()

        deadline = time.monotonic() + 10.0
        while (
            svc.n_client_disconnects < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert svc.n_client_disconnects >= 1
        assert any(
            "client disconnect" in line for line in svc.log_lines
        )

        captured = capfd.readouterr()
        assert "Traceback" not in captured.err
        assert "BrokenPipeError" not in captured.err
        assert "ConnectionResetError" not in captured.err
