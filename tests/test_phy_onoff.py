"""Unit tests for repro.phy.onoff — per-device OOK over a cyclic shift."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import cyclic_shifted_upchirp
from repro.phy.demodulation import Demodulator
from repro.phy.onoff import OnOffKeyedTransmitter


class TestSymbols:
    def test_one_is_shifted_chirp(self, params):
        tx = OnOffKeyedTransmitter(params, cyclic_shift=33)
        assert np.allclose(
            tx.symbol(1), cyclic_shifted_upchirp(params, 33)
        )

    def test_zero_is_silence(self, params):
        tx = OnOffKeyedTransmitter(params, cyclic_shift=33)
        assert np.all(tx.symbol(0) == 0)

    def test_invalid_bit(self, params):
        tx = OnOffKeyedTransmitter(params, cyclic_shift=0)
        with pytest.raises(ConfigurationError):
            tx.symbol(2)

    def test_invalid_shift(self, params):
        with pytest.raises(ConfigurationError):
            OnOffKeyedTransmitter(params, cyclic_shift=params.n_shifts)

    def test_power_gain_scales_amplitude(self, params):
        tx = OnOffKeyedTransmitter(params, 5, power_gain_db=-10.0)
        power = np.mean(np.abs(tx.symbol(1)) ** 2)
        assert power == pytest.approx(0.1, rel=1e-6)

    def test_bitrate(self, params):
        tx = OnOffKeyedTransmitter(params, 5)
        assert tx.bitrate_bps == pytest.approx(976.5625)


class TestPreamble:
    def test_length(self, params):
        tx = OnOffKeyedTransmitter(params, 9)
        assert tx.preamble().size == 8 * params.n_samples

    def test_upchirps_carry_device_shift(self, params):
        tx = OnOffKeyedTransmitter(params, 41)
        demod = Demodulator(params)
        preamble = tx.preamble()
        for m in range(6):
            symbol = preamble[m * params.n_samples : (m + 1) * params.n_samples]
            assert demod.classic_decode(symbol) == 41

    def test_downchirps_are_conjugates(self, params):
        tx = OnOffKeyedTransmitter(params, 41)
        preamble = tx.preamble()
        n = params.n_samples
        up = preamble[:n]
        down = preamble[6 * n : 7 * n]
        assert np.allclose(down, np.conjugate(up))

    def test_custom_counts(self, params):
        tx = OnOffKeyedTransmitter(params, 0)
        assert tx.preamble(4, 1).size == 5 * params.n_samples


class TestPacket:
    def test_total_length(self, params):
        tx = OnOffKeyedTransmitter(params, 7)
        packet = tx.packet([1, 0, 1])
        assert packet.size == (8 + 3) * params.n_samples

    def test_payload_ook_pattern(self, params):
        tx = OnOffKeyedTransmitter(params, 7)
        payload = tx.payload([1, 0, 1])
        n = params.n_samples
        assert np.any(payload[:n] != 0)
        assert np.all(payload[n : 2 * n] == 0)
        assert np.any(payload[2 * n :] != 0)

    def test_empty_payload(self, params):
        tx = OnOffKeyedTransmitter(params, 7)
        assert tx.payload([]).size == 0

    def test_power_setter(self, params):
        tx = OnOffKeyedTransmitter(params, 7)
        tx.power_gain_db = -4.0
        assert tx.power_gain_db == -4.0
        power = np.mean(np.abs(tx.symbol(1)) ** 2)
        assert power == pytest.approx(10 ** (-0.4), rel=1e-6)
