"""CLI error-path pins for ``python -m repro.campaign``.

:func:`repro.campaign.cli.entrypoint` is the console boundary: every
:class:`~repro.errors.ReproError` — bad driver URL, malformed fault
plan, unusable spec — must become one actionable ``error:`` line on
stderr and exit code 2, never a traceback. :func:`main` keeps raising
typed errors for library callers (pinned in ``test_campaign.py``).
Run-level failures (failed points) stay exit code 1.
"""

import json

import pytest

from repro.campaign.cli import entrypoint, main
from repro.errors import ReproError


def run_entry(capsys, *argv):
    code = entrypoint(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBadStorageDriver:
    def test_unknown_scheme_exits_2(self, capsys, tmp_path):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--storage-driver",
            "ftp://host/bucket",
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "ftp" in err
        assert "Traceback" not in err

    def test_http_driver_without_bucket_exits_2(self, capsys):
        code, _, err = run_entry(
            capsys,
            "status",
            "--storage-driver",
            "http://127.0.0.1:9",
        )
        assert code == 2
        assert err.startswith("error: ")

    def test_posix_driver_without_store_exits_2(self, capsys):
        code, _, err = run_entry(
            capsys, "run", "--spec", "fig17", "--storage-driver", "posix"
        )
        assert code == 2
        assert "--store is required" in err

    def test_main_raises_for_library_callers(self):
        with pytest.raises(ReproError):
            main(
                [
                    "run",
                    "--spec",
                    "fig17",
                    "--storage-driver",
                    "ftp://host/bucket",
                ]
            )


class TestMalformedFaultPlans:
    def test_malformed_fault_plan_json_exits_2(self, capsys, tmp_path):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--fault-plan",
            '{"rules": [}',
        )
        assert code == 2
        assert "malformed fault plan" in err
        assert "Traceback" not in err

    def test_malformed_storage_fault_plan_exits_2(
        self, capsys, tmp_path
    ):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--storage-fault-plan",
            '{"rules": [{"op": }]}',
        )
        assert code == 2
        assert "malformed storage fault plan" in err

    def test_missing_fault_plan_file_exits_2(self, capsys, tmp_path):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--fault-plan",
            str(tmp_path / "nope.json"),
        )
        assert code == 2
        assert "malformed fault plan" in err

    def test_schema_violation_is_reported_not_tracebacked(
        self, capsys, tmp_path
    ):
        # Valid JSON, invalid rule schema: ConfigurationError is a
        # ReproError, so it still exits 2 with one line.
        plan = json.dumps(
            {"rules": [{"stage": "execute", "kind": "nonsense"}]}
        )
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--fault-plan",
            plan,
        )
        assert code == 2
        assert "fault kind" in err


class TestExportAndSpecErrors:
    def test_export_on_empty_store_is_clean(self, capsys, tmp_path):
        code, out, err = run_entry(
            capsys, "export", "--store", str(tmp_path / "empty")
        )
        assert code == 0
        assert json.loads(out) == []
        assert err == ""

    def test_export_empty_store_csv(self, capsys, tmp_path):
        code, out, _ = run_entry(
            capsys,
            "export",
            "--store",
            str(tmp_path / "empty"),
            "--format",
            "csv",
        )
        assert code == 0
        assert out.strip() == ""

    def test_unknown_spec_exits_2(self, capsys, tmp_path):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "not-a-preset",
            "--store",
            str(tmp_path / "store"),
        )
        assert code == 2
        assert "neither a preset" in err

    def test_preset_knobs_rejected_for_json_specs(
        self, capsys, tmp_path
    ):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text("{}")
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            str(spec_path),
            "--store",
            str(tmp_path / "store"),
            "--seed",
            "3",
        )
        assert code == 2
        assert "--seed" in err and "preset" in err

    def test_bad_service_url_exits_2(self, capsys):
        code, _, err = run_entry(
            capsys,
            "submit",
            "--service",
            "ftp://somewhere",
            "--spec",
            "fig17",
        )
        assert code == 2
        assert "http(s)" in err


CRASH_ALL_ATTEMPTS = json.dumps(
    {
        "rules": [
            {
                "stage": "execute",
                "kind": "crash",
                "match": {"n_devices": 2},
                "attempts": [1, 2],
            }
        ]
    }
)


class TestRunFailureExitCodes:
    def test_allow_partial_with_remaining_failures_exits_1(
        self, capsys, tmp_path
    ):
        code, out, _ = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--counts",
            "1,2",
            "--rounds",
            "1",
            "--engine",
            "analytic",
            "--no-leases",
            "--max-attempts",
            "2",
            "--allow-partial",
            "--fault-plan",
            CRASH_ALL_ATTEMPTS,
        )
        assert code == 1
        assert "1 failed" in out
        assert "[FAIL ]" in out

    def test_without_allow_partial_failure_exits_1_with_hint(
        self, capsys, tmp_path
    ):
        code, _, err = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            str(tmp_path / "store"),
            "--counts",
            "1,2",
            "--rounds",
            "1",
            "--engine",
            "analytic",
            "--no-leases",
            "--max-attempts",
            "2",
            "--fault-plan",
            CRASH_ALL_ATTEMPTS,
        )
        assert code == 1
        assert "FAILED" in err
        assert "--allow-partial" in err

    def test_allow_partial_then_clean_rerun_exits_0(
        self, capsys, tmp_path
    ):
        store = str(tmp_path / "store")
        first, _, _ = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            store,
            "--counts",
            "1,2",
            "--rounds",
            "1",
            "--engine",
            "analytic",
            "--no-leases",
            "--max-attempts",
            "2",
            "--allow-partial",
            "--fault-plan",
            CRASH_ALL_ATTEMPTS,
        )
        assert first == 1
        # Without the fault plan the failed point heals; the cached
        # point is not recomputed.
        second, out, _ = run_entry(
            capsys,
            "run",
            "--spec",
            "fig17",
            "--store",
            store,
            "--counts",
            "1,2",
            "--rounds",
            "1",
            "--engine",
            "analytic",
            "--no-leases",
        )
        assert second == 0
        assert "1 cached, 1 computed" in out
