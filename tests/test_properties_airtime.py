"""Property-based tests on air-time accounting and packet arithmetic."""

from hypothesis import given, settings, strategies as st

from repro.analysis.airtime import (
    lora_backscatter_poll_airtime_s,
    netscatter_link_layer_rate_bps,
    netscatter_round_airtime_s,
)
from repro.core.config import NetScatterConfig
from repro.phy.chirp import ChirpParams
from repro.phy.packet import PacketStructure

CONFIG = NetScatterConfig(n_association_shifts=0)
PARAMS = ChirpParams(bandwidth_hz=500e3, spreading_factor=9)


class TestAirtimeProperties:
    @given(st.integers(min_value=0, max_value=4096))
    def test_round_airtime_linear_in_query_bits(self, query_bits):
        airtime = netscatter_round_airtime_s(CONFIG, query_bits)
        base = netscatter_round_airtime_s(CONFIG, 0)
        assert abs(
            (airtime.total_s - base.total_s) - query_bits / 160e3
        ) < 1e-12

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=40, deadline=None)
    def test_link_layer_rate_proportional_to_devices(self, n_a, n_b):
        """With a shared round, the link-layer rate is exactly linear in
        the device count (the structural reason for the 62x gain)."""
        rate_a = netscatter_link_layer_rate_bps(CONFIG, n_a, 32)
        rate_b = netscatter_link_layer_rate_bps(CONFIG, n_b, 32)
        assert abs(rate_a / n_a - rate_b / n_b) < 1e-6

    @given(st.floats(min_value=100.0, max_value=50e3))
    def test_poll_airtime_decreases_with_bitrate(self, bitrate):
        slow = lora_backscatter_poll_airtime_s(
            bitrate, params=PARAMS
        )
        fast = lora_backscatter_poll_airtime_s(
            bitrate * 2.0, params=PARAMS
        )
        assert fast < slow

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=256),
    )
    def test_packet_symbol_arithmetic(self, n_up, n_down, payload):
        structure = PacketStructure(
            n_preamble_upchirps=n_up,
            n_preamble_downchirps=n_down,
            payload_bits=payload,
        )
        assert structure.n_symbols == n_up + n_down + payload
        assert structure.airtime_s(PARAMS) == (
            structure.n_symbols * PARAMS.symbol_duration_s
        )

    @given(st.integers(min_value=1, max_value=16))
    def test_config_capacity_times_bitrate_is_bandwidth_over_skip(
        self, skip
    ):
        """Invariant: max_devices * per-device bitrate == BW / skip for
        any guard spacing (no association shifts)."""
        config = NetScatterConfig(
            skip=skip, n_association_shifts=0
        )
        aggregate = config.max_devices * config.device_bitrate_bps
        expected = config.bandwidth_hz / skip
        # Integer division of slots can shave a fraction of one device.
        assert abs(aggregate - expected) <= config.device_bitrate_bps
