"""Tests for the quantised phase-accumulator chirp generator."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hardware.chirp_generator import (
    ChirpGenerator,
    decode_through_generator,
)
from repro.hardware.device import BackscatterDevice
from repro.protocol.messages import AssociationResponse, QueryMessage
from repro.hardware.envelope_detector import ask_modulate


class TestChirpGenerator:
    def test_square_wave_is_one_bit(self, params):
        generator = ChirpGenerator(params=params)
        wave = generator.square_wave_iq()
        assert set(np.unique(wave.real)) <= {-1.0, 0.0, 1.0}
        assert set(np.unique(wave.imag)) <= {-1.0, 0.0, 1.0}

    def test_every_shift_decodes(self, small_params):
        for shift in range(0, small_params.n_shifts, 7):
            assert decode_through_generator(small_params, shift) == shift

    def test_deployment_config_decodes(self, params):
        for shift in (0, 1, 255, 256, 511):
            assert decode_through_generator(params, shift) == shift

    def test_fidelity_near_square_wave_limit(self, params):
        """The 1-bit synthesis must correlate within ~2 dB of ideal —
        the margin that justifies the ideal-chirp model elsewhere."""
        generator = ChirpGenerator(params=params)
        for shift in (0, 100, 300):
            assert generator.fidelity_db(shift) > -2.0

    def test_more_accumulator_bits_not_worse(self, small_params):
        coarse = ChirpGenerator(params=small_params, acc_bits=8)
        fine = ChirpGenerator(params=small_params, acc_bits=24)
        assert fine.fidelity_db(5) >= coarse.fidelity_db(5) - 0.5

    def test_harmonic_levels(self, params):
        levels = ChirpGenerator(params=params).harmonic_levels_db()
        assert levels[3] == pytest.approx(-9.54, abs=0.05)
        assert levels[5] == pytest.approx(-13.98, abs=0.05)
        assert levels[5] < levels[3]

    def test_phase_track_monotone_modulo(self, small_params):
        generator = ChirpGenerator(params=small_params)
        phase = generator.phase_track()
        assert phase.size == small_params.n_samples * 8
        assert np.all(phase >= 0.0)
        assert np.all(phase < 2.0 * np.pi)

    def test_invalid_params(self, params):
        with pytest.raises(HardwareModelError):
            ChirpGenerator(params=params, acc_bits=2)
        with pytest.raises(HardwareModelError):
            ChirpGenerator(params=params, clock_multiplier=0)


class TestDeviceQueryReception:
    def test_end_to_end_query_parse(self, params, rng):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        query = QueryMessage(
            group_id=2,
            association=AssociationResponse(network_id=1, cyclic_shift=50),
        )
        envelope = ask_modulate(query.to_bits(), samples_per_bit=8)
        envelope = np.abs(
            envelope + rng.normal(scale=0.05, size=envelope.size)
        )
        parsed, rssi = device.receive_query_waveform(
            envelope, samples_per_bit=8, true_rssi_dbm=-30.0
        )
        assert parsed.group_id == 2
        assert parsed.association.cyclic_shift == 50
        assert rssi is not None

    def test_below_sensitivity_returns_none(self, params, rng):
        device = BackscatterDevice(device_id=1, params=params, rng=3)
        envelope = ask_modulate([1, 0] * 16, samples_per_bit=8)
        parsed, rssi = device.receive_query_waveform(
            envelope, samples_per_bit=8, true_rssi_dbm=-60.0
        )
        assert parsed is None and rssi is None
