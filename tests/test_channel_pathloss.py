"""Unit tests for repro.channel.pathloss."""

import pytest

from repro.channel.pathloss import (
    free_space_path_loss_db,
    indoor_path_loss_db,
    round_trip_backscatter_loss_db,
    round_trip_time_s,
    time_of_flight_s,
)
from repro.errors import LinkBudgetError


class TestFreeSpace:
    def test_known_value(self):
        # FSPL at 1 m, 900 MHz is ~31.5 dB.
        assert free_space_path_loss_db(1.0, 900e6) == pytest.approx(
            31.5, abs=0.2
        )

    def test_inverse_square(self):
        near = free_space_path_loss_db(10.0, 900e6)
        far = free_space_path_loss_db(20.0, 900e6)
        assert far - near == pytest.approx(6.02, abs=0.01)

    def test_frequency_scaling(self):
        low = free_space_path_loss_db(10.0, 900e6)
        high = free_space_path_loss_db(10.0, 1800e6)
        assert high - low == pytest.approx(6.02, abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(0.0, 900e6)
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(1.0, 0.0)


class TestIndoor:
    def test_reduces_to_reference_at_1m(self):
        assert indoor_path_loss_db(1.0, 900e6) == pytest.approx(
            free_space_path_loss_db(1.0, 900e6)
        )

    def test_exponent_rolloff(self):
        near = indoor_path_loss_db(10.0, 900e6, exponent=3.0)
        far = indoor_path_loss_db(100.0, 900e6, exponent=3.0)
        assert far - near == pytest.approx(30.0, abs=0.01)

    def test_walls_add_loss(self):
        clear = indoor_path_loss_db(10.0, 900e6, n_walls=0)
        walled = indoor_path_loss_db(10.0, 900e6, n_walls=3, wall_loss_db=5.0)
        assert walled - clear == pytest.approx(15.0)

    def test_below_reference_clamps_to_reference(self):
        assert indoor_path_loss_db(0.5, 900e6) == pytest.approx(
            free_space_path_loss_db(1.0, 900e6)
        )

    def test_invalid_walls(self):
        with pytest.raises(LinkBudgetError):
            indoor_path_loss_db(10.0, 900e6, n_walls=-1)


class TestRoundTrip:
    def test_doubles_one_way(self):
        one_way = indoor_path_loss_db(10.0, 900e6)
        round_trip = round_trip_backscatter_loss_db(
            10.0, 900e6, backscatter_insertion_loss_db=6.0
        )
        assert round_trip == pytest.approx(2 * one_way + 6.0)

    def test_insertion_loss_parameter(self):
        a = round_trip_backscatter_loss_db(5.0, 900e6, backscatter_insertion_loss_db=0.0)
        b = round_trip_backscatter_loss_db(5.0, 900e6, backscatter_insertion_loss_db=10.0)
        assert b - a == pytest.approx(10.0)


class TestTimeOfFlight:
    def test_paper_example(self):
        # Section 3.2.1: 100 m -> round trip 666 ns.
        assert round_trip_time_s(100.0) == pytest.approx(666e-9, rel=0.01)

    def test_one_way(self):
        assert time_of_flight_s(300.0) == pytest.approx(1e-6)

    def test_negative_rejected(self):
        with pytest.raises(LinkBudgetError):
            time_of_flight_s(-1.0)
