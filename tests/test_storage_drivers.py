"""Pluggable fault-tolerant storage drivers under the campaign store.

The load-bearing pins:

* **driver contract** — posix and memory drivers provide identical
  get/put-atomic/put-exclusive/replace/delete/list/exists/stat/rename
  semantics (atomic publication, exclusive create, visible-after-
  return), so the store and the lease protocol are backend-agnostic;
* **durability** — ``PosixDriver.put_atomic`` fsyncs both the file and
  the directory entry on commit, and temporaries never appear in
  listings or reads;
* **fault absorption** — transient driver errors (including torn
  writes that raise) heal inside ``RetryingDriver`` with bounded
  seeded-jitter backoff and zero recomputation; retry exhaustion
  escalates to ``PersistentStorageError`` and the runner degrades to
  read-only serving under ``allow_partial``;
* **torn-write sweep** — a silent torn chunk at every interesting
  offset is quarantined by integrity verification and the campaign
  converges byte-identical to a clean run;
* **acceptance** — two concurrent runners over ``FaultyDriver``
  (seeded transient errors, torn writes, one injected hang) converge
  to a manifest byte-identical to a single-shot clean ``PosixDriver``
  run with zero duplicated computations; the campaign behaves
  identically on ``MemoryDriver``.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.campaign.cli import main as campaign_cli
from repro.campaign.faults import (
    STORAGE_FAULT_PLAN_ENV,
    FaultPlan,
    StorageFaultPlan,
    StorageFaultRule,
)
from repro.campaign.leases import HeartbeatThread, LeaseManager
from repro.campaign.presets import fig17_campaign
from repro.campaign.runner import (
    EXEC_LOG_ENV,
    CampaignRunner,
    RetryPolicy,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.storage import (
    FaultyDriver,
    MemoryDriver,
    PosixDriver,
    PrefixDriver,
    RetryingDriver,
    StorageRetryPolicy,
    build_driver,
)
from repro.campaign.store import CampaignStore
from repro.errors import (
    ConfigurationError,
    PersistentStorageError,
    StorageMissingError,
    TransientStorageError,
)

#: Fast storage retry policy for tests (real backoffs, tiny delays).
FAST_STORAGE_RETRY = StorageRetryPolicy(
    max_attempts=5, base_delay_s=0.002, max_delay_s=0.01
)


def small_spec(counts=(1, 2), **overrides):
    kwargs = dict(
        rng=0, device_counts=counts, n_rounds=1, engine="analytic"
    )
    kwargs.update(overrides)
    return fig17_campaign(**kwargs)


def storage_plan(rules, seed=0):
    return StorageFaultPlan(
        rules=tuple(StorageFaultRule(**rule) for rule in rules),
        seed=seed,
    )


def make_driver(kind, tmp_path):
    if kind == "posix":
        return PosixDriver(tmp_path / "driver")
    return MemoryDriver()


@pytest.fixture(params=["posix", "memory", "http", "prefix-http"])
def driver(request, tmp_path):
    """Every backend through the same contract suite — the remote
    driver (bare and under a ``PrefixDriver``, the lease protocol's
    view of it) rides along against a per-test in-process server."""
    if request.param in ("http", "prefix-http"):
        from repro.campaign.objectstore import (
            HttpDriver,
            ObjectStoreService,
        )

        service = ObjectStoreService()
        service.start()
        request.addfinalizer(service.stop)
        http_driver = HttpDriver(service.url, timeout_s=5.0)
        if request.param == "prefix-http":
            return PrefixDriver(http_driver, "scoped/")
        return http_driver
    return make_driver(request.param, tmp_path)


class TestDriverContract:
    """Same observable semantics on every backend."""

    def test_get_missing_raises_missing(self, driver):
        with pytest.raises(StorageMissingError):
            driver.get("points/absent.json")
        assert not driver.exists("points/absent.json")

    def test_put_atomic_roundtrip_and_overwrite(self, driver):
        driver.put_atomic("points/a.json", b"one")
        assert driver.get("points/a.json") == b"one"
        driver.put_atomic("points/a.json", b"two")
        assert driver.get("points/a.json") == b"two"

    def test_put_exclusive_single_winner(self, driver):
        assert driver.put_exclusive("leases/a.lease", b"w1") is True
        assert driver.put_exclusive("leases/a.lease", b"w2") is False
        assert driver.get("leases/a.lease") == b"w1"

    def test_replace_then_read_back(self, driver):
        driver.put_exclusive("leases/a.lease", b"w1")
        driver.replace("leases/a.lease", b"w2")
        assert driver.get("leases/a.lease") == b"w2"

    def test_delete_is_idempotent(self, driver):
        driver.put_atomic("x", b"1")
        assert driver.delete("x") is True
        assert driver.delete("x") is False
        assert not driver.exists("x")

    def test_list_by_prefix_sorted(self, driver):
        driver.put_atomic("points/b.json", b"1")
        driver.put_atomic("points/a.json", b"1")
        driver.put_atomic("failures/c.json", b"1")
        assert driver.list("points/") == [
            "points/a.json",
            "points/b.json",
        ]
        assert "failures/c.json" in driver.list("")

    def test_stat_size_and_missing(self, driver):
        driver.put_atomic("x", b"12345")
        assert driver.stat("x").size == 5
        with pytest.raises(StorageMissingError):
            driver.stat("absent")

    def test_rename_moves_atomically(self, driver):
        driver.put_atomic("points/a.json", b"payload")
        driver.rename("points/a.json", "quarantine/a.json")
        assert not driver.exists("points/a.json")
        assert driver.get("quarantine/a.json") == b"payload"
        with pytest.raises(StorageMissingError):
            driver.rename("points/a.json", "quarantine/b.json")

    @pytest.mark.parametrize(
        "key", ["/abs", "a/../b", "./x", "", "a\\b"]
    )
    def test_traversal_keys_rejected(self, driver, key):
        with pytest.raises(ConfigurationError):
            driver.put_atomic(key, b"x")

    def test_stats_count_operations(self, driver):
        driver.put_atomic("x", b"abc")
        driver.get("x")
        stats = driver.stats()
        assert stats["ops"]["put_atomic"] == 1
        assert stats["ops"]["get"] == 1
        assert stats["bytes_written"] == 3
        assert stats["bytes_read"] == 3


class TestPosixDurability:
    def test_temporaries_never_listed_or_read(self, tmp_path):
        posix = PosixDriver(tmp_path)
        posix.put_atomic("points/a.json", b"1")
        (tmp_path / ".tmp").mkdir(exist_ok=True)
        (tmp_path / ".tmp" / "junk.tmp").write_bytes(b"partial")
        assert posix.list("") == ["points/a.json"]

    def test_put_atomic_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        PosixDriver(tmp_path).put_atomic("points/a.json", b"1")
        # One fsync for the tmp file's contents, one for the
        # destination directory entry after the rename.
        assert len(synced) >= 2

    def test_fsync_false_skips_syncs(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        PosixDriver(tmp_path, fsync=False).put_atomic("a", b"1")
        assert synced == []

    def test_exclusive_create_also_synced(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        PosixDriver(tmp_path).put_exclusive("leases/a.lease", b"1")
        assert len(synced) >= 2


class TestPrefixDriver:
    def test_namespaces_keys(self):
        inner = MemoryDriver()
        scoped = PrefixDriver(inner, "leases/")
        scoped.put_exclusive("a.lease", b"1")
        assert inner.list("") == ["leases/a.lease"]
        assert scoped.list("") == ["a.lease"]
        scoped.replace("a.lease", b"2")
        assert scoped.get("a.lease") == b"2"
        assert scoped.delete("a.lease") is True
        assert inner.list("") == []


class TestFaultyDriver:
    def test_error_fires_on_selected_calls_only(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan([{"kind": "error", "op": "get", "calls": [2]}]),
        )
        faulty.put_atomic("x", b"1")
        assert faulty.get("x") == b"1"  # call 1: clean
        with pytest.raises(TransientStorageError):
            faulty.get("x")  # call 2: injected
        assert faulty.get("x") == b"1"  # call 3: clean again
        assert faulty.n_injected == 1

    def test_key_prefix_scopes_injection(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [
                    {
                        "kind": "error",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "calls": [1],
                    }
                ]
            ),
        )
        faulty.put_atomic("manifest.json", b"ok")  # not selected
        with pytest.raises(TransientStorageError):
            faulty.put_atomic("points/a.json", b"boom")

    def test_probabilistic_rule_is_seeded_and_capped(self):
        rules = [{"kind": "error", "op": "get", "p": 0.5, "max_fires": 2}]

        def run_sequence():
            faulty = FaultyDriver(
                MemoryDriver(), storage_plan(rules, seed=7)
            )
            faulty.inner.put_atomic("x", b"1")
            outcomes = []
            for _ in range(12):
                try:
                    faulty.get("x")
                    outcomes.append("ok")
                except TransientStorageError:
                    outcomes.append("err")
            return outcomes

        first, second = run_sequence(), run_sequence()
        assert first == second  # seeded: reproducible
        assert first.count("err") == 2  # max_fires cap

    def test_torn_write_lands_prefix_and_raises(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "calls": [1],
                        "offset": 3,
                    }
                ]
            ),
        )
        with pytest.raises(TransientStorageError):
            faulty.put_atomic("points/a.json", b"0123456789")
        # The partial payload landed through the raw backend.
        assert faulty.inner.get("points/a.json") == b"012"
        # The retry (call 2) commits the full payload.
        faulty.put_atomic("points/a.json", b"0123456789")
        assert faulty.get("points/a.json") == b"0123456789"

    def test_silent_torn_write_reports_success(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "calls": [1],
                        "offset": 0,
                        "silent": True,
                    }
                ]
            ),
        )
        faulty.put_atomic("points/a.json", b"full")  # no raise
        assert faulty.inner.get("points/a.json") == b""

    def test_hang_delays_then_succeeds(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [
                    {
                        "kind": "hang",
                        "op": "get",
                        "calls": [1],
                        "hang_s": 0.1,
                    }
                ]
            ),
        )
        faulty.put_atomic("x", b"1")
        started = time.perf_counter()
        assert faulty.get("x") == b"1"
        assert time.perf_counter() - started >= 0.1

    def test_persistent_kind_raises_persistent(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [{"kind": "persistent", "op": "put_atomic", "calls": [1]}]
            ),
        )
        with pytest.raises(PersistentStorageError):
            faulty.put_atomic("x", b"1")

    def test_plan_round_trips_through_json(self):
        plan = storage_plan(
            [
                {"kind": "torn", "op": "replace", "offset": 2},
                {"kind": "error", "p": 0.25, "max_fires": 3},
            ],
            seed=9,
        )
        assert StorageFaultPlan.from_json(
            json.dumps(plan.to_dict())
        ) == plan

    def test_invalid_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageFaultRule(kind="torn", op="get")
        with pytest.raises(ConfigurationError):
            StorageFaultRule(kind="error", calls=(1,), p=0.5)
        with pytest.raises(ConfigurationError):
            StorageFaultRule(kind="error", p=1.5)
        with pytest.raises(ConfigurationError):
            StorageFaultRule(kind="nope")

    def test_from_env_inline_and_unset(self, monkeypatch):
        monkeypatch.delenv(STORAGE_FAULT_PLAN_ENV, raising=False)
        assert StorageFaultPlan.from_env() is None
        monkeypatch.setenv(
            STORAGE_FAULT_PLAN_ENV,
            json.dumps(storage_plan([{"kind": "error"}]).to_dict()),
        )
        plan = StorageFaultPlan.from_env()
        assert plan is not None and plan.rules[0].kind == "error"


class TestRetryingDriver:
    def test_transient_errors_heal_within_budget(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [{"kind": "error", "op": "get", "calls": [1, 2]}]
            ),
        )
        retrying = RetryingDriver(faulty, FAST_STORAGE_RETRY)
        retrying.put_atomic("x", b"1")
        assert retrying.get("x") == b"1"  # healed after 2 retries
        assert retrying.n_retries == 2

    def test_exhaustion_escalates_to_persistent(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan([{"kind": "error", "op": "get", "p": 1.0}]),
        )
        retrying = RetryingDriver(
            faulty,
            StorageRetryPolicy(max_attempts=3, base_delay_s=0.001),
        )
        faulty.inner.put_atomic("x", b"1")
        with pytest.raises(PersistentStorageError):
            retrying.get("x")

    def test_missing_and_persistent_pass_through_unretried(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [{"kind": "persistent", "op": "put_atomic", "calls": [1]}]
            ),
        )
        retrying = RetryingDriver(faulty, FAST_STORAGE_RETRY)
        with pytest.raises(StorageMissingError):
            retrying.get("absent")
        with pytest.raises(PersistentStorageError):
            retrying.put_atomic("x", b"1")
        assert retrying.n_retries == 0

    def test_backoff_is_deterministic_and_bounded(self):
        policy = StorageRetryPolicy(
            max_attempts=4, base_delay_s=0.01, max_delay_s=0.05
        )
        a = policy.backoff_s("get", "points/x.json", 1)
        assert a == policy.backoff_s("get", "points/x.json", 1)
        assert a != policy.backoff_s("get", "points/y.json", 1)
        for attempt in range(1, 10):
            assert policy.backoff_s("get", "k", attempt) <= 0.05 * 1.25

    def test_op_timeout_turns_hang_into_retry(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [
                    {
                        "kind": "hang",
                        "op": "get",
                        "calls": [1],
                        "hang_s": 5.0,
                    }
                ]
            ),
        )
        retrying = RetryingDriver(
            faulty,
            StorageRetryPolicy(
                max_attempts=3, base_delay_s=0.001, op_timeout_s=0.05
            ),
        )
        faulty.inner.put_atomic("x", b"1")
        started = time.perf_counter()
        assert retrying.get("x") == b"1"  # timed out once, then clean
        assert time.perf_counter() - started < 2.0
        assert retrying.n_retries == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": 0.0, "base_delay_s": 1.0},
            {"jitter": 2.0},
            {"op_timeout_s": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StorageRetryPolicy(**kwargs)


class TestBuildDriver:
    def test_names_and_fault_plan_wrapping(self, tmp_path):
        assert isinstance(
            build_driver("posix", tmp_path / "s"), PosixDriver
        )
        assert isinstance(build_driver("memory", tmp_path), MemoryDriver)
        faulty = build_driver("faulty", tmp_path / "s")
        assert isinstance(faulty, FaultyDriver)
        wrapped = build_driver(
            "posix",
            tmp_path / "s",
            storage_fault_plan=storage_plan([{"kind": "error"}]),
        )
        assert isinstance(wrapped, FaultyDriver)
        with pytest.raises(ConfigurationError):
            build_driver("s3", tmp_path)

    def test_url_specs_parse_and_round_trip(self, tmp_path):
        from repro.campaign.storage import parse_driver_spec

        posix = build_driver(f"posix://{tmp_path / 'via-url'}", None)
        assert isinstance(posix, PosixDriver)
        assert posix.root == tmp_path / "via-url"
        # spec -> build_driver -> .spec is a fixed point.
        again = build_driver(posix.spec, None)
        assert again.root == posix.root and again.spec == posix.spec

        memory = build_driver("memory://", tmp_path)
        assert isinstance(memory, MemoryDriver)
        assert memory.spec == "memory://"
        assert parse_driver_spec(memory.spec) == {"scheme": "memory"}

        parsed = parse_driver_spec("http://127.0.0.1:8123/campaign")
        assert parsed["scheme"] == "http"
        assert parsed["bucket"] == "campaign"
        assert (
            parse_driver_spec(parsed["url"]) == parsed
        )  # round trip through the canonical url

        # Legacy bare names keep parsing (backward compatibility).
        for name in ("posix", "memory", "faulty"):
            assert parse_driver_spec(name) == {"scheme": name}

    def test_http_spec_builds_breaker_wrapped_driver(self):
        from repro.campaign.objectstore import (
            CircuitBreakerDriver,
            HttpDriver,
        )

        driver = build_driver("http://127.0.0.1:1/campaign", None)
        assert isinstance(driver, CircuitBreakerDriver)
        assert isinstance(driver.inner, HttpDriver)
        assert driver.spec == "http://127.0.0.1:1/campaign"
        rebuilt = build_driver(driver.spec, None)
        assert rebuilt.spec == driver.spec

    @pytest.mark.parametrize(
        "bad",
        [
            "memory:///with/path",
            "posix://host/path",
            "posix://",
            "http://127.0.0.1:8123",
            "http://127.0.0.1:8123/a/b",
            "ftp://host/bucket",
        ],
    )
    def test_malformed_url_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            build_driver(bad, None)

    def test_posix_spec_without_root_rejected(self):
        # Rootless specs (memory://, http://) omit the root; a bare
        # posix driver still needs one, loudly.
        with pytest.raises(ConfigurationError):
            build_driver("posix")


class TestHeartbeatResilience:
    """Satellite: the heartbeat survives transient I/O faults."""

    def test_heartbeat_retries_through_transient_faults(self, caplog):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [{"kind": "error", "op": "replace", "calls": [1, 2]}]
            ),
        )
        leases = LeaseManager(faulty, owner="w1", ttl_s=0.6)
        assert leases.acquire("h1")
        with caplog.at_level("WARNING", logger="repro.campaign.leases"):
            with HeartbeatThread(leases) as heartbeat:
                # Two ticks fail on injected faults, later ticks heal;
                # the lease deadline must keep moving forward.
                deadline = time.monotonic() + 5.0
                renewed = False
                while time.monotonic() < deadline:
                    holder = leases.holder("h1")
                    if holder is not None and int(holder["renewals"]) >= 1:
                        renewed = True
                        break
                    time.sleep(0.05)
        assert renewed, "heartbeat never recovered from transient faults"
        assert not heartbeat.gave_up
        # Logged once, not once per failing tick.
        warnings = [
            r for r in caplog.records if "storage fault" in r.message
        ]
        assert len(warnings) == 1

    def test_heartbeat_gives_up_after_ttl_of_failure(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan([{"kind": "error", "op": "replace", "p": 1.0}]),
        )
        leases = LeaseManager(faulty, owner="w1", ttl_s=0.5)
        assert leases.acquire("h1")
        with HeartbeatThread(leases) as heartbeat:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not heartbeat.gave_up:
                time.sleep(0.05)
        assert heartbeat.gave_up

    def test_claim_lost_on_storage_fault_not_corrupted(self):
        faulty = FaultyDriver(
            MemoryDriver(),
            storage_plan(
                [{"kind": "error", "op": "put_exclusive", "calls": [1]}]
            ),
        )
        leases = LeaseManager(faulty, owner="w1", ttl_s=5.0)
        assert leases.acquire("h1") is False  # fault → claim lost
        assert leases.acquire("h1") is True  # clean retry wins
        assert leases.holder("h1")["owner"] == "w1"


def _faulty_store(root, plan, retry=FAST_STORAGE_RETRY):
    return CampaignStore(
        driver=FaultyDriver(PosixDriver(root), plan),
        fault_plan=FaultPlan(),
        retry=retry,
    )


class TestTornWriteSweep:
    """Satellite: truncate puts at every interesting offset and assert
    the store heals/quarantines and the campaign converges
    byte-identical to a clean run."""

    # 0 = empty file, 1 = one byte, 40 = mid-JSON header, large =
    # everything but the closing brace/newline.
    OFFSETS = (0, 1, 40, 400)

    @pytest.mark.parametrize("offset", OFFSETS)
    def test_silent_torn_chunk_heals_on_rerun(self, tmp_path, offset):
        spec = small_spec(counts=(1,))
        clean_root = tmp_path / "clean"
        CampaignRunner(
            store=CampaignStore(clean_root, fault_plan=FaultPlan()),
            use_leases=False,
        ).run(spec)

        root = tmp_path / "store"
        torn_store = _faulty_store(
            root,
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "calls": [1],
                        "offset": offset,
                        "silent": True,
                    }
                ]
            ),
        )
        CampaignRunner(store=torn_store, use_leases=False).run(spec)

        # The torn chunk landed "successfully"; a clean rerun must
        # quarantine it, recompute, and converge byte-identically.
        healed = CampaignStore(root, fault_plan=FaultPlan())
        CampaignRunner(store=healed, use_leases=False).run(spec)
        assert list(healed.quarantined().values()) == ["undecodable-json"]
        healed.manifest()
        clean_store = CampaignStore(clean_root, fault_plan=FaultPlan())
        clean_store.manifest()
        assert (root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

    def test_silent_torn_npz_payload_quarantined(self, tmp_path):
        spec = small_spec(counts=(1,))
        point = next(iter(spec.points()))
        root = tmp_path / "store"
        store = _faulty_store(
            root,
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "key_prefix": f"points/{point.content_hash()}.npz",
                        "calls": [1],
                        "offset": 10,
                        "silent": True,
                    }
                ]
            ),
        )
        import numpy as np

        store.save(
            point,
            {"m": 1.0},
            {"backend": "x"},
            arrays={"a": np.arange(4)},
        )
        assert store.has(point) is False  # quarantined, not served
        assert store.quarantined() == {
            point.content_hash(): "torn-array-payload"
        }

    def test_raised_torn_write_heals_without_recompute(
        self, tmp_path, monkeypatch
    ):
        """Pre-rename torn write (the crash-mid-commit case) raises:
        driver-level retry heals it with zero recomputation."""
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        spec = small_spec(counts=(1, 2))
        root = tmp_path / "store"
        store = _faulty_store(
            root,
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "calls": [1, 2],
                    }
                ]
            ),
        )
        run = CampaignRunner(store=store, use_leases=False).run(spec)
        assert run.n_computed == 2 and not run.storage_degraded
        assert store.quarantined() == {}
        # Zero duplicated computations: the torn attempts were healed
        # below the execution layer.
        logged = exec_log.read_text().split()
        hashes = [p.content_hash() for p in spec.points()]
        assert sorted(logged[::2]) == sorted(hashes)


class TestReadOnlyDegradation:
    """Persistent write failure degrades to read-only serving."""

    def _dead_writes_store(self, root):
        return _faulty_store(
            root,
            storage_plan(
                [
                    {
                        "kind": "persistent",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "p": 1.0,
                    }
                ]
            ),
        )

    def test_allow_partial_computes_without_persisting(
        self, tmp_path, caplog
    ):
        spec = small_spec(counts=(1, 2))
        store = self._dead_writes_store(tmp_path / "store")
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            run = CampaignRunner(
                store=store, allow_partial=True
            ).run(spec)
        assert run.storage_degraded
        assert len(run.results) == 2 and run.failures == []
        assert len(store) == 0  # nothing persisted
        assert any("read-only" in r.message for r in caplog.records)

    def test_without_allow_partial_surfaces_the_fault(self, tmp_path):
        spec = small_spec(counts=(1,))
        store = self._dead_writes_store(tmp_path / "store")
        with pytest.raises(PersistentStorageError):
            CampaignRunner(store=store, allow_partial=False).run(spec)

    def test_degraded_run_still_serves_cached_points(self, tmp_path):
        spec = small_spec(counts=(1, 2))
        root = tmp_path / "store"
        CampaignRunner(
            store=CampaignStore(root, fault_plan=FaultPlan()),
            use_leases=False,
        ).run(spec)
        # Reads work, writes are dead: cached points still serve.
        run = CampaignRunner(
            store=self._dead_writes_store(root), allow_partial=True
        ).run(spec)
        assert run.n_cached == 2 and not run.storage_degraded


class TestMemoryDriverCampaign:
    """The campaign behaves identically on the in-process backend."""

    def test_end_to_end_with_caching_and_manifest_parity(self, tmp_path):
        spec = small_spec(counts=(1, 2))
        memory_store = CampaignStore(
            driver=MemoryDriver(), fault_plan=FaultPlan()
        )
        first = CampaignRunner(store=memory_store).run(spec)
        assert first.n_computed == 2
        second = CampaignRunner(store=memory_store).run(spec)
        assert second.n_cached == 2 and second.n_computed == 0
        assert memory_store.active_leases() == []
        assert memory_store.failures() == []

        # Manifest bytes equal the posix store's for the same points.
        posix_root = tmp_path / "posix"
        posix_store = CampaignStore(posix_root, fault_plan=FaultPlan())
        CampaignRunner(store=posix_store).run(spec)
        memory_store.manifest()
        posix_store.manifest()
        assert memory_store.driver.get("manifest.json") == (
            posix_root / "manifest.json"
        ).read_bytes()

    def test_two_threaded_runners_partition_one_memory_store(
        self, tmp_path, monkeypatch
    ):
        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]
        store = CampaignStore(
            driver=MemoryDriver(), fault_plan=FaultPlan()
        )

        def run_one(owner):
            CampaignRunner(
                store=store,
                owner=owner,
                lease_ttl_s=5.0,
                wait_poll_s=0.02,
                fault_plan=FaultPlan(),
            ).run(spec)

        threads = [
            threading.Thread(target=run_one, args=(name,))
            for name in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert sorted(store.manifest()["points"]) == sorted(hashes)
        logged = [
            line.split()[0]
            for line in exec_log.read_text().splitlines()
            if line.strip()
        ]
        assert sorted(logged) == sorted(hashes)

    def test_store_status_reports_driver_stats(self):
        store = CampaignStore(
            driver=MemoryDriver(), fault_plan=FaultPlan()
        )
        status = store.status()
        assert status["storage"]["driver"].startswith("retrying(")
        # Wrapper stats nest per layer instead of merging by overwrite.
        assert "n_retries" in status["storage"]
        assert "ops" in status["storage"]["inner"]

    def test_stacked_wrapper_stats_nest_without_collisions(self):
        # retrying(faulty(posix-or-memory)): every layer's counters
        # must be reported under its own level, never clobbered.
        inner = MemoryDriver()
        faulty = FaultyDriver(
            inner,
            storage_plan(
                [{"kind": "error", "op": "get", "calls": [1]}]
            ),
        )
        retrying = RetryingDriver(faulty, FAST_STORAGE_RETRY)
        retrying.put_atomic("points/a.json", b"x")
        assert retrying.get("points/a.json") == b"x"  # heals one error
        stats = retrying.stats()
        assert stats["driver"] == "retrying(faulty(memory))"
        assert stats["n_retries"] == 1
        layer = stats["inner"]
        assert layer["driver"] == "faulty(memory)"
        assert layer["n_injected_faults"] == 1
        base = layer["inner"]
        assert base["driver"] == "memory"
        assert base["ops"]["put_atomic"] == 1
        # The injected error never reached the base driver: one real
        # get, one injected failure absorbed a layer above.
        assert base["ops"]["get"] == 1


def _child_run_faulty(root, spec_dict, plan_json, owner, lease_ttl_s):
    """One campaign over FaultyDriver(Posix) in a forked child."""
    store = CampaignStore(
        driver=FaultyDriver(
            PosixDriver(root), StorageFaultPlan.from_json(plan_json)
        ),
        fault_plan=FaultPlan(),
        retry=StorageRetryPolicy(
            max_attempts=6, base_delay_s=0.005, max_delay_s=0.03
        ),
    )
    CampaignRunner(
        store=store,
        workers=None,
        fault_plan=FaultPlan(),
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
        owner=owner,
        lease_ttl_s=lease_ttl_s,
        wait_poll_s=0.05,
    ).run(CampaignSpec.from_dict(spec_dict))


class TestFaultyDriverAcceptance:
    """The PR's acceptance bar: two concurrent runners over
    ``FaultyDriver`` (seeded transient I/O errors, torn writes, one
    injected hang) converge to a manifest byte-identical to a
    single-shot clean ``PosixDriver`` run, with zero duplicated
    computations."""

    def test_two_runners_over_faulty_driver_converge(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(counts=(1, 2, 3, 4))
        hashes = [p.content_hash() for p in spec.points()]
        store_root = tmp_path / "store"

        clean_root = tmp_path / "clean"
        CampaignRunner(
            store=CampaignStore(clean_root, fault_plan=FaultPlan()),
            use_leases=False,
        ).run(spec)
        CampaignStore(clean_root, fault_plan=FaultPlan()).manifest()

        exec_log = tmp_path / "exec.log"
        monkeypatch.setenv(EXEC_LOG_ENV, str(exec_log))

        # w1: torn chunk writes (raising — driver retry heals them)
        # plus one injected storage hang; w2: seeded transient errors
        # across reads and lease claims. All within the retry budget,
        # so no attempt ever escalates or recomputes.
        w1_plan = json.dumps(
            storage_plan(
                [
                    {
                        "kind": "torn",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "calls": [1, 3],
                    },
                    {
                        "kind": "hang",
                        "op": "get",
                        "calls": [2],
                        "hang_s": 0.2,
                    },
                ],
                seed=1,
            ).to_dict()
        )
        w2_plan = json.dumps(
            storage_plan(
                [
                    {
                        "kind": "error",
                        "op": "get",
                        "p": 0.1,
                        "max_fires": 4,
                    },
                    {
                        "kind": "error",
                        "op": "put_exclusive",
                        "key_prefix": "leases/",
                        "calls": [2],
                    },
                ],
                seed=2,
            ).to_dict()
        )

        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_child_run_faulty,
                args=(
                    str(store_root),
                    spec.to_dict(),
                    plan,
                    name,
                    5.0,
                ),
            )
            for name, plan in (("w1", w1_plan), ("w2", w2_plan))
        ]
        try:
            for process in workers:
                process.start()
            for process in workers:
                process.join(timeout=120.0)
                assert process.exitcode == 0
        finally:
            for process in workers:
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)

        store = CampaignStore(store_root, fault_plan=FaultPlan())
        assert sorted(store.manifest()["points"]) == sorted(hashes)
        assert store.active_leases() == []
        assert store.failures() == []
        assert store.quarantined() == {}

        # Byte-identical to the clean single-shot posix manifest.
        assert (store_root / "manifest.json").read_bytes() == (
            clean_root / "manifest.json"
        ).read_bytes()

        # Zero duplicated computations despite every injected fault.
        logged = [
            line.split()[0]
            for line in exec_log.read_text().splitlines()
            if line.strip()
        ]
        assert sorted(logged) == sorted(hashes)
        assert len(logged) == len(set(logged))


class TestCliStorageFlags:
    def test_run_on_memory_driver(self, tmp_path, capsys):
        code = campaign_cli(
            [
                "run",
                "--spec",
                "fig17",
                "--counts",
                "1",
                "--rounds",
                "1",
                "--store",
                str(tmp_path / "mem"),
                "--storage-driver",
                "memory",
                "--no-leases",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 points" in out and "memory" in out

    def test_run_with_storage_fault_plan_heals(self, tmp_path, capsys):
        plan = json.dumps(
            storage_plan(
                [
                    {
                        "kind": "error",
                        "op": "put_atomic",
                        "key_prefix": "points/",
                        "calls": [1],
                    }
                ]
            ).to_dict()
        )
        code = campaign_cli(
            [
                "run",
                "--spec",
                "fig17",
                "--counts",
                "1",
                "--rounds",
                "1",
                "--store",
                str(tmp_path / "store"),
                "--storage-driver",
                "faulty",
                "--storage-fault-plan",
                plan,
                "--no-leases",
            ]
        )
        assert code == 0
        store = CampaignStore(tmp_path / "store", fault_plan=FaultPlan())
        assert len(store) == 1

    def test_status_json_is_one_machine_readable_line(
        self, tmp_path, capsys
    ):
        spec = small_spec(counts=(1,))
        CampaignRunner(
            store=CampaignStore(
                tmp_path / "store", fault_plan=FaultPlan()
            ),
            use_leases=False,
        ).run(spec)
        code = campaign_cli(
            ["status", "--store", str(tmp_path / "store"), "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert len(out.strip().splitlines()) == 1
        status = json.loads(out)
        assert status["n_points"] == 1
        assert status["storage"]["driver"] == "retrying(posix)"
