"""Unit tests for repro.core.dcss — distributed CSS frame composition."""

import numpy as np
import pytest

from repro.core.dcss import (
    DeviceTransmission,
    compose_frame,
    compose_preamble_and_payload_symbols,
    compose_round_matrix,
    compose_symbol,
    ideal_aggregate_power,
)
from repro.errors import ConfigurationError
from repro.phy.chirp import cyclic_shifted_upchirp, downchirp


class TestDeviceTransmission:
    def test_delay_moves_peak_down(self, params):
        tx = DeviceTransmission(shift=0, bits=[1], delay_s=2e-6)
        # 2 us at 500 kHz: one bin, downward (the window sees an earlier
        # slice of a late chirp).
        assert tx.bin_offset(params) == pytest.approx(-1.0)

    def test_cfo_moves_peak_up(self, params):
        tx = DeviceTransmission(shift=0, bits=[1], cfo_hz=976.5625)
        assert tx.bin_offset(params) == pytest.approx(1.0)

    def test_no_impairments_zero_offset(self, params):
        tx = DeviceTransmission(shift=5, bits=[1])
        assert tx.bin_offset(params) == 0.0


class TestComposeSymbol:
    def test_single_device_matches_shifted_chirp(self, params):
        tx = DeviceTransmission(shift=33, bits=[1], phase_rad=0.0)
        symbol = compose_symbol(params, [tx], 0, random_phases=False)
        expected = cyclic_shifted_upchirp(params, 33)
        # Equal up to the quadratic phase constant of the cyclic shift.
        despread_a = symbol * downchirp(params)
        despread_b = np.asarray(expected) * downchirp(params)
        spec_a = np.abs(np.fft.fft(despread_a))
        spec_b = np.abs(np.fft.fft(despread_b))
        assert np.argmax(spec_a) == np.argmax(spec_b) == 33
        assert np.allclose(spec_a, spec_b, atol=1e-6)

    def test_zero_bit_is_silent(self, params):
        tx = DeviceTransmission(shift=33, bits=[0])
        symbol = compose_symbol(params, [tx], 0)
        assert np.allclose(symbol, 0.0)

    def test_superposition(self, params, rng):
        txs = [
            DeviceTransmission(shift=10, bits=[1], phase_rad=0.0),
            DeviceTransmission(shift=40, bits=[1], phase_rad=0.0),
        ]
        symbol = compose_symbol(params, txs, 0, random_phases=False)
        spectrum = np.abs(
            np.fft.fft(symbol * downchirp(params))
        )
        peaks = set(np.argsort(spectrum)[-2:].tolist())
        assert peaks == {10, 40}

    def test_symbol_index_bounds(self, params):
        tx = DeviceTransmission(shift=0, bits=[1])
        with pytest.raises(ConfigurationError):
            compose_symbol(params, [tx], 1)

    def test_gain_scales_peak(self, params):
        strong = compose_symbol(
            params,
            [DeviceTransmission(shift=5, bits=[1], power_gain_db=0.0)],
            0,
            random_phases=False,
        )
        weak = compose_symbol(
            params,
            [DeviceTransmission(shift=5, bits=[1], power_gain_db=-20.0)],
            0,
            random_phases=False,
        )
        ratio = np.max(np.abs(np.fft.fft(strong * downchirp(params)))) / np.max(
            np.abs(np.fft.fft(weak * downchirp(params)))
        )
        assert ratio == pytest.approx(10.0, rel=1e-6)


class TestComposeFastFrame:
    def test_symbol_count(self, params, rng):
        txs = [DeviceTransmission(shift=10, bits=[1, 0, 1])]
        symbols = compose_preamble_and_payload_symbols(params, txs, rng=rng)
        assert len(symbols) == 6 + 3

    def test_unequal_payloads_rejected(self, params, rng):
        txs = [
            DeviceTransmission(shift=10, bits=[1, 0]),
            DeviceTransmission(shift=20, bits=[1]),
        ]
        with pytest.raises(ConfigurationError):
            compose_preamble_and_payload_symbols(params, txs, rng=rng)


class TestComposeWaveformFrame:
    def test_frame_length_with_padding(self, params, rng):
        txs = [DeviceTransmission(shift=10, bits=[1, 0])]
        frame = compose_frame(
            params,
            txs,
            leading_silence_samples=100,
            trailing_silence_samples=50,
            rng=rng,
        )
        assert frame.size == 100 + (8 + 2) * params.n_samples + 50

    def test_silence_regions_empty(self, params, rng):
        txs = [DeviceTransmission(shift=10, bits=[1])]
        frame = compose_frame(
            params, txs, leading_silence_samples=64, rng=rng
        )
        assert np.allclose(frame[:64], 0.0)

    def test_delay_moves_energy(self, params, rng):
        """A delayed device's dechirped peak shifts by delay * BW bins
        (downward: the fixed window sees an earlier slice of the chirp)."""
        from repro.phy.demodulation import Demodulator

        delay_s = 4e-6  # 2 bins at 500 kHz
        txs = [DeviceTransmission(shift=100, bits=[1], delay_s=delay_s)]
        frame = compose_frame(params, txs, rng=rng)
        demod = Demodulator(params)
        # First preamble symbol window (no sync; fixed position).
        result = demod.dechirp(frame[: params.n_samples])
        assert result.peak_bin() == pytest.approx(98.0, abs=0.3)


class TestComposeRoundMatrix:
    def test_matches_per_symbol_composition(self, params):
        bins = np.array([10.0, 40.25])
        amps = np.array([1.0, 0.5])
        phases = np.array([0.3, 1.1])
        bit_matrix = np.array([[1, 1], [1, 0], [0, 1]])
        fast = compose_round_matrix(params, bins, amps, phases, bit_matrix)
        cfo_per_bin = params.bandwidth_hz / params.n_samples
        for s in range(3):
            txs = [
                DeviceTransmission(
                    shift=0,
                    bits=[int(bit_matrix[s, d])],
                    power_gain_db=20 * np.log10(amps[d]),
                    cfo_hz=bins[d] * cfo_per_bin,
                    phase_rad=phases[d],
                )
                for d in range(2)
            ]
            slow = compose_symbol(params, txs, 0, random_phases=False)
            assert np.allclose(fast[s], slow, atol=1e-9)

    def test_shape(self, params):
        out = compose_round_matrix(
            params,
            np.array([1.0]),
            np.array([1.0]),
            np.array([0.0]),
            np.ones((5, 1)),
        )
        assert out.shape == (5, params.n_samples)

    def test_misaligned_arrays_rejected(self, params):
        with pytest.raises(ConfigurationError):
            compose_round_matrix(
                params,
                np.array([1.0, 2.0]),
                np.array([1.0]),
                np.array([0.0, 0.0]),
                np.ones((2, 2)),
            )

    def test_bad_bit_matrix_rejected(self, params):
        with pytest.raises(ConfigurationError):
            compose_round_matrix(
                params,
                np.array([1.0]),
                np.array([1.0]),
                np.array([0.0]),
                np.ones((4, 2)),
            )


class TestAggregatePower:
    def test_sums_linear_power(self):
        txs = [
            DeviceTransmission(shift=0, bits=[1], power_gain_db=0.0),
            DeviceTransmission(shift=2, bits=[1], power_gain_db=-10.0),
        ]
        assert ideal_aggregate_power(txs) == pytest.approx(1.1)
