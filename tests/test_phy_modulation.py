"""Unit tests for repro.phy.modulation — classic LoRa-style CSS."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import ConfigurationError, DecodingError
from repro.phy.modulation import CssDemodulator, CssModulator
from repro.utils.bits import random_bits


class TestModulator:
    def test_symbol_length(self, params):
        mod = CssModulator(params)
        assert mod.modulate_symbol(17).size == params.n_samples

    def test_value_out_of_range(self, params):
        mod = CssModulator(params)
        with pytest.raises(ConfigurationError):
            mod.modulate_symbol(params.n_shifts)
        with pytest.raises(ConfigurationError):
            mod.modulate_symbol(-1)

    def test_bits_length_validation(self, params):
        mod = CssModulator(params)
        with pytest.raises(ConfigurationError):
            mod.modulate_bits([1, 0, 1])  # not a multiple of SF=9

    def test_empty_bits(self, params):
        mod = CssModulator(params)
        assert mod.modulate_bits([]).size == 0

    def test_frame_length(self, params):
        mod = CssModulator(params)
        bits = [0] * (9 * 4)
        assert mod.modulate_bits(bits).size == 4 * params.n_samples


class TestRoundtrip:
    def test_noiseless_roundtrip(self, params, rng):
        mod = CssModulator(params)
        demod = CssDemodulator(params)
        bits = random_bits(9 * 8, rng)
        assert demod.demodulate_bits(mod.modulate_bits(bits)) == bits

    def test_noisy_roundtrip_below_noise(self, params, rng):
        mod = CssModulator(params)
        demod = CssDemodulator(params)
        bits = random_bits(9 * 10, rng)
        noisy = awgn(mod.modulate_bits(bits), -8.0, rng)
        recovered = demod.demodulate_bits(noisy)
        errors = sum(1 for a, b in zip(bits, recovered) if a != b)
        assert errors == 0

    def test_small_sf_roundtrip(self, small_params, rng):
        mod = CssModulator(small_params)
        demod = CssDemodulator(small_params)
        bits = random_bits(6 * 5, rng)
        assert demod.demodulate_bits(mod.modulate_bits(bits)) == bits

    def test_demodulate_rejects_partial_frame(self, params):
        demod = CssDemodulator(params)
        with pytest.raises(DecodingError):
            demod.demodulate_bits(np.ones(10, dtype=complex))

    def test_all_symbol_values_roundtrip(self, small_params):
        mod = CssModulator(small_params)
        demod = CssDemodulator(small_params)
        for value in range(small_params.n_shifts):
            symbol = mod.modulate_symbol(value)
            assert demod.demodulate_symbol(symbol) == value
