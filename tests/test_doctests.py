"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.utils.bits
import repro.utils.conversions

MODULES_WITH_DOCTESTS = [
    repro.utils.conversions,
    repro.utils.bits,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
