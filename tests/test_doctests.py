"""Run the library's docstring examples as tests.

Every module listed here must carry at least one runnable example —
the docs-consistency suite (``tests/test_docs_consistency.py``) keeps
the list in sync with the documented hot-path modules, so the examples
in the docs cannot silently rot.
"""

import doctest

import pytest

import repro.campaign.client
import repro.campaign.faults
import repro.campaign.objectstore
import repro.campaign.runner
import repro.campaign.service
import repro.campaign.spec
import repro.campaign.storage
import repro.campaign.store
import repro.core.allocation
import repro.core.capacity
import repro.phy.backend_plan
import repro.phy.noise
import repro.protocol.population
import repro.phy.sparse_readout
import repro.utils.bits
import repro.utils.conversions

MODULES_WITH_DOCTESTS = [
    repro.utils.conversions,
    repro.utils.bits,
    repro.phy.sparse_readout,
    repro.phy.backend_plan,
    repro.phy.noise,
    repro.campaign.spec,
    repro.campaign.store,
    repro.campaign.storage,
    repro.campaign.faults,
    repro.campaign.runner,
    repro.campaign.objectstore,
    repro.campaign.service,
    repro.campaign.client,
    repro.core.allocation,
    repro.core.capacity,
    repro.protocol.population,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
