"""Unit tests for repro.phy.spectrum — side lobes, PSD, spectrogram."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.chirp import oversampled_upchirp, upchirp
from repro.phy.spectrum import (
    dirichlet_side_lobe_db,
    instantaneous_frequency,
    occupied_bins,
    power_spectral_density,
    side_lobe_profile,
    spectrogram,
)


class TestSideLobeProfile:
    def test_peak_at_zero(self, params):
        profile = side_lobe_profile(params)
        assert profile.power_db[0] == pytest.approx(0.0)

    def test_first_lobe_minus_13db(self, params):
        """Paper Fig. 8: first side lobe (SKIP=2 annotation) ~ -13 dB."""
        profile = side_lobe_profile(params)
        lobe = profile.worst_in_range(1.0, 2.0)
        assert lobe == pytest.approx(-13.3, abs=0.5)

    def test_third_lobe_minus_21db(self, params):
        """Paper Fig. 8: third side lobe (SKIP=3 annotation) ~ -21 dB."""
        profile = side_lobe_profile(params)
        lobe = profile.worst_in_range(3.0, 4.0)
        assert lobe == pytest.approx(-20.8, abs=0.5)

    def test_matches_analytic_dirichlet(self, params):
        profile = side_lobe_profile(params)
        # Half-integer offsets sit on lobe peaks; integer offsets are
        # numerical nulls where both forms underflow differently.
        for offset in (1.5, 2.5, 3.5, 10.5):
            assert profile.at_natural_bin(offset) == pytest.approx(
                dirichlet_side_lobe_db(offset, params.n_samples), abs=0.3
            )

    def test_worst_beyond_decreases(self, params):
        profile = side_lobe_profile(params)
        assert (
            profile.worst_side_lobe_beyond(1.1)
            > profile.worst_side_lobe_beyond(4.0)
            > profile.worst_side_lobe_beyond(32.0)
        )

    def test_range_validation(self, params):
        profile = side_lobe_profile(params)
        with pytest.raises(ConfigurationError):
            profile.worst_in_range(2.0, 1.0)


class TestDirichlet:
    def test_zero_offset_is_peak(self):
        assert dirichlet_side_lobe_db(0.0, 512) == 0.0

    def test_integer_offsets_are_nulls(self):
        assert dirichlet_side_lobe_db(5.0, 512) < -200.0

    def test_first_lobe_level(self):
        # First sinc lobe at ~1.43 bins: -13.3 dB.
        assert dirichlet_side_lobe_db(1.43, 512) == pytest.approx(
            -13.3, abs=0.2
        )


class TestPsd:
    def test_tone_peak_location(self):
        fs = 1000.0
        t = np.arange(4096) / fs
        tone = np.exp(2j * np.pi * 100.0 * t)
        freqs, psd_db = power_spectral_density(tone, fs, nfft=512)
        assert freqs[np.argmax(psd_db)] == pytest.approx(100.0, abs=5.0)

    def test_chirp_fills_band(self, params):
        signal = np.tile(oversampled_upchirp(params, 2), 8)
        freqs, psd_db = power_spectral_density(
            signal, 2 * params.bandwidth_hz, nfft=256
        )
        in_band = (freqs >= 0) & (freqs <= params.bandwidth_hz)
        out_band = freqs < -0.25 * params.bandwidth_hz
        assert np.median(psd_db[in_band]) > np.median(psd_db[out_band]) + 10


class TestSpectrogram:
    def test_shapes(self, params):
        signal = np.tile(upchirp(params), 4)
        freqs, times, power_db = spectrogram(
            signal, params.bandwidth_hz, nfft=128
        )
        assert power_db.shape == (freqs.size, times.size)

    def test_too_short_rejected(self, params):
        with pytest.raises(ConfigurationError):
            spectrogram(np.ones(10, dtype=complex), 1e6, nfft=128)


class TestInstantaneousFrequency:
    def test_constant_tone(self):
        fs = 1000.0
        t = np.arange(256) / fs
        tone = np.exp(2j * np.pi * 110.0 * t)
        freq = instantaneous_frequency(tone, fs)
        assert np.median(freq) == pytest.approx(110.0, abs=1.0)

    def test_chirp_sweeps_linearly(self, params):
        track = instantaneous_frequency(
            np.asarray(upchirp(params)), params.bandwidth_hz
        )
        # Discard the wrap region; the ramp must be increasing.
        mid = track[10 : params.n_samples // 2]
        assert np.all(np.diff(mid) > -1.0)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            instantaneous_frequency(np.ones(1, dtype=complex), 1e6)


class TestOccupiedBins:
    def test_single_peak(self):
        power_db = np.full(100, -60.0)
        power_db[42] = 0.0
        assert occupied_bins(power_db, -20.0) == [42]

    def test_threshold_widens_selection(self):
        power_db = np.array([-30.0, -10.0, 0.0, -10.0, -30.0])
        assert occupied_bins(power_db, -15.0) == [1, 2, 3]
