"""Tier-1 wall-clock guard for the analytic network fast path.

A coarse budget assertion (not a benchmark): the quick Fig. 17 sweep
must stay well under a generous wall-clock ceiling, so a future change
that silently re-materialises waveforms, rebuilds operators per round
or otherwise regresses the analytic engine fails loudly here instead of
slowly rotting the benchmark suite.

Skippable on constrained or heavily-shared machines::

    REPRO_SKIP_PERF_GUARD=1 python -m pytest tests/test_perf_guard.py
"""

import os
import time

import pytest

from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.protocol.network import sweep_device_counts

#: Generous ceiling (seconds) for the quick sweep below. The analytic
#: engine runs it in well under a second on a single modest core; the
#: pre-engine time-domain path took several times longer.
BUDGET_S = 6.0

skip_guard = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_GUARD") == "1",
    reason="perf guard disabled via REPRO_SKIP_PERF_GUARD=1",
)


@skip_guard
def test_fig17_quick_sweep_within_budget():
    deployment = paper_deployment(n_devices=128, rng=2026)
    config = NetScatterConfig(n_association_shifts=0)
    start = time.perf_counter()
    metrics = sweep_device_counts(
        deployment,
        (1, 16, 64, 128),
        config=config,
        n_rounds=3,
        rng=17,
        engine="analytic",
    )
    elapsed = time.perf_counter() - start
    assert [m.n_devices for m in metrics] == [1, 16, 64, 128]
    assert elapsed < BUDGET_S, (
        f"analytic fig17 quick sweep took {elapsed:.2f}s "
        f"(budget {BUDGET_S}s) — the fast path has regressed"
    )
