"""Tier-1 wall-clock guard for the analytic network fast path.

A coarse budget assertion (not a benchmark): the quick Fig. 17 sweep
must stay well under a generous wall-clock ceiling, so a future change
that silently re-materialises waveforms, rebuilds operators per round
or otherwise regresses the analytic engine fails loudly here instead of
slowly rotting the benchmark suite. The second guard drives
``benchmarks/perf_smoke.py --quick`` end to end (against a temporary
output file) so the perf-tracking entry points cannot silently rot
either.

Skippable on constrained or heavily-shared machines::

    REPRO_SKIP_PERF_GUARD=1 python -m pytest tests/test_perf_guard.py
"""

import importlib.util
import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.protocol.network import sweep_device_counts

#: Generous ceiling (seconds) for the quick sweep below. The analytic
#: engine runs it in well under a second on a single modest core; the
#: pre-engine time-domain path took several times longer.
BUDGET_S = 6.0

#: Ceiling for the full --quick benchmark subset (spec: sub-10 s).
QUICK_BENCH_BUDGET_S = 10.0

skip_guard = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_GUARD") == "1",
    reason="perf guard disabled via REPRO_SKIP_PERF_GUARD=1",
)


@skip_guard
def test_fig17_quick_sweep_within_budget():
    deployment = paper_deployment(n_devices=128, rng=2026)
    config = NetScatterConfig(n_association_shifts=0)
    start = time.perf_counter()
    metrics = sweep_device_counts(
        deployment,
        (1, 16, 64, 128),
        config=config,
        n_rounds=3,
        rng=17,
        engine="analytic",
    )
    elapsed = time.perf_counter() - start
    assert [m.n_devices for m in metrics] == [1, 16, 64, 128]
    assert elapsed < BUDGET_S, (
        f"analytic fig17 quick sweep took {elapsed:.2f}s "
        f"(budget {BUDGET_S}s) — the fast path has regressed"
    )


def _load_perf_smoke():
    """Import benchmarks/perf_smoke.py without requiring a package."""
    path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "perf_smoke.py"
    )
    spec = importlib.util.spec_from_file_location("perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_smoke", module)
    spec.loader.exec_module(module)
    return module


@skip_guard
def test_perf_smoke_quick_mode_within_budget(tmp_path):
    """--quick runs end to end, sub-10 s, into the given output file."""
    perf_smoke = _load_perf_smoke()
    output = tmp_path / "bench.json"
    start = time.perf_counter()
    perf_smoke.main(quick=True, output=output)
    elapsed = time.perf_counter() - start
    assert elapsed < QUICK_BENCH_BUDGET_S, (
        f"perf_smoke --quick took {elapsed:.2f}s "
        f"(budget {QUICK_BENCH_BUDGET_S}s)"
    )
    report = json.loads(output.read_text())
    # The documented schema, via the same validator main() applies.
    perf_smoke.validate_report(report)
    (run,) = report["runs"]
    assert run["quick"] is True
    point = run["fig17_point256"]
    assert point["speedup_auto"] > 0
    assert point["auto"]["backend"] in ("analytic", "sparse", "fft")
    assert "speedup_batched_vs_legacy" in run["fading"]
    modes = run["noise_modes"]
    assert modes["full"]["noise_version"] == 1
    assert modes["payload"]["noise_version"] == 2
    assert modes["speedup_payload_vs_full"] > 0
    scale = run["population_scale"]
    point = scale["devices_10000"]
    assert point["n_devices"] == 10_000
    assert point["n_groups"] == (
        point["closed_form_groups"] + point["monte_carlo_groups"]
    )
    assert 0.0 <= point["delivery_ratio"] <= 1.0
    campaign = run["campaign"]
    assert campaign["cold"]["points_computed"] > 0
    assert campaign["warm_rerun"]["points_computed"] == 0
    assert campaign["fig18_reuse"]["points_computed"] == 0
    assert campaign["fig18_reuse"]["points_cached"] == (
        campaign["cold"]["points_computed"]
    )
