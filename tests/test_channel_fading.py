"""Unit tests for repro.channel.fading — the AR(1) SNR track."""

import numpy as np
import pytest

from repro.channel.fading import FadingProcess, snr_variance_samples
from repro.errors import ReproError


class TestFadingProcess:
    def test_initial_state_is_mean(self):
        process = FadingProcess(mean_snr_db=7.0)
        assert process.current_snr_db == pytest.approx(7.0)

    def test_reset_draws_from_stationary(self, rng):
        process = FadingProcess(mean_snr_db=0.0, std_db=2.0)
        draws = []
        for _ in range(500):
            process.reset(rng)
            draws.append(process.current_snr_db)
        assert np.std(draws) == pytest.approx(2.0, rel=0.15)

    def test_stationary_variance_preserved(self, rng):
        process = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        process.reset(rng)
        track = process.track(600.0, 1.0, rng)
        assert np.std(track) == pytest.approx(1.5, rel=0.25)

    def test_variance_independent_of_step_size(self, rng):
        """The AR(1) update must keep the stationary variance whether
        stepped finely or coarsely."""
        fine = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        coarse = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        fine.reset(rng)
        coarse.reset(rng)
        fine_track = fine.track(400.0, 0.5, rng)
        coarse_track = coarse.track(400.0, 4.0, rng)
        assert np.std(fine_track) == pytest.approx(
            np.std(coarse_track), rel=0.35
        )

    def test_temporal_correlation(self, rng):
        """Adjacent samples within the coherence time must correlate —
        the property reciprocity-based power control relies on."""
        process = FadingProcess(
            mean_snr_db=0.0, std_db=1.5, coherence_time_s=5.0
        )
        process.reset(rng)
        track = process.track(2000.0, 0.5, rng)
        adjacent = np.corrcoef(track[:-1], track[1:])[0, 1]
        assert adjacent > 0.8

    def test_zero_std_is_constant(self, rng):
        process = FadingProcess(mean_snr_db=3.0, std_db=0.0)
        track = process.track(10.0, 1.0, rng)
        assert np.all(track == 3.0)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            FadingProcess(mean_snr_db=0.0, std_db=-1.0)
        with pytest.raises(ReproError):
            FadingProcess(mean_snr_db=0.0, coherence_time_s=0.0)

    def test_negative_step_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            process.step(-1.0, rng)

    def test_track_too_short_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            process.track(0.1, 1.0, rng)


class TestVarianceSamples:
    def test_fig9_envelope(self, rng):
        """Fig. 9: deviations essentially bounded by +/-5 dB."""
        process = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        process.reset(rng)
        deviations = snr_variance_samples(process, 1800.0, 1.0, 300.0, rng)
        assert np.mean(np.abs(deviations) <= 5.0) > 0.99

    def test_zero_mean_per_window(self, rng):
        process = FadingProcess(mean_snr_db=10.0, std_db=1.0)
        process.reset(rng)
        deviations = snr_variance_samples(process, 600.0, 1.0, 600.0, rng)
        assert np.mean(deviations) == pytest.approx(0.0, abs=1e-9)

    def test_window_longer_than_track_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            snr_variance_samples(process, 10.0, 1.0, 100.0, rng)
