"""Unit tests for repro.channel.fading — the AR(1) SNR track."""

import numpy as np
import pytest

from repro.channel.fading import (
    FadingProcess,
    snr_variance_samples,
    step_tracks,
)
from repro.errors import ReproError


class TestFadingProcess:
    def test_initial_state_is_mean(self):
        process = FadingProcess(mean_snr_db=7.0)
        assert process.current_snr_db == pytest.approx(7.0)

    def test_reset_draws_from_stationary(self, rng):
        process = FadingProcess(mean_snr_db=0.0, std_db=2.0)
        draws = []
        for _ in range(500):
            process.reset(rng)
            draws.append(process.current_snr_db)
        assert np.std(draws) == pytest.approx(2.0, rel=0.15)

    def test_stationary_variance_preserved(self, rng):
        process = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        process.reset(rng)
        track = process.track(600.0, 1.0, rng)
        assert np.std(track) == pytest.approx(1.5, rel=0.25)

    def test_variance_independent_of_step_size(self, rng):
        """The AR(1) update must keep the stationary variance whether
        stepped finely or coarsely."""
        fine = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        coarse = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        fine.reset(rng)
        coarse.reset(rng)
        fine_track = fine.track(400.0, 0.5, rng)
        coarse_track = coarse.track(400.0, 4.0, rng)
        assert np.std(fine_track) == pytest.approx(
            np.std(coarse_track), rel=0.35
        )

    def test_temporal_correlation(self, rng):
        """Adjacent samples within the coherence time must correlate —
        the property reciprocity-based power control relies on."""
        process = FadingProcess(
            mean_snr_db=0.0, std_db=1.5, coherence_time_s=5.0
        )
        process.reset(rng)
        track = process.track(2000.0, 0.5, rng)
        adjacent = np.corrcoef(track[:-1], track[1:])[0, 1]
        assert adjacent > 0.8

    def test_zero_std_is_constant(self, rng):
        process = FadingProcess(mean_snr_db=3.0, std_db=0.0)
        track = process.track(10.0, 1.0, rng)
        assert np.all(track == 3.0)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            FadingProcess(mean_snr_db=0.0, std_db=-1.0)
        with pytest.raises(ReproError):
            FadingProcess(mean_snr_db=0.0, coherence_time_s=0.0)

    def test_negative_step_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            process.step(-1.0, rng)

    def test_track_too_short_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            process.track(0.1, 1.0, rng)


class TestVarianceSamples:
    def test_fig9_envelope(self, rng):
        """Fig. 9: deviations essentially bounded by +/-5 dB."""
        process = FadingProcess(mean_snr_db=0.0, std_db=1.5)
        process.reset(rng)
        deviations = snr_variance_samples(process, 1800.0, 1.0, 300.0, rng)
        assert np.mean(np.abs(deviations) <= 5.0) > 0.99

    def test_zero_mean_per_window(self, rng):
        process = FadingProcess(mean_snr_db=10.0, std_db=1.0)
        process.reset(rng)
        deviations = snr_variance_samples(process, 600.0, 1.0, 600.0, rng)
        assert np.mean(deviations) == pytest.approx(0.0, abs=1e-9)

    def test_window_longer_than_track_rejected(self, rng):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            snr_variance_samples(process, 10.0, 1.0, 100.0, rng)


class TestStepTracks:
    """Batched population stepping == per-round per-process stepping."""

    def _populations(self, n, seed=7, std=1.5):
        means = np.linspace(-3.0, 9.0, n)
        a = [FadingProcess(mean_snr_db=m, std_db=std) for m in means]
        b = [FadingProcess(mean_snr_db=m, std_db=std) for m in means]
        for p, q in zip(a, b):
            p.reset(np.random.default_rng(seed))
            q._state_db = p._state_db
        return a, b

    def test_same_seed_pins_per_round_loop(self):
        """The batched draws consume the generator exactly like the
        round-major per-process loop, so the tracks are bit-identical."""
        a, b = self._populations(5)
        batched = step_tracks(a, 0.06, 40, np.random.default_rng(42))
        loop_rng = np.random.default_rng(42)
        legacy = np.array(
            [[q.step(0.06, loop_rng) for q in b] for _ in range(40)]
        )
        assert np.array_equal(batched, legacy)
        for p, q in zip(a, b):
            assert p._state_db == q._state_db

    def test_degenerate_processes_draw_nothing(self):
        """Zero-variance tracks stay flat and leave the stream alone,
        matching FadingProcess.step's innovation gating."""
        flat = FadingProcess(mean_snr_db=4.0, std_db=0.0)
        live_a = FadingProcess(mean_snr_db=0.0, std_db=1.0)
        live_b = FadingProcess(mean_snr_db=0.0, std_db=1.0)
        live_b._state_db = live_a._state_db
        track = step_tracks(
            [live_a, flat], 0.06, 25, np.random.default_rng(3)
        )
        assert np.all(track[:, 1] == 4.0)
        solo_rng = np.random.default_rng(3)
        solo = np.array([live_b.step(0.06, solo_rng) for _ in range(25)])
        assert np.array_equal(track[:, 0], solo)

    def test_stationary_variance_preserved(self):
        processes = [
            FadingProcess(mean_snr_db=0.0, std_db=1.5) for _ in range(8)
        ]
        rng = np.random.default_rng(11)
        for p in processes:
            p.reset(rng)
        track = step_tracks(processes, 1.0, 600, rng)
        assert np.std(track) == pytest.approx(1.5, rel=0.2)

    def test_validation(self):
        process = FadingProcess(mean_snr_db=0.0)
        with pytest.raises(ReproError):
            step_tracks([], 0.06, 5)
        with pytest.raises(ReproError):
            step_tracks([process], -0.1, 5)
        with pytest.raises(ReproError):
            step_tracks([process], 0.06, 0)
