"""Unit tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.choir import (
    ChoirDecoder,
    choir_distinct_fraction_probability,
    choir_same_shift_collision_probability,
    simulate_choir_scaling,
)
from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.baselines.rate_adaptation import (
    best_choice,
    best_rate_bps,
    feasible_choices,
    rates_for_population,
)
from repro.baselines.sf_pairs import (
    concurrency_ceiling,
    slope_distinct_pairs,
    usable_concurrent_pairs,
    verify_pairwise_distinct_slopes,
)
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams, cyclic_shifted_upchirp
from repro.utils.sampling import apply_cfo


class TestChoirAnalytics:
    def test_distinct_fraction_paper_value(self):
        """Section 2.2: only ~30% at N = 5."""
        assert choir_distinct_fraction_probability(5) == pytest.approx(
            0.302, abs=0.001
        )

    def test_distinct_fraction_impossible_beyond_resolution(self):
        assert choir_distinct_fraction_probability(11) == 0.0

    def test_collision_paper_values(self):
        """~9% at N = 10 and ~32% at N = 20 (SF 9)."""
        assert choir_same_shift_collision_probability(
            10, 9
        ) == pytest.approx(0.085, abs=0.005)
        assert choir_same_shift_collision_probability(
            20, 9
        ) == pytest.approx(0.31, abs=0.01)

    def test_approximation_close_to_exact(self):
        exact = choir_same_shift_collision_probability(10, 9, exact=True)
        approx = choir_same_shift_collision_probability(10, 9, exact=False)
        assert approx == pytest.approx(exact, rel=0.05)

    def test_certain_collision_beyond_shifts(self):
        assert choir_same_shift_collision_probability(100, 6) == 1.0

    def test_scaling_simulation_decreases(self, rng):
        rows = simulate_choir_scaling(
            ChirpParams(500e3, 9),
            device_counts=(2, 5, 10),
            offset_std_bins=2.0,
            n_trials=200,
            rng=rng,
        )
        success = [r["attribution_success"] for r in rows]
        assert success[0] > success[-1]

    def test_backscatter_fractions_collide(self, rng):
        """Tags' offsets span < 1/3 bin (Fig. 4), so even a handful of
        devices share quantised fractions almost always."""
        rows = simulate_choir_scaling(
            ChirpParams(500e3, 9),
            device_counts=(5,),
            offset_std_bins=0.1,
            n_trials=200,
            rng=rng,
        )
        assert rows[0]["attribution_success"] < 0.2


class TestChoirDecoder:
    def test_disambiguates_distinct_fractions(self, params):
        decoder = ChoirDecoder(params)
        decoder.enroll(0, 0.2)
        decoder.enroll(1, 0.7)
        cfo_per_bin = params.bandwidth_hz / params.n_samples
        symbol = np.asarray(
            apply_cfo(
                np.asarray(cyclic_shifted_upchirp(params, 100)),
                0.2 * cfo_per_bin,
                params.bandwidth_hz,
            )
        ) + np.asarray(
            apply_cfo(
                np.asarray(cyclic_shifted_upchirp(params, 200)),
                0.7 * cfo_per_bin,
                params.bandwidth_hz,
            )
        )
        decoded = decoder.decode_symbol(symbol)
        assert decoded[0] == 100
        assert decoded[1] == 200

    def test_colliding_fractions_ambiguous(self, params):
        decoder = ChoirDecoder(params)
        decoder.enroll(0, 0.2)
        decoder.enroll(1, 0.2)
        assert not decoder.fractions_distinct()
        symbol = np.asarray(
            cyclic_shifted_upchirp(params, 100)
        ) + np.asarray(cyclic_shifted_upchirp(params, 200))
        decoded = decoder.decode_symbol(symbol)
        # Both peaks land on the same fraction: neither attributable.
        assert decoded[0] is None or decoded[1] is None


class TestRateAdaptation:
    def test_strong_device_caps_at_32kbps(self):
        assert best_rate_bps(20.0) == pytest.approx(32000.0)

    def test_weak_device_gets_low_rate(self):
        rate = best_rate_bps(-18.0)
        assert 0 < rate < 8000.0

    def test_monotone_in_snr(self):
        rates = [best_rate_bps(snr) for snr in (-20, -15, -10, -5, 0)]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    def test_out_of_range_returns_floor(self):
        assert best_rate_bps(-60.0, floor_bitrate_bps=0.0) == 0.0

    def test_feasible_choices_meet_snr(self):
        for choice in feasible_choices(-10.0):
            assert choice.required_snr_db is not None

    def test_best_choice_none_out_of_range(self):
        assert best_choice(-60.0) is None

    def test_population_rates(self):
        rates = rates_for_population([-10.0, 5.0, 25.0])
        assert len(rates) == 3
        assert rates[2] >= rates[1] >= rates[0]

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            rates_for_population([])


class TestLoRaBackscatter:
    def test_fixed_rate_network_phy_rate(self):
        """All devices at 8.7 kbps: the network PHY rate is 8.7 kbps
        regardless of device count (TDMA, Fig. 17's flat line)."""
        for n in (1, 10, 100):
            network = LoRaBackscatterNetwork([10.0] * n)
            assert network.network_phy_rate_bps() == pytest.approx(8.7e3)

    def test_latency_linear_in_devices(self):
        snrs = [10.0] * 50
        half = LoRaBackscatterNetwork(snrs[:25]).network_latency_s()
        full = LoRaBackscatterNetwork(snrs).network_latency_s()
        assert full == pytest.approx(2 * half, rel=1e-9)

    def test_rate_adaptation_beats_fixed(self):
        snrs = list(np.linspace(0.0, 40.0, 32))
        fixed = LoRaBackscatterNetwork(snrs, rate_adaptation=False)
        adaptive = LoRaBackscatterNetwork(snrs, rate_adaptation=True)
        assert (
            adaptive.network_phy_rate_bps() > fixed.network_phy_rate_bps()
        )
        assert adaptive.network_latency_s() < fixed.network_latency_s()

    def test_link_layer_below_phy_rate(self):
        network = LoRaBackscatterNetwork([10.0] * 8)
        assert network.link_layer_rate_bps() < network.network_phy_rate_bps()

    def test_paper_256_latency_ballpark(self):
        """Fig. 19: ~3.3 s to poll 256 devices at fixed 8.7 kbps."""
        network = LoRaBackscatterNetwork([10.0] * 256)
        assert network.network_latency_s() == pytest.approx(3.3, abs=0.5)

    def test_summary_keys(self):
        summary = LoRaBackscatterNetwork([10.0]).summary()
        assert set(summary) == {
            "n_devices",
            "network_phy_rate_bps",
            "link_layer_rate_bps",
            "network_latency_s",
        }

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LoRaBackscatterNetwork([])


class TestSfPairs:
    def test_paper_counts(self):
        assert len(slope_distinct_pairs()) == 19
        assert len(usable_concurrent_pairs()) == 8

    def test_slopes_distinct(self):
        assert verify_pairwise_distinct_slopes(slope_distinct_pairs())
        assert verify_pairwise_distinct_slopes(usable_concurrent_pairs())

    def test_usable_meet_constraints(self):
        for pair in usable_concurrent_pairs():
            assert pair.sensitivity_dbm <= -123.0
            assert pair.bitrate_bps >= 1000.0

    def test_ceiling_far_below_netscatter(self):
        """8 concurrent configurations vs NetScatter's 256 devices."""
        assert concurrency_ceiling(usable_concurrent_pairs()) == 8
        assert 256 / concurrency_ceiling(usable_concurrent_pairs()) == 32

    def test_known_slope_collision_excluded(self):
        """(500 kHz, SF 8) and (250 kHz, SF 6) share a slope — only one
        can appear in the distinct set."""
        pairs = slope_distinct_pairs()
        keys = {(p.bandwidth_hz, p.spreading_factor) for p in pairs}
        assert not (
            (500e3, 8) in keys and (250e3, 6) in keys
        )
