"""Property-based tests (hypothesis) on the campaign spec/hash layer.

The invariants the service node's dedup and read-through cache stand
on: canonical JSON makes :func:`campaign_id_for` and point content
hashes insensitive to key order; grid-axis permutations move point
*order*, never the *set* of content hashes; any value perturbation
moves the hash; and a grid over distinct axis values never collides.
"""

import json
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.campaign.service import campaign_id_for
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.phy.noise import NOISE_MODES
from repro.protocol.network import ENGINES


def _shuffle_keys(value):
    """Recursively reverse every dict's key order (same content)."""
    if isinstance(value, dict):
        return {
            key: _shuffle_keys(value[key])
            for key in reversed(list(value))
        }
    if isinstance(value, list):
        return [_shuffle_keys(item) for item in value]
    return value


def subsets(values):
    """Non-empty ordered subsets of an axis tuple."""
    return (
        st.sets(
            st.sampled_from(values), min_size=1, max_size=len(values)
        )
        .map(sorted)
        .map(tuple)
    )


@st.composite
def specs(draw):
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=len(counts),
            max_size=len(counts),
        )
    )
    return CampaignSpec(
        name=draw(
            st.text(
                alphabet="abcdefghij-", min_size=1, max_size=12
            )
        ),
        deployment={
            "kind": "paper",
            "n_devices": max(counts),
            "seed": draw(st.integers(0, 2**31 - 1)),
        },
        device_counts=tuple(counts),
        point_seeds=tuple(seeds),
        engines=draw(subsets(ENGINES)),
        noise_modes=draw(subsets(NOISE_MODES)),
        fading=draw(subsets((False, True))),
        n_rounds=draw(st.integers(1, 3)),
        query_bits=draw(st.integers(8, 64)),
    )


@st.composite
def points(draw):
    n_devices = draw(st.integers(1, 16))
    return CampaignPoint(
        deployment={
            "kind": "paper",
            "n_devices": n_devices,
            "seed": draw(st.integers(0, 2**31 - 1)),
        },
        config={},
        n_devices=draw(st.integers(1, n_devices)),
        n_rounds=draw(st.integers(1, 4)),
        query_bits=draw(st.integers(8, 64)),
        engine=draw(st.sampled_from(ENGINES)),
        noise_mode=draw(st.sampled_from(NOISE_MODES)),
        fading=draw(st.booleans()),
        readout_dtype=draw(st.sampled_from([None, "complex64"])),
        seed=draw(st.integers(0, 2**31 - 1)),
    )


class TestSpecRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_json_round_trip_is_identity(self, spec):
        wire = json.loads(json.dumps(spec.to_dict()))
        rebuilt = CampaignSpec.from_dict(wire)
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()
        assert [p.content_hash() for p in rebuilt.points()] == [
            p.content_hash() for p in spec.points()
        ]

    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_campaign_id_ignores_key_order(self, spec):
        forward = spec.to_dict()
        assert campaign_id_for(_shuffle_keys(forward)) == (
            campaign_id_for(forward)
        )


class TestHashInvariance:
    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_axis_permutation_preserves_the_hash_set(self, spec):
        permuted = replace(
            spec,
            engines=tuple(reversed(spec.engines)),
            noise_modes=tuple(reversed(spec.noise_modes)),
            fading=tuple(reversed(spec.fading)),
            # counts and their seeds permute jointly (paired axes).
            device_counts=tuple(reversed(spec.device_counts)),
            point_seeds=tuple(reversed(spec.point_seeds)),
        )
        original = {p.content_hash() for p in spec.points()}
        assert {
            p.content_hash() for p in permuted.points()
        } == original

    @settings(max_examples=40, deadline=None)
    @given(points())
    def test_point_hash_is_stable_and_key_order_free(self, point):
        assert point.content_hash() == point.content_hash()
        assert (
            CampaignPoint.from_dict(
                _shuffle_keys(point.to_dict())
            ).content_hash()
            == point.content_hash()
        )

    @settings(max_examples=40, deadline=None)
    @given(points(), st.integers(1, 2**16))
    def test_any_value_perturbation_moves_the_hash(
        self, point, delta
    ):
        baseline = point.content_hash()
        assert (
            replace(point, seed=point.seed + delta).content_hash()
            != baseline
        )
        assert (
            replace(
                point, n_rounds=point.n_rounds + delta
            ).content_hash()
            != baseline
        )
        assert (
            replace(
                point, query_bits=point.query_bits + delta
            ).content_hash()
            != baseline
        )
        assert (
            replace(point, fading=not point.fading).content_hash()
            != baseline
        )

    @settings(max_examples=40, deadline=None)
    @given(specs(), st.integers(1, 2**16))
    def test_spec_value_perturbation_moves_the_campaign_id(
        self, spec, delta
    ):
        baseline = campaign_id_for(spec.to_dict())
        shifted = replace(
            spec,
            point_seeds=tuple(s + delta for s in spec.point_seeds),
        )
        assert campaign_id_for(shifted.to_dict()) != baseline


class TestExpansion:
    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_expansion_never_duplicates_hashes(self, spec):
        hashes = [p.content_hash() for p in spec.points()]
        assert len(hashes) == spec.n_points
        assert len(set(hashes)) == len(hashes)
