"""NetScatter reproduction: distributed CSS coding for large-scale
backscatter networks (Hessar, Najafi, Gollakota — NSDI 2019).

Quick start::

    from repro import NetScatterConfig, NetScatterReceiver
    from repro.core.dcss import DeviceTransmission, compose_preamble_and_payload_symbols
    from repro.channel.awgn import awgn

    config = NetScatterConfig()                  # 500 kHz, SF 9, SKIP 2
    txs = [DeviceTransmission(shift=10, bits=[1, 0, 1, 1]),
           DeviceTransmission(shift=200, bits=[0, 1, 1, 0])]
    symbols = compose_preamble_and_payload_symbols(config.chirp_params, txs)
    noisy = [awgn(s, -10.0) for s in symbols]
    receiver = NetScatterReceiver(config, {0: 10, 1: 200})
    decode = receiver.decode_fast_symbols(noisy)
    decode.bits_of(0)                            # -> [1, 0, 1, 1]

Package layout
--------------
``repro.phy``
    Chirp spread spectrum substrate (chirps, dechirp+FFT, OOK, packets,
    synchronisation, spectra).
``repro.channel``
    Propagation substrate (AWGN, path loss, multipath, fading, offsets,
    office deployments).
``repro.hardware``
    Backscatter tag models (impedance switch network, envelope detector,
    oscillator, MCU timing, power budget).
``repro.core``
    The paper's contribution: distributed CSS coding, the single-FFT
    concurrent receiver, power-aware allocation, power control,
    bandwidth aggregation, capacity analysis.
``repro.protocol``
    Queries, association, scheduling, Aloha and the network simulator.
``repro.baselines``
    LoRa backscatter (TDMA, with/without rate adaptation), Choir and the
    multi-SF concurrency analysis.
``repro.analysis``
    Air-time accounting, metrics and report formatting.
``repro.experiments``
    Drivers that regenerate every table and figure of the evaluation.
"""

from repro.core.allocation import AllocationTable, power_aware_allocation
from repro.core.config import NetScatterConfig, TABLE1_CONFIGS, deployment_config
from repro.core.receiver import NetScatterReceiver
from repro.errors import ReproError
from repro.phy.chirp import ChirpParams

__version__ = "1.0.0"

__all__ = [
    "AllocationTable",
    "power_aware_allocation",
    "NetScatterConfig",
    "TABLE1_CONFIGS",
    "deployment_config",
    "NetScatterReceiver",
    "ReproError",
    "ChirpParams",
    "__version__",
]
