"""NetScatter concurrent receiver: one FFT decodes every device.

Receiver pipeline (Sections 3.1 and 3.3.1):

1. locate the packet start from the shared up/down preamble,
2. dechirp each symbol once and take a single zero-padded FFT,
3. detect active devices: an FFT peak that repeats across all preamble
   symbols at an assigned shift marks that device as transmitting,
4. average each detected device's preamble peak power,
5. demodulate the OOK payload: bit = 1 iff the device's bin power in the
   payload symbol exceeds half its preamble average.

The dechirp + FFT is done once per symbol regardless of the number of
devices — the receiver-complexity claim the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import NetScatterConfig
from repro.errors import DecodingError
from repro.phy.demodulation import DechirpResult, Demodulator
from repro.phy.sync import PreambleSynchronizer


@dataclass
class DeviceDecode:
    """Per-device decode outcome within one frame."""

    device_id: int
    shift: int
    detected: bool
    preamble_power: float = 0.0
    noise_power: float = 0.0
    bits: List[int] = field(default_factory=list)
    bit_powers: List[float] = field(default_factory=list)

    @property
    def threshold(self) -> float:
        """OOK decision threshold: half the preamble average power."""
        return 0.5 * self.preamble_power

    @property
    def estimated_snr_db(self) -> Optional[float]:
        """Post-despreading SNR estimate from the preamble.

        The signal-strength measurement the AP feeds to the power-aware
        allocation at association time (Section 3.3.2). ``None`` when
        the device was not detected or no noise estimate exists.
        """
        if not self.detected or self.noise_power <= 0.0:
            return None
        ratio = max(self.preamble_power / self.noise_power - 1.0, 1e-12)
        return float(10.0 * np.log10(ratio))


@dataclass
class FrameDecode:
    """Decode of one concurrent frame across all assigned devices."""

    devices: Dict[int, DeviceDecode]
    start_sample: Optional[int] = None

    def detected_ids(self) -> List[int]:
        """Devices whose preamble repeated (i.e., who transmitted)."""
        return [d.device_id for d in self.devices.values() if d.detected]

    def bits_of(self, device_id: int) -> List[int]:
        """Decoded payload bits of one device."""
        if device_id not in self.devices:
            raise DecodingError(f"device {device_id} is not in this decode")
        return self.devices[device_id].bits


class NetScatterReceiver:
    """Decodes concurrent distributed-CSS transmissions at the AP.

    Parameters
    ----------
    config:
        The network's operating point.
    assignments:
        Map of ``device_id -> cyclic shift`` currently in force (produced
        by :class:`repro.core.allocation.AllocationTable`).
    search_width_bins:
        Half-width (in natural bins) of the peak-search window around each
        assigned shift. Defaults to a quarter of the SKIP gap: wide enough
        to absorb the sub-bin residual offsets that survive preamble
        synchronisation, while keeping the window edge more than a full
        bin away from a SKIP-spaced neighbour's main lobe.
    """

    def __init__(
        self,
        config: NetScatterConfig,
        assignments: Dict[int, int],
        search_width_bins: Optional[float] = None,
        detection_snr_db: float = 3.0,
    ) -> None:
        if not assignments:
            raise DecodingError("receiver needs at least one assignment")
        shifts = list(assignments.values())
        if len(set(shifts)) != len(shifts):
            raise DecodingError("cyclic shifts must be unique per device")
        for shift in shifts:
            if not 0 <= shift < config.n_bins:
                raise DecodingError(f"shift {shift} out of range")
        self._config = config
        self._assignments = dict(assignments)
        self._params = config.chirp_params
        self._demod = Demodulator(
            self._params, zero_pad_factor=config.zero_pad_factor
        )
        if search_width_bins is None:
            search_width_bins = config.skip / 4.0
        self._search_width = float(search_width_bins)
        self._detection_snr = float(detection_snr_db)
        self._sync = PreambleSynchronizer(self._params)

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def assignments(self) -> Dict[int, int]:
        return dict(self._assignments)

    # ------------------------------------------------------------------ #
    # symbol-level decoding (shared by both simulation fidelities)
    # ------------------------------------------------------------------ #

    def decode_symbols(
        self,
        preamble_results: Sequence[DechirpResult],
        payload_results: Sequence[DechirpResult],
    ) -> FrameDecode:
        """Decode dechirped preamble + payload symbol spectra.

        This is the core algorithm; it assumes frame timing is already
        known (either via :meth:`decode_frame`'s synchroniser or because
        the fast simulation path composes aligned symbols).
        """
        if not preamble_results:
            raise DecodingError("need at least one preamble symbol")
        devices: Dict[int, DeviceDecode] = {}
        noise_floor = self._estimate_noise(preamble_results[0])
        zp = self._config.zero_pad_factor
        n_bins = preamble_results[0].n_bins
        for device_id, shift in self._assignments.items():
            # Locate the device's exact sub-bin peak from the summed
            # preamble spectra: per-packet timing/CFO offsets are constant
            # across the packet, so the payload can be read at the located
            # interpolated bin instead of a wide window (which would pick
            # up noise maxima and neighbour leakage).
            half = max(1, int(round(self._search_width * zp)))
            window = (
                np.arange(-half, half + 1) + int(round(shift * zp))
            ) % n_bins
            summed = np.zeros(window.size)
            for r in preamble_results:
                summed += r.power[window]
            located = int(window[int(np.argmax(summed))])
            powers = [r.power_at_index(located) for r in preamble_results]
            min_power = min(powers)
            detected = min_power > noise_floor * (
                10.0 ** (self._detection_snr / 10.0)
            )
            decode = DeviceDecode(
                device_id=device_id,
                shift=shift,
                detected=detected,
                preamble_power=float(np.mean(powers)) if detected else 0.0,
                noise_power=noise_floor,
            )
            if detected:
                for result in payload_results:
                    power = result.power_at_index(located)
                    decode.bit_powers.append(power)
                    decode.bits.append(int(power > decode.threshold))
            devices[device_id] = decode
        return FrameDecode(devices=devices)

    def _estimate_noise(self, result: DechirpResult) -> float:
        """Noise floor estimate excluding every assigned neighbourhood."""
        return self._demod.noise_floor(
            result, exclude_bins=list(self._assignments.values())
        )

    # ------------------------------------------------------------------ #
    # stream-level decoding (waveform path)
    # ------------------------------------------------------------------ #

    def decode_frame(
        self,
        stream: np.ndarray,
        n_payload_bits: int,
        n_preamble_upchirps: int = 6,
        n_preamble_downchirps: int = 2,
        synchronize: bool = True,
        start_sample: int = 0,
    ) -> FrameDecode:
        """Decode a raw baseband stream containing one concurrent frame."""
        stream = np.asarray(stream, dtype=complex)
        n = self._params.n_samples
        if synchronize:
            sync = PreambleSynchronizer(
                self._params, n_preamble_upchirps, n_preamble_downchirps
            )
            coarse = sync.synchronize(stream).start_sample
            start_sample = sync.refine_with_shifts(
                stream, coarse, list(self._assignments.values())
            )
        preamble_up_len = n_preamble_upchirps * n
        preamble_len = (n_preamble_upchirps + n_preamble_downchirps) * n
        payload_len = n_payload_bits * n
        end = start_sample + preamble_len + payload_len
        if end > stream.size:
            raise DecodingError(
                f"stream too short: need {end} samples, have {stream.size}"
            )
        preamble_results = self._demod.dechirp_frame(
            stream[start_sample : start_sample + preamble_up_len]
        )
        payload_results = self._demod.dechirp_frame(
            stream[start_sample + preamble_len : end]
        )
        decode = self.decode_symbols(preamble_results, payload_results)
        decode.start_sample = start_sample
        return decode

    # ------------------------------------------------------------------ #
    # convenience entry point for the fast path
    # ------------------------------------------------------------------ #

    def decode_fast_symbols(
        self,
        symbols: Sequence[np.ndarray],
        n_preamble_upchirps: int = 6,
    ) -> FrameDecode:
        """Decode pre-aligned raw symbols from the fast composition path."""
        if len(symbols) < n_preamble_upchirps:
            raise DecodingError("fewer symbols than preamble length")
        results = [self._demod.dechirp(s) for s in symbols]
        return self.decode_symbols(
            results[:n_preamble_upchirps], results[n_preamble_upchirps:]
        )

    # ------------------------------------------------------------------ #
    # vectorised round decoding (used by the network simulator)
    # ------------------------------------------------------------------ #

    def decode_round_matrix(
        self,
        symbol_matrix: np.ndarray,
        n_preamble_upchirps: int = 6,
    ) -> FrameDecode:
        """Decode a whole round at once from a (n_symbols, 2^SF) matrix.

        Numerically identical to :meth:`decode_fast_symbols`, but the
        dechirp, FFT and per-device window search run as batched numpy
        operations — necessary for 256-device round simulations.
        """
        symbol_matrix = np.asarray(symbol_matrix, dtype=complex)
        n = self._params.n_samples
        if symbol_matrix.ndim != 2 or symbol_matrix.shape[1] != n:
            raise DecodingError(
                f"symbol matrix must be (n_symbols, {n})"
            )
        if symbol_matrix.shape[0] < n_preamble_upchirps:
            raise DecodingError("fewer symbols than preamble length")
        zp = self._config.zero_pad_factor
        from repro.phy.chirp import downchirp as _downchirp

        despread = symbol_matrix * _downchirp(self._params)[None, :]
        spectra = np.abs(np.fft.fft(despread, n=n * zp, axis=1)) ** 2

        device_ids = list(self._assignments)
        shifts = np.array(
            [self._assignments[d] for d in device_ids], dtype=float
        )
        half = max(1, int(round(self._search_width * zp)))
        offsets = np.arange(-half, half + 1)
        centres = np.round(shifts * zp).astype(int)
        index_matrix = (centres[:, None] + offsets[None, :]) % (n * zp)

        # Locate each device's sub-bin peak from the summed preamble
        # spectra (per-packet offsets are constant over the packet), then
        # read every symbol at that located bin (+/- one interpolated
        # bin of guard).
        preamble_sum = spectra[:n_preamble_upchirps, :][
            :, index_matrix
        ].sum(axis=0)
        located = index_matrix[
            np.arange(len(device_ids)), preamble_sum.argmax(axis=1)
        ]
        guard = np.arange(-1, 2)
        read_matrix = (located[:, None] + guard[None, :]) % (n * zp)
        # powers[s, d] = power at device d's located bin during symbol s
        powers = spectra[:, read_matrix].max(axis=2)

        preamble = powers[:n_preamble_upchirps]
        payload = powers[n_preamble_upchirps:]
        noise = float(np.quantile(spectra[0], 0.25))
        threshold_scale = 10.0 ** (self._detection_snr / 10.0)

        devices: Dict[int, DeviceDecode] = {}
        detected_mask = preamble.min(axis=0) > noise * threshold_scale
        preamble_means = preamble.mean(axis=0)
        bits_matrix = payload > (0.5 * preamble_means)[None, :]
        for column, device_id in enumerate(device_ids):
            detected = bool(detected_mask[column])
            decode = DeviceDecode(
                device_id=device_id,
                shift=int(shifts[column]),
                detected=detected,
                preamble_power=(
                    float(preamble_means[column]) if detected else 0.0
                ),
                noise_power=noise,
            )
            if detected:
                decode.bits = bits_matrix[:, column].astype(int).tolist()
                decode.bit_powers = payload[:, column].tolist()
            devices[device_id] = decode
        return FrameDecode(devices=devices)
