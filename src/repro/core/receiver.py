"""NetScatter concurrent receiver: one FFT decodes every device.

Receiver pipeline (Sections 3.1 and 3.3.1):

1. locate the packet start from the shared up/down preamble,
2. dechirp each symbol once and take a single zero-padded FFT,
3. detect active devices: an FFT peak that repeats across all preamble
   symbols at an assigned shift marks that device as transmitting,
4. average each detected device's preamble peak power,
5. demodulate the OOK payload: bit = 1 iff the device's bin power in the
   payload symbol exceeds half its preamble average.

The dechirp + FFT is done once per symbol regardless of the number of
devices — the receiver-complexity claim the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import NetScatterConfig
from repro.errors import DecodingError
from repro.phy.demodulation import DechirpResult, Demodulator
from repro.phy.noise import (
    NOISE_MODES,
    NoiseStream,
    covariance_factor,
    estimate_noise_floor,
    exclusion_mask,
)
from repro.phy.sparse_readout import (
    SparseReadout,
    full_fft_values,
    located_bin_noise_covariance,
    natural_probe_readout,
)
from repro.phy.sync import PreambleSynchronizer

#: Elements per chunk of the batched power tensor: bounds peak memory of
#: a decode_rounds call regardless of how many rounds are batched. Tuned
#: down from 2^23: the per-chunk working set (readout values, noise
#: draws, power tensors) then stays near L2/L3 size, which measures
#: ~25% faster on 100-round fading batches with identical decisions
#: (chunk boundaries only reorder the noise *stream*, never the law).
_CHUNK_ELEMENT_BUDGET = 1 << 20

#: Cap on the number of noise-probe bins carried by the readout plan
#: (a strided subsample of the natural-bin grid at large SF).
_MAX_NOISE_PROBES = 512


@dataclass
class DeviceDecode:
    """Per-device decode outcome within one frame."""

    device_id: int
    shift: int
    detected: bool
    preamble_power: float = 0.0
    noise_power: float = 0.0
    bits: List[int] = field(default_factory=list)
    bit_powers: List[float] = field(default_factory=list)

    @property
    def threshold(self) -> float:
        """OOK decision threshold: half the preamble average power."""
        return 0.5 * self.preamble_power

    @property
    def estimated_snr_db(self) -> Optional[float]:
        """Post-despreading SNR estimate from the preamble.

        The signal-strength measurement the AP feeds to the power-aware
        allocation at association time (Section 3.3.2). ``None`` when
        the device was not detected or no noise estimate exists.
        """
        if not self.detected or self.noise_power <= 0.0:
            return None
        ratio = max(self.preamble_power / self.noise_power - 1.0, 1e-12)
        return float(10.0 * np.log10(ratio))


@dataclass
class FrameDecode:
    """Decode of one concurrent frame across all assigned devices."""

    devices: Dict[int, DeviceDecode]
    start_sample: Optional[int] = None

    def detected_ids(self) -> List[int]:
        """Devices whose preamble repeated (i.e., who transmitted)."""
        return [d.device_id for d in self.devices.values() if d.detected]

    def bits_of(self, device_id: int) -> List[int]:
        """Decoded payload bits of one device."""
        if device_id not in self.devices:
            raise DecodingError(f"device {device_id} is not in this decode")
        return self.devices[device_id].bits


@dataclass
class RoundsDecode:
    """Vectorised decode of a whole batch of concurrent rounds.

    Arrays are indexed ``[round, symbol, device-column]`` with device
    columns ordered as ``device_ids``. ``bits`` / ``bit_powers`` hold the
    raw vectorised decisions for *every* device; consumers must gate on
    ``detected`` (``frame`` does this, returning empty bit lists for
    undetected devices, exactly like the per-round decoder).
    ``backend`` names the spectral backend that actually produced the
    readout values (``"analytic"``, ``"sparse"`` or ``"fft"``) — under
    ``readout="auto"`` this is the planner's per-call decision.
    ``noise_mode`` / ``noise_version`` name the engine-injected
    readout-noise stream that produced the draws (see
    :class:`repro.phy.noise.NoiseStream`): ``("full", 1)`` for the
    all-bin stream, ``("payload", 2)`` for the located-bin payload
    stream, and ``("none", 0)`` when no engine noise was injected
    (noiseless decode, or noise already present in the input tensor —
    e.g. the time-domain ``awgn_rounds`` path).
    """

    device_ids: List[int]
    shifts: np.ndarray
    detected: np.ndarray
    preamble_power: np.ndarray
    noise_power: np.ndarray
    bits: np.ndarray
    bit_powers: np.ndarray
    backend: str = "sparse"
    noise_mode: str = "none"
    noise_version: int = 0

    @property
    def n_rounds(self) -> int:
        return self.detected.shape[0]

    def column_of(self, device_id: int) -> int:
        """Column index of a device in the batched arrays."""
        try:
            return self.device_ids.index(device_id)
        except ValueError:
            raise DecodingError(
                f"device {device_id} is not in this decode"
            ) from None

    def frame(self, round_index: int) -> FrameDecode:
        """Materialise one round as a :class:`FrameDecode`."""
        r = int(round_index)
        if not 0 <= r < self.n_rounds:
            raise DecodingError(f"round {round_index} out of range")
        devices: Dict[int, DeviceDecode] = {}
        for column, device_id in enumerate(self.device_ids):
            detected = bool(self.detected[r, column])
            decode = DeviceDecode(
                device_id=device_id,
                shift=int(self.shifts[column]),
                detected=detected,
                preamble_power=(
                    float(self.preamble_power[r, column]) if detected else 0.0
                ),
                noise_power=float(self.noise_power[r]),
            )
            if detected:
                decode.bits = self.bits[r, :, column].astype(int).tolist()
                decode.bit_powers = self.bit_powers[r, :, column].tolist()
            devices[device_id] = decode
        return FrameDecode(devices=devices)

    def frames(self) -> List[FrameDecode]:
        """All rounds as per-round decodes."""
        return [self.frame(r) for r in range(self.n_rounds)]

    @classmethod
    def concatenate(
        cls, decodes: Sequence["RoundsDecode"]
    ) -> "RoundsDecode":
        """Stack round-major batches decoded by the same receiver.

        The device columns (and the backend / noise-stream labels,
        taken from the first batch) must agree — callers split one
        logical batch, decode the pieces, and reassemble here.
        """
        if not decodes:
            raise DecodingError("need at least one decode to concatenate")
        first = decodes[0]
        if len(decodes) == 1:
            return first
        return cls(
            device_ids=first.device_ids,
            shifts=first.shifts,
            detected=np.concatenate([d.detected for d in decodes]),
            preamble_power=np.concatenate(
                [d.preamble_power for d in decodes]
            ),
            noise_power=np.concatenate([d.noise_power for d in decodes]),
            bits=np.concatenate([d.bits for d in decodes]),
            bit_powers=np.concatenate([d.bit_powers for d in decodes]),
            backend=first.backend,
            noise_mode=first.noise_mode,
            noise_version=first.noise_version,
        )


class _ReadoutPlan:
    """Cached bin layout + operators for the batched decode engine.

    Built once per receiver (the layout depends only on the assignments,
    the search width and the input domain) and reused by every round:

    * an *extended* search window per device — the legal peak-search
      window plus one interpolated guard bin on each side, so the
      located-peak ``+/- 1`` guard read never leaves the window;
    * a probe block on the (possibly strided) natural-bin grid for the
      shared noise-floor estimator, with a mask of probes that sit clear
      of every assignment;
    * :class:`SparseReadout` operators evaluating exactly those bins —
      split in two because the windows are read at symbol rate while the
      probes are read once per round;
    * the Cholesky factor of one window's AWGN covariance, for the
      readout-domain noise fast path. Every device's window is the same
      bin pattern translated along the grid, so a single ``(W, W)``
      factor serves all devices.
    """

    def __init__(
        self,
        params,
        zero_pad_factor: int,
        shifts: np.ndarray,
        search_width_bins: float,
        fold_downchirp: bool = True,
    ) -> None:
        n = params.n_samples
        zp = int(zero_pad_factor)
        n_grid = n * zp
        half = max(1, int(round(search_width_bins * zp)))
        self.half = half
        self.window_width = 2 * half + 3
        ext_offsets = np.arange(-half - 1, half + 2)
        centres = np.round(np.asarray(shifts, dtype=float) * zp).astype(int)
        window_idx = (centres[:, None] + ext_offsets[None, :]) % n_grid

        probe_stride = max(1, -(-n // _MAX_NOISE_PROBES))
        probe_idx = np.arange(0, n, probe_stride) * zp
        excluded = exclusion_mask(n_grid, zp, shifts)
        self.free_probe_mask = ~excluded[probe_idx]

        self.n_devices = window_idx.shape[0]
        self.n_probes = probe_idx.size
        self.n_samples = n
        self.window_idx = window_idx
        self.probe_idx = probe_idx
        self.window_readout = SparseReadout(
            params, zp, window_idx.ravel(), fold_downchirp=fold_downchirp
        )
        self.probe_readout = natural_probe_readout(
            params, zp, probe_stride, fold_downchirp=fold_downchirp
        )
        self._fold = fold_downchirp
        self._window_noise_factor: Optional[np.ndarray] = None
        self._payload_noise_factor: Optional[np.ndarray] = None

    def window_values(self, symbols: np.ndarray, exact: bool) -> np.ndarray:
        """Complex window spectra, ``(..., D, W)``, for a symbol batch."""
        if exact:
            flat = full_fft_values(
                self.window_readout.params,
                self.window_readout.zero_pad_factor,
                symbols,
                bin_indices=self.window_idx.ravel(),
                fold_downchirp=self._fold,
            )
        else:
            flat = self.window_readout.spectrum(symbols)
        return flat.reshape(
            flat.shape[:-1] + (self.n_devices, self.window_width)
        )

    def probe_values(self, symbols: np.ndarray, exact: bool) -> np.ndarray:
        """Complex noise-probe spectra, ``(..., n_probes)``."""
        if exact:
            return full_fft_values(
                self.probe_readout.params,
                self.probe_readout.zero_pad_factor,
                symbols,
                bin_indices=self.probe_idx,
                fold_downchirp=self._fold,
            )
        return self.probe_readout.spectrum(symbols)

    def read(self, tensor: np.ndarray, exact: bool):
        """Window + symbol-0 probe spectra of a ``(R, S, 2^SF)`` chunk.

        The exact path computes one zero-padded FFT per symbol and
        gathers both blocks from it (the probes come from the already
        computed symbol-0 rows); the sparse path runs the two
        operators, the probe one only over symbol 0.
        """
        if exact:
            grid = full_fft_values(
                self.window_readout.params,
                self.window_readout.zero_pad_factor,
                tensor,
                fold_downchirp=self._fold,
            )
            flat = grid[..., self.window_idx.ravel()]
            windows = flat.reshape(
                flat.shape[:-1] + (self.n_devices, self.window_width)
            )
            probes = grid[:, 0, self.probe_idx]
            return windows, probes
        return (
            self.window_values(tensor, False),
            self.probe_values(tensor[:, 0, :], False),
        )

    @property
    def window_noise_factor(self) -> np.ndarray:
        """Factor ``L`` of one window's unit-AWGN covariance.

        ``L @ zeta`` (``zeta`` iid CN(0,1)) has exactly the joint
        distribution of unit-power time-domain AWGN seen through one
        device's window readout. Identical for every device because the
        windows are translations of the same interpolated-bin pattern
        and the covariance depends only on bin *separations* — which is
        also why the covariance has the closed Dirichlet-kernel form
        (:meth:`repro.phy.sparse_readout.SparseReadout.analytic_noise_covariance`):
        computing it that way keeps the analytic decode path free of
        the ``(N, K)`` operator *and* makes the factor bit-identical
        between the pre-dechirp and dechirped-domain plans, so noise
        drawn with the same generator state matches across every
        composition path. Factored rank-deficiency-safe via
        :func:`repro.phy.noise.covariance_factor` (sub-bin-spaced
        readout bins are almost perfectly correlated).
        """
        if self._window_noise_factor is None:
            device0 = SparseReadout(
                self.window_readout.params,
                self.window_readout.zero_pad_factor,
                self.window_idx[0],
                fold_downchirp=False,
            )
            self._window_noise_factor = covariance_factor(
                device0.analytic_noise_covariance()
            )
        return self._window_noise_factor

    @property
    def payload_noise_factor(self) -> np.ndarray:
        """Factor of the located ``±1``-bin unit-AWGN covariance (3×3).

        The ``noise_mode="payload"`` stream draws payload-symbol noise
        only at each device's located peak and its two interpolated
        neighbours. Those are always three *adjacent* interpolated
        bins, and the window covariance is Toeplitz (it depends only on
        bin separations), so the 3×3 block is the same wherever in the
        window the peak landed — one factor serves every located
        position of every device
        (:func:`repro.phy.sparse_readout.located_bin_noise_covariance`).
        """
        if self._payload_noise_factor is None:
            self._payload_noise_factor = covariance_factor(
                located_bin_noise_covariance(
                    self.window_readout.params,
                    self.window_readout.zero_pad_factor,
                )
            )
        return self._payload_noise_factor


def _inject_readout_noise(
    plan: _ReadoutPlan,
    window_values: np.ndarray,
    probe_values: np.ndarray,
    noise_scale: np.ndarray,
    stream: NoiseStream,
):
    """Add channel AWGN directly at the window + probe readout bins.

    White time-domain noise maps linearly onto the readout, so the noise
    at the read bins is drawn with its exact per-block covariance instead
    of being materialised over the whole ``(rounds, symbols, 2^SF)``
    tensor: each device window gets correlated noise via the shared
    Cholesky factor; the natural-grid probes are mutually orthogonal and
    get iid noise of per-bin power ``2^SF * noise_power``.

    Draw layout (the leading block of *both* stream versions — the
    ``"full"`` stream passes every symbol row through here, the
    ``"payload"`` stream only the preamble rows): one window draw of the
    given ``window_values`` shape, then one probe draw. The draw
    precision follows the values: single-precision readout batches
    (``decode_readout(dtype=numpy.complex64)``) get float32 noise —
    same law, roughly half the generation and mixing cost — while the
    default double path consumes the generator exactly as before.
    """
    r, s, d, w = window_values.shape
    single = window_values.dtype == np.complex64
    real_dtype = np.float32 if single else np.float64
    factor = plan.window_noise_factor
    if single:
        factor = factor.astype(np.complex64)
        noise_scale = noise_scale.astype(np.float32)
    zeta = stream.standard_complex((r, s, d, w), dtype=real_dtype)
    window_noise = zeta @ factor.T
    window_values = window_values + (
        noise_scale[:, None, None, None] * window_noise
    )
    probe_noise = stream.standard_complex(
        probe_values.shape, dtype=real_dtype
    )
    probe_values = probe_values + (
        noise_scale[:, None] * real_dtype(np.sqrt(float(plan.n_samples)))
    ) * probe_noise
    return window_values, probe_values


def _inject_located_noise(
    plan: _ReadoutPlan,
    located_values: np.ndarray,
    noise_scale: np.ndarray,
    stream: NoiseStream,
) -> np.ndarray:
    """Add channel AWGN at the located ``±1`` payload bins only.

    ``located_values`` is ``(R, S_payload, D, 3)`` complex — each
    device's payload readout gathered at its located peak and the two
    interpolated neighbours. The three bins are adjacent, so their
    joint noise law is the shared 3×3 Toeplitz factor
    (:attr:`_ReadoutPlan.payload_noise_factor`) whatever the located
    position: the marginal of exactly the noise the ``"full"`` stream
    would have drawn there, at ~``W/3`` fewer draws per payload symbol.
    This is the trailing block of the version-2 (``"payload"``) stream,
    drawn after the preamble/probe block of
    :func:`_inject_readout_noise`.
    """
    single = located_values.dtype == np.complex64
    real_dtype = np.float32 if single else np.float64
    factor = plan.payload_noise_factor
    if single:
        factor = factor.astype(np.complex64)
        noise_scale = noise_scale.astype(np.float32)
    zeta = stream.standard_complex(located_values.shape, dtype=real_dtype)
    return located_values + (
        noise_scale[:, None, None, None] * (zeta @ factor.T)
    )


class NetScatterReceiver:
    """Decodes concurrent distributed-CSS transmissions at the AP.

    Parameters
    ----------
    config:
        The network's operating point.
    assignments:
        Map of ``device_id -> cyclic shift`` currently in force (produced
        by :class:`repro.core.allocation.AllocationTable`).
    search_width_bins:
        Half-width (in natural bins) of the peak-search window around each
        assigned shift. Defaults to a quarter of the SKIP gap: wide enough
        to absorb the sub-bin residual offsets that survive preamble
        synchronisation, while keeping the window edge more than a full
        bin away from a SKIP-spaced neighbour's main lobe.
    readout:
        Spectral backend of the batched round decoder. ``"sparse"``
        (default) evaluates only each device's window bins plus the noise
        probes through a precomputed matmul; ``"fft"`` is the opt-in
        exact path computing the full zero-padded FFT and gathering the
        same bins. Both produce bit-identical decisions (the sparse
        operator *is* the padded FFT restricted to the read columns).
        ``"analytic"`` declares the receiver's primary entry point to be
        :meth:`decode_readout` (tone-sum rounds evaluated via the
        closed-form Dirichlet kernel, never building the operator);
        tensor inputs handed to :meth:`decode_rounds` then fall back to
        the sparse backend. ``"auto"`` picks the predicted-cheapest
        backend per call from the host-calibrated cost model
        (:mod:`repro.phy.backend_plan`): :meth:`decode_readout` selects
        among all three, :meth:`decode_rounds` between ``sparse`` and
        ``fft``. Decisions are bit-identical whichever backend runs.
    planner:
        Optional :class:`repro.phy.backend_plan.BackendPlanner`
        overriding the host-calibrated planner under ``readout="auto"``
        (tests pin crossovers with synthetic coefficients this way).
    noise_mode:
        Engine-noise draw layout used when ``decode_rounds`` /
        ``decode_readout`` inject readout-domain AWGN
        (``noise_snr_db=``). ``"payload"`` (default, stream version 2)
        draws full window noise for the preamble symbols but payload
        noise only at each device's located ``±1`` bins — ~3× fewer
        window draws per round with exactly the same decision
        statistics (payload decisions never read the other bins).
        ``"full"`` (stream version 1) draws every readout bin of every
        symbol, bit-identical to the engine's historical streams. The
        per-call ``noise_mode=`` argument of the decode entry points
        overrides this default; the stream actually used is stamped on
        :attr:`RoundsDecode.noise_mode` / ``noise_version``.
    """

    def __init__(
        self,
        config: NetScatterConfig,
        assignments: Dict[int, int],
        search_width_bins: Optional[float] = None,
        detection_snr_db: float = 3.0,
        readout: str = "sparse",
        planner=None,
        noise_mode: str = "payload",
    ) -> None:
        if not assignments:
            raise DecodingError("receiver needs at least one assignment")
        shifts = list(assignments.values())
        if len(set(shifts)) != len(shifts):
            raise DecodingError("cyclic shifts must be unique per device")
        for shift in shifts:
            if not 0 <= shift < config.n_bins:
                raise DecodingError(f"shift {shift} out of range")
        self._config = config
        self._assignments = dict(assignments)
        self._params = config.chirp_params
        self._demod = Demodulator(
            self._params, zero_pad_factor=config.zero_pad_factor
        )
        if search_width_bins is None:
            search_width_bins = config.skip / 4.0
        if readout not in ("sparse", "fft", "analytic", "auto"):
            raise DecodingError(
                "readout must be 'sparse', 'fft', 'analytic' or 'auto', "
                f"got {readout!r}"
            )
        if noise_mode not in NOISE_MODES:
            raise DecodingError(
                f"noise_mode must be one of {NOISE_MODES}, "
                f"got {noise_mode!r}"
            )
        self._search_width = float(search_width_bins)
        self._detection_snr = float(detection_snr_db)
        self._readout = readout
        self._planner = planner
        self._noise_mode = noise_mode
        self._plans: Dict[bool, _ReadoutPlan] = {}
        self._sync = PreambleSynchronizer(self._params)

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def assignments(self) -> Dict[int, int]:
        return dict(self._assignments)

    # ------------------------------------------------------------------ #
    # symbol-level decoding (shared by both simulation fidelities)
    # ------------------------------------------------------------------ #

    def decode_symbols(
        self,
        preamble_results: Sequence[DechirpResult],
        payload_results: Sequence[DechirpResult],
    ) -> FrameDecode:
        """Decode dechirped preamble + payload symbol spectra.

        This is the core algorithm; it assumes frame timing is already
        known (either via :meth:`decode_frame`'s synchroniser or because
        the fast simulation path composes aligned symbols).
        """
        if not preamble_results:
            raise DecodingError("need at least one preamble symbol")
        devices: Dict[int, DeviceDecode] = {}
        noise_floor = self._estimate_noise(preamble_results[0])
        zp = self._config.zero_pad_factor
        n_bins = preamble_results[0].n_bins
        for device_id, shift in self._assignments.items():
            # Locate the device's exact sub-bin peak from the summed
            # preamble spectra: per-packet timing/CFO offsets are constant
            # across the packet, so the payload can be read at the located
            # interpolated bin instead of a wide window (which would pick
            # up noise maxima and neighbour leakage).
            half = max(1, int(round(self._search_width * zp)))
            window = (
                np.arange(-half, half + 1) + int(round(shift * zp))
            ) % n_bins
            summed = np.zeros(window.size)
            for r in preamble_results:
                summed += r.power[window]
            located = int(window[int(np.argmax(summed))])
            powers = [r.power_at_index(located) for r in preamble_results]
            min_power = min(powers)
            detected = min_power > noise_floor * (
                10.0 ** (self._detection_snr / 10.0)
            )
            decode = DeviceDecode(
                device_id=device_id,
                shift=shift,
                detected=detected,
                preamble_power=float(np.mean(powers)) if detected else 0.0,
                noise_power=noise_floor,
            )
            if detected:
                for result in payload_results:
                    power = result.power_at_index(located)
                    decode.bit_powers.append(power)
                    decode.bits.append(int(power > decode.threshold))
            devices[device_id] = decode
        return FrameDecode(devices=devices)

    def _estimate_noise(self, result: DechirpResult) -> float:
        """Noise floor estimate excluding every assigned neighbourhood."""
        return self._demod.noise_floor(
            result, exclude_bins=list(self._assignments.values())
        )

    # ------------------------------------------------------------------ #
    # stream-level decoding (waveform path)
    # ------------------------------------------------------------------ #

    def decode_frame(
        self,
        stream: np.ndarray,
        n_payload_bits: int,
        n_preamble_upchirps: int = 6,
        n_preamble_downchirps: int = 2,
        synchronize: bool = True,
        start_sample: int = 0,
    ) -> FrameDecode:
        """Decode a raw baseband stream containing one concurrent frame."""
        stream = np.asarray(stream, dtype=complex)
        n = self._params.n_samples
        if synchronize:
            sync = PreambleSynchronizer(
                self._params, n_preamble_upchirps, n_preamble_downchirps
            )
            coarse = sync.synchronize(stream).start_sample
            start_sample = sync.refine_with_shifts(
                stream, coarse, list(self._assignments.values())
            )
        preamble_up_len = n_preamble_upchirps * n
        preamble_len = (n_preamble_upchirps + n_preamble_downchirps) * n
        payload_len = n_payload_bits * n
        end = start_sample + preamble_len + payload_len
        if end > stream.size:
            raise DecodingError(
                f"stream too short: need {end} samples, have {stream.size}"
            )
        preamble_results = self._demod.dechirp_frame(
            stream[start_sample : start_sample + preamble_up_len]
        )
        payload_results = self._demod.dechirp_frame(
            stream[start_sample + preamble_len : end]
        )
        decode = self.decode_symbols(preamble_results, payload_results)
        decode.start_sample = start_sample
        return decode

    # ------------------------------------------------------------------ #
    # convenience entry point for the fast path
    # ------------------------------------------------------------------ #

    def decode_fast_symbols(
        self,
        symbols: Sequence[np.ndarray],
        n_preamble_upchirps: int = 6,
    ) -> FrameDecode:
        """Decode pre-aligned raw symbols from the fast composition path."""
        if len(symbols) < n_preamble_upchirps:
            raise DecodingError("fewer symbols than preamble length")
        results = [self._demod.dechirp(s) for s in symbols]
        return self.decode_symbols(
            results[:n_preamble_upchirps], results[n_preamble_upchirps:]
        )

    # ------------------------------------------------------------------ #
    # vectorised round decoding (used by the network simulator)
    # ------------------------------------------------------------------ #

    @property
    def readout_plan(self) -> _ReadoutPlan:
        """The cached sparse-readout plan for pre-dechirp symbol input."""
        return self._readout_plan(dechirped=False)

    def _readout_plan(self, dechirped: bool) -> _ReadoutPlan:
        """Plan for the requested input domain, built on first use."""
        fold = not dechirped
        if fold not in self._plans:
            self._plans[fold] = _ReadoutPlan(
                self._params,
                self._config.zero_pad_factor,
                np.array(
                    [self._assignments[d] for d in self._assignments],
                    dtype=float,
                ),
                self._search_width,
                fold_downchirp=fold,
            )
        return self._plans[fold]

    def decode_round_matrix(
        self,
        symbol_matrix: np.ndarray,
        n_preamble_upchirps: int = 6,
    ) -> FrameDecode:
        """Decode a whole round at once from a (n_symbols, 2^SF) matrix.

        Numerically identical to :meth:`decode_fast_symbols`, but the
        dechirp, spectral readout and per-device window search run as
        batched numpy operations — necessary for 256-device round
        simulations. One-round convenience wrapper of
        :meth:`decode_rounds`.
        """
        symbol_matrix = np.asarray(symbol_matrix, dtype=complex)
        n = self._params.n_samples
        if symbol_matrix.ndim != 2 or symbol_matrix.shape[1] != n:
            raise DecodingError(
                f"symbol matrix must be (n_symbols, {n})"
            )
        return self.decode_rounds(
            symbol_matrix[None, :, :], n_preamble_upchirps
        ).frame(0)

    def decode_rounds(
        self,
        symbol_tensor: np.ndarray,
        n_preamble_upchirps: int = 6,
        dechirped: bool = False,
        noise_snr_db=None,
        rng=None,
        signal_power: float = 1.0,
        noise_mode: Optional[str] = None,
    ) -> RoundsDecode:
        """Decode a whole Monte-Carlo batch of rounds in one pass.

        ``symbol_tensor`` is ``(n_rounds, n_symbols, 2^SF)``: every round
        of a sweep point composed up front (see
        :func:`repro.core.dcss.compose_rounds`). The spectral readout is
        one matmul over the flattened batch, the peak location / noise
        floor / bit decisions are vectorised across rounds, and memory is
        bounded by processing the batch in round chunks.

        Parameters
        ----------
        dechirped:
            When True the tensor is already in the dechirped domain
            (``compose_rounds(..., respread=False)``); the readout then
            skips the downchirp fold. The re-spread/de-spread pair is a
            unit-modulus rotation, so both domains decode identically.
        noise_snr_db:
            When given (scalar, or one value per round), channel AWGN at
            that SNR — same reference convention as
            :func:`repro.channel.awgn.awgn` — is injected *at the
            readout bins* using the exact covariance of white noise seen
            through the readout (see
            :meth:`repro.phy.sparse_readout.SparseReadout.noise_covariance`).
            Each device's window block and each probe bin get exactly
            their physical joint noise law; only the cross-correlation
            between different devices' windows (and windows vs probes)
            is dropped, which no per-device statistic observes. This
            skips generating noise over the full time-domain tensor —
            the dominant cost of large noisy sweeps. Requires ``rng``.
        noise_mode:
            Per-call override of the receiver's engine-noise stream
            (``"payload"`` or ``"full"``, see the constructor); ``None``
            uses the receiver's configured mode. Ignored when
            ``noise_snr_db`` is ``None`` (the decode is then stamped
            ``noise_mode="none"``, stream version 0).
        """
        symbol_tensor = np.asarray(symbol_tensor, dtype=complex)
        n = self._params.n_samples
        if symbol_tensor.ndim != 3 or symbol_tensor.shape[2] != n:
            raise DecodingError(
                f"symbol tensor must be (n_rounds, n_symbols, {n})"
            )
        n_rounds, n_symbols, _ = symbol_tensor.shape
        if n_symbols < n_preamble_upchirps:
            raise DecodingError("fewer symbols than preamble length")

        noise_scale = self._noise_scale(
            noise_snr_db, rng, signal_power, n_rounds
        )
        stream = self._noise_stream(noise_scale, rng, noise_mode)
        if self._readout == "fft":
            backend = "fft"
        elif self._readout == "auto":
            backend = self._backend_planner().select(
                self._workload(
                    n_rounds,
                    n_symbols,
                    0,
                    dechirped,
                    tone_input=False,
                    stream=stream,
                    n_preamble=n_preamble_upchirps,
                )
            )
            if backend not in ("sparse", "fft"):
                raise DecodingError(
                    f"planner chose {backend!r} for a tensor input; "
                    "only 'sparse' and 'fft' apply"
                )
        else:
            # Tensor inputs cannot use the closed-form kernel; analytic
            # receivers fall back to the sparse operator here.
            backend = "sparse"
        return self._decode_tensor(
            symbol_tensor,
            n_preamble_upchirps,
            dechirped,
            backend,
            noise_scale,
            stream,
        )

    def _noise_stream(
        self, noise_scale, rng, noise_mode: Optional[str]
    ) -> Optional[NoiseStream]:
        """The versioned draw stream for this decode, or ``None``.

        Built once per decode call and threaded through every chunk, so
        chunked batches consume one generator sequentially — the same
        consumption pattern the pre-stream engine had.
        """
        if noise_mode is not None and noise_mode not in NOISE_MODES:
            raise DecodingError(
                f"noise_mode must be one of {NOISE_MODES}, "
                f"got {noise_mode!r}"
            )
        if noise_scale is None:
            return None
        return NoiseStream(rng, noise_mode or self._noise_mode)

    def _decode_tensor(
        self,
        symbol_tensor: np.ndarray,
        n_preamble_upchirps: int,
        dechirped: bool,
        backend: str,
        noise_scale,
        stream: Optional[NoiseStream],
    ) -> RoundsDecode:
        """Chunked decode of a symbol tensor through one spectral backend."""
        n = self._params.n_samples
        n_rounds, n_symbols, _ = symbol_tensor.shape
        plan = self._readout_plan(dechirped)
        if backend == "fft":
            # The exact path materialises the full zero-padded grid.
            elements_per_round = (
                n_symbols * n * self._config.zero_pad_factor
            )
        else:
            elements_per_round = n_symbols * plan.window_readout.n_bins
        chunk = max(1, _CHUNK_ELEMENT_BUDGET // max(1, elements_per_round))
        pieces = [
            self._decode_chunk(
                symbol_tensor[start : start + chunk],
                n_preamble_upchirps,
                plan,
                backend == "fft",
                None if noise_scale is None else noise_scale[
                    start : start + chunk
                ],
                stream,
            )
            for start in range(0, n_rounds, chunk)
        ]
        return self._assemble_decode(pieces, backend, stream)

    def _backend_planner(self):
        """The cost-model planner used by ``readout="auto"``."""
        if self._planner is None:
            from repro.phy.backend_plan import host_planner

            self._planner = host_planner()
        return self._planner

    def _workload(
        self,
        n_rounds: int,
        n_symbols: int,
        n_tones: int,
        dechirped: bool,
        tone_input: bool,
        stream: Optional[NoiseStream] = None,
        n_preamble: int = 6,
    ):
        """This receiver's readout shape as a planner workload.

        The engine-noise stream (when one will be drawn) rides along so
        the cost model can account the draw volume of the selected
        ``noise_mode`` — the noise term is backend-common, but carrying
        it keeps the predicted totals honest against wall-clock.
        """
        from repro.phy.backend_plan import ReadoutWorkload

        plan = self._readout_plan(dechirped)
        return ReadoutWorkload(
            n_rounds=n_rounds,
            n_symbols=n_symbols,
            n_devices=n_tones,
            n_samples=self._params.n_samples,
            zero_pad_factor=self._config.zero_pad_factor,
            window_bins=plan.window_readout.n_bins,
            probe_bins=plan.probe_readout.n_bins,
            tone_input=tone_input,
            window_width=plan.window_width,
            n_preamble=n_preamble,
            noise_mode=None if stream is None else stream.mode,
        )

    def decode_readout(
        self,
        effective_bins: np.ndarray,
        amplitudes: np.ndarray,
        phases_rad: np.ndarray,
        bit_tensor: np.ndarray,
        n_preamble_upchirps: int = 6,
        noise_snr_db=None,
        rng=None,
        signal_power: float = 1.0,
        dtype=None,
        noise_mode: Optional[str] = None,
    ) -> RoundsDecode:
        """Analytic entry point: decode tone-sum rounds waveform-free.

        Takes the *composition inputs* of
        :func:`repro.core.dcss.compose_rounds` —
        ``(n_rounds, n_devices)`` fractional effective bins, amplitudes
        and phases plus the ``(n_rounds, n_symbols, n_devices)`` keying
        tensor — and evaluates each device tone directly at this
        receiver's readout bins via the closed-form Dirichlet kernel
        (:func:`repro.core.dcss.compose_readout`). No
        ``(rounds, symbols, 2^SF)`` tensor is ever materialised and the
        sparse-readout operator is never built; the values then flow
        through exactly the detection/decision logic of
        :meth:`decode_rounds`, so decisions match the time-domain path
        bit for bit on tone-sum inputs.

        ``noise_snr_db`` / ``rng`` / ``signal_power`` / ``noise_mode``
        compose with the exact readout-domain AWGN injection of
        :meth:`decode_rounds` (same covariance, same stream layout and
        draw order — a shared generator state yields identical noise on
        both paths for single-chunk batches, whichever ``noise_mode``
        is in force). ``dtype=numpy.complex64`` switches the kernel and
        matmuls to single precision for very large device counts.

        Under ``readout="auto"`` the calibrated cost model picks the
        cheapest spectral backend for this batch's occupancy: the
        closed-form path below small crossover occupancies, otherwise
        the tone sum is synthesised once
        (:func:`repro.core.dcss.compose_rounds`) and routed through the
        sparse-matmul or padded-FFT readout — whichever the model
        predicts faster. Decisions are bit-identical either way; the
        chosen backend is reported in :attr:`RoundsDecode.backend`.
        """
        from repro.core.dcss import compose_readout, compose_rounds

        effective_bins = np.asarray(effective_bins, dtype=float)
        bit_tensor = np.asarray(bit_tensor, dtype=float)
        if effective_bins.ndim != 2 or bit_tensor.ndim != 3:
            raise DecodingError(
                "effective_bins must be (n_rounds, n_devices) and "
                "bit_tensor (n_rounds, n_symbols, n_devices)"
            )
        amplitudes = np.asarray(amplitudes, dtype=float)
        phases_rad = np.asarray(phases_rad, dtype=float)
        n_rounds, n_symbols, _ = bit_tensor.shape
        if n_symbols < n_preamble_upchirps:
            raise DecodingError("fewer symbols than preamble length")
        noise_scale = self._noise_scale(
            noise_snr_db, rng, signal_power, n_rounds
        )
        stream = self._noise_stream(noise_scale, rng, noise_mode)
        if self._readout == "auto":
            backend = self._backend_planner().select(
                self._workload(
                    n_rounds,
                    n_symbols,
                    effective_bins.shape[1],
                    dechirped=True,
                    tone_input=True,
                    stream=stream,
                    n_preamble=n_preamble_upchirps,
                )
            )
            if backend not in ("analytic", "sparse", "fft"):
                raise DecodingError(
                    f"planner chose unknown backend {backend!r}"
                )
            if backend != "analytic":
                # Synthesise the tone sum in round chunks, in the
                # dechirped domain (the re-spread/de-spread rotation
                # cancels through the receiver), and run the selected
                # waveform backend on each chunk — the composed tensor
                # honours the same element budget as the decode, so
                # peak memory stays bounded for arbitrary batch sizes.
                n = self._params.n_samples
                per_round = (n_symbols + effective_bins.shape[1]) * n
                chunk = max(1, _CHUNK_ELEMENT_BUDGET // per_round)
                pieces = []
                for start in range(0, n_rounds, chunk):
                    stop = start + chunk
                    symbols = compose_rounds(
                        self._params,
                        effective_bins[start:stop],
                        amplitudes[start:stop],
                        phases_rad[start:stop],
                        bit_tensor[start:stop],
                        respread=False,
                    )
                    pieces.append(
                        self._decode_tensor(
                            symbols,
                            n_preamble_upchirps,
                            True,
                            backend,
                            None if noise_scale is None else noise_scale[
                                start:stop
                            ],
                            stream,
                        )
                    )
                return RoundsDecode.concatenate(pieces)
        # The kernel is domain-free (it reads the dechirped tone), so
        # use the dechirped-domain plan: identical bin layout and noise
        # factor, no downchirp fold anywhere.
        plan = self._readout_plan(dechirped=True)
        n_tx = effective_bins.shape[1]
        elements_per_round = n_symbols * plan.window_readout.n_bins + n_tx * (
            plan.window_readout.n_bins + plan.probe_readout.n_bins
        )
        chunk = max(1, _CHUNK_ELEMENT_BUDGET // max(1, elements_per_round))
        pieces = []
        for start in range(0, n_rounds, chunk):
            stop = start + chunk
            window_flat = compose_readout(
                self._params,
                effective_bins[start:stop],
                amplitudes[start:stop],
                phases_rad[start:stop],
                bit_tensor[start:stop],
                plan.window_readout,
                dtype=dtype,
                n_preamble_rows=n_preamble_upchirps,
            )
            window_values = window_flat.reshape(
                window_flat.shape[:2] + (plan.n_devices, plan.window_width)
            )
            # The noise floor reads only the first symbol's probes.
            probe_values = compose_readout(
                self._params,
                effective_bins[start:stop],
                amplitudes[start:stop],
                phases_rad[start:stop],
                bit_tensor[start:stop, :1],
                plan.probe_readout,
                dtype=dtype,
            )[:, 0, :]
            pieces.append(
                self._decide_chunk(
                    window_values,
                    probe_values,
                    n_preamble_upchirps,
                    plan,
                    None if noise_scale is None else noise_scale[
                        start:stop
                    ],
                    stream,
                )
            )
        return self._assemble_decode(pieces, "analytic", stream)

    def _noise_scale(self, noise_snr_db, rng, signal_power, n_rounds):
        """Validate and broadcast the readout-noise amplitude per round."""
        if noise_snr_db is None:
            return None
        if rng is None:
            raise DecodingError("readout-domain noise needs an rng")
        if signal_power <= 0:
            raise DecodingError("signal_power must be positive")
        snr = np.asarray(noise_snr_db, dtype=float)
        if snr.ndim > 1 or (snr.ndim == 1 and snr.size != n_rounds):
            raise DecodingError(
                "noise_snr_db must be scalar or one value per round"
            )
        return np.broadcast_to(
            np.sqrt(signal_power / 10.0 ** (snr / 10.0)), (n_rounds,)
        )

    def _assemble_decode(
        self,
        pieces,
        backend: str,
        stream: Optional[NoiseStream] = None,
    ) -> RoundsDecode:
        """Stack per-chunk decision arrays into one :class:`RoundsDecode`."""
        device_ids = list(self._assignments)
        shifts = np.array(
            [self._assignments[d] for d in device_ids], dtype=int
        )
        return RoundsDecode(
            device_ids=device_ids,
            shifts=shifts,
            detected=np.concatenate([p[0] for p in pieces], axis=0),
            preamble_power=np.concatenate([p[1] for p in pieces], axis=0),
            noise_power=np.concatenate([p[2] for p in pieces], axis=0),
            bits=np.concatenate([p[3] for p in pieces], axis=0),
            bit_powers=np.concatenate([p[4] for p in pieces], axis=0),
            backend=backend,
            noise_mode="none" if stream is None else stream.mode,
            noise_version=0 if stream is None else stream.version,
        )

    def _decode_chunk(
        self,
        tensor: np.ndarray,
        n_preamble: int,
        plan: _ReadoutPlan,
        exact: bool,
        noise_scale,
        stream: Optional[NoiseStream],
    ):
        """Vectorised decode of one round chunk -> per-round arrays."""
        window_values, probe_values = plan.read(tensor, exact)
        return self._decide_chunk(
            window_values, probe_values, n_preamble, plan, noise_scale,
            stream,
        )

    def _decide_chunk(
        self,
        window_values: np.ndarray,
        probe_values: np.ndarray,
        n_preamble: int,
        plan: _ReadoutPlan,
        noise_scale,
        stream: Optional[NoiseStream],
    ):
        """Detection/decision logic on readout values, however composed.

        ``window_values`` is ``(R, S, D, W)`` complex, ``probe_values``
        ``(R, n_probes)`` complex (symbol 0 only). Shared verbatim by
        the time-domain (:meth:`decode_rounds`) and analytic
        (:meth:`decode_readout`) entry points, which is what makes their
        decisions comparable bit for bit.

        Engine noise follows the stream's layout. The ``"full"`` stream
        (version 1) noise-loads the whole window tensor up front — the
        historical draw order, pinned bit-for-bit by the version-1
        goldens. The ``"payload"`` stream (version 2) noise-loads only
        the preamble rows and probes, locates each device's peak from
        those noisy preambles (exactly the full stream's located-bin
        law), then draws payload noise only at the located ``±1`` bins
        through the shared 3×3 Toeplitz factor. Payload decisions read
        nothing but those three bins, so the reduced stream's decision
        statistics are *identical*, at ~3× fewer window draws per
        46-symbol round.
        """
        payload_mode = stream is not None and stream.mode == "payload"
        if noise_scale is not None and not payload_mode:
            window_values, probe_values = _inject_readout_noise(
                plan, window_values, probe_values, noise_scale, stream
            )
        if payload_mode:
            preamble_values, probe_values = _inject_readout_noise(
                plan,
                window_values[:, :n_preamble],
                probe_values,
                noise_scale,
                stream,
            )
            preamble_windows = (
                preamble_values.real**2 + preamble_values.imag**2
            )
            preamble_sum = preamble_windows.sum(axis=1)
            located = preamble_sum[:, :, 1:-1].argmax(axis=2) + 1
            # (R, 1, D, 3) gather of located-1 .. located+1 along the
            # window axis; located is interior so the reads stay inside.
            gather = located[:, None, :, None] + np.arange(-1, 2)
            preamble_powers = np.take_along_axis(
                preamble_windows, gather, axis=3
            ).max(axis=3)
            payload_values = _inject_located_noise(
                plan,
                np.take_along_axis(
                    window_values[:, n_preamble:], gather, axis=3
                ),
                noise_scale,
                stream,
            )
            payload_powers = (
                payload_values.real**2 + payload_values.imag**2
            ).max(axis=3)
        else:
            windows = window_values.real**2 + window_values.imag**2
            # windows: (R, S, D, W) on the extended grid; interior
            # positions [1, W-2] are the legal search window, the
            # outermost bin on each side exists only so the +/- 1 guard
            # read below stays inside.
            preamble_sum = windows[:, :n_preamble].sum(axis=1)
            located = preamble_sum[:, :, 1:-1].argmax(axis=2) + 1

            def read_at(delta: int) -> np.ndarray:
                idx = (located + delta)[:, None, :, None]
                return np.take_along_axis(windows, idx, axis=3)[..., 0]

            symbol_powers = np.maximum(
                np.maximum(read_at(-1), read_at(0)), read_at(1)
            )
            preamble_powers = symbol_powers[:, :n_preamble]
            payload_powers = symbol_powers[:, n_preamble:]

        first_probes = probe_values.real**2 + probe_values.imag**2
        # Shared noise rule: median of the signal-free probe bins of the
        # first preamble symbol, falling back to a low quantile of the
        # whole probe grid under full occupancy.
        noise = np.atleast_1d(
            estimate_noise_floor(
                first_probes[:, plan.free_probe_mask],
                fallback_powers=first_probes,
            )
        )
        threshold_scale = 10.0 ** (self._detection_snr / 10.0)

        detected = preamble_powers.min(axis=1) > (
            noise[:, None] * threshold_scale
        )
        preamble_means = preamble_powers.mean(axis=1)
        bits = (
            payload_powers > 0.5 * preamble_means[:, None, :]
        ).astype(np.uint8)
        return detected, preamble_means, noise, bits, payload_powers
