"""NetScatter core: distributed CSS coding and its supporting machinery.

This is the paper's contribution: the per-device ON-OFF keyed cyclic-shift
encoder, the single-FFT concurrent receiver, power-aware cyclic-shift
allocation, fine-grained power control policy, bandwidth aggregation and
the capacity analysis.
"""

from repro.core.allocation import AllocationTable, power_aware_allocation
from repro.core.config import NetScatterConfig, TABLE1_CONFIGS
from repro.core.dcss import (
    DeviceTransmission,
    compose_symbol,
    compose_frame,
    compose_readout,
    compose_round_matrix,
    compose_rounds,
)
from repro.core.receiver import (
    NetScatterReceiver,
    FrameDecode,
    DeviceDecode,
    RoundsDecode,
)

__all__ = [
    "AllocationTable",
    "power_aware_allocation",
    "NetScatterConfig",
    "TABLE1_CONFIGS",
    "DeviceTransmission",
    "compose_symbol",
    "compose_frame",
    "compose_readout",
    "compose_round_matrix",
    "compose_rounds",
    "NetScatterReceiver",
    "FrameDecode",
    "DeviceDecode",
    "RoundsDecode",
]
