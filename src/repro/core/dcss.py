"""Distributed CSS frame composition — the network-side encoder view.

The paper's Fig. 2b: each concurrent device ON-OFF-keys its own assigned
cyclic shift, and the air sums everything. This module composes those
sums for simulation at two fidelities:

* :func:`compose_frame` — waveform fidelity: per-device packets rendered
  as complex baseband, each delayed by its hardware latency and rotated
  by its CFO, then summed on a common timeline.
* :func:`compose_symbol` — bin-domain fast path: one symbol of N devices
  composed directly as a sum of complex tones on the dechirped grid. A
  device at shift ``k`` with residual offset ``delta`` contributes the
  tone ``a * exp(j*(2*pi*(k + delta)*n/N + phase))``, which is *exactly*
  what the dechirped waveform of that device looks like; this makes
  10^4-symbol BER sweeps (Fig. 12) affordable.
* :func:`compose_readout` — analytic fidelity: the readout values of a
  whole batch of tone-sum rounds via the closed-form Dirichlet kernel,
  with no waveform of any length in between. Equal to running
  :func:`compose_rounds` through a :class:`SparseReadout` to round-off,
  at a cost that scales with devices x readout bins instead of
  symbols x ``2^SF``.

All paths produce values the same :class:`NetScatterReceiver` decodes.

Noise never enters here: composition is deterministic given its draw
inputs, and each decode entry point adds its own AWGN — time-domain
(:func:`repro.channel.awgn.awgn_rounds`) over :func:`compose_rounds`
tensors, or readout-domain from a versioned
:class:`repro.phy.noise.NoiseStream` when the engine injects noise at
the bins :func:`compose_readout` evaluated (``noise_mode="payload"``
draws only the located ``±1`` payload bins; ``"full"`` draws them
all). Keeping composition noise-free is what lets one composed batch
be decoded under several noise modes, backends and seeds for
equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams, downchirp
from repro.phy.sparse_readout import SparseReadout
from repro.phy.onoff import OnOffKeyedTransmitter
from repro.utils.conversions import (
    amplitude_from_db,
    freq_offset_to_bins,
    timing_offset_to_bins,
)
from repro.utils.rng import RngLike, make_rng
from repro.utils.sampling import apply_cfo, fractional_delay


@dataclass
class DeviceTransmission:
    """One device's contribution to a concurrent frame.

    Attributes
    ----------
    shift:
        Assigned cyclic shift (FFT bin).
    bits:
        OOK payload bits for this frame.
    power_gain_db:
        Amplitude scaling relative to a unit-power device (combines the
        tag's power-control gain and its channel gain relative to the
        reference device).
    delay_s / cfo_hz:
        Per-packet impairments applied by the composer.
    """

    shift: int
    bits: Sequence[int]
    power_gain_db: float = 0.0
    delay_s: float = 0.0
    cfo_hz: float = 0.0
    phase_rad: float = field(default=0.0)

    def bin_offset(self, params: ChirpParams) -> float:
        """Residual FFT-bin offset the receiver observes.

        A *late* transmission slides down the dechirped grid (the window
        sees an earlier slice of the chirp), so timing delay contributes
        ``-dt * BW``; a positive CFO contributes ``+df * 2^SF / BW``.
        The paper's Section 3.2.1 quotes the unsigned magnitude.
        """
        return freq_offset_to_bins(
            self.cfo_hz, params.bandwidth_hz, params.spreading_factor
        ) - timing_offset_to_bins(self.delay_s, params.bandwidth_hz)


def compose_symbol(
    params: ChirpParams,
    actives: Sequence[DeviceTransmission],
    symbol_index: int = 0,
    rng: RngLike = None,
    random_phases: bool = True,
) -> np.ndarray:
    """Bin-domain fast path: one *pre-dechirp* symbol of concurrent devices.

    Each device whose bit at ``symbol_index`` is 1 contributes the chirp
    tone at ``shift + bin_offset``; the output is a time-domain symbol
    (length ``2^SF``) that, multiplied by the downchirp, yields the exact
    tone sum. Random per-device phases model the unsynchronised carrier
    phases of independent reflections.
    """
    n = params.n_samples
    t = np.arange(n)
    total_tone = np.zeros(n, dtype=complex)
    generator = make_rng(rng)
    for tx in actives:
        bits = list(tx.bits)
        if symbol_index >= len(bits):
            raise ConfigurationError(
                f"symbol index {symbol_index} beyond the {len(bits)}-bit payload"
            )
        if bits[symbol_index] == 0:
            continue
        effective_bin = tx.shift + tx.bin_offset(params)
        amplitude = amplitude_from_db(tx.power_gain_db)
        phase = tx.phase_rad
        if random_phases:
            phase = float(generator.uniform(0.0, 2.0 * np.pi))
        total_tone += amplitude * np.exp(
            1j * (2.0 * np.pi * effective_bin * t / n + phase)
        )
    # Re-spread so the output is a standard pre-dechirp symbol: the
    # receiver will multiply by the downchirp and recover the tone sum.
    return total_tone * _respread_cached(params)


def compose_preamble_and_payload_symbols(
    params: ChirpParams,
    actives: Sequence[DeviceTransmission],
    n_preamble_upchirps: int = 6,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Fast-path frame: preamble upchirp symbols then OOK payload symbols.

    Preamble symbols are 'all devices on'; payload symbol ``i`` keys each
    device by its own bit. Downchirp preamble symbols are omitted on this
    path (the fast path assumes frame timing is known; the waveform path
    exercises synchronisation).
    """
    generator = make_rng(rng)
    n_payload = len(list(actives[0].bits)) if actives else 0
    for tx in actives:
        if len(list(tx.bits)) != n_payload:
            raise ConfigurationError("all devices must send equal-length payloads")
    # A device's carrier phase is constant over its packet: draw once.
    marks = [
        DeviceTransmission(
            shift=tx.shift,
            bits=[1] + list(tx.bits),
            power_gain_db=tx.power_gain_db,
            delay_s=tx.delay_s,
            cfo_hz=tx.cfo_hz,
            phase_rad=float(generator.uniform(0.0, 2.0 * np.pi)),
        )
        for tx in actives
    ]
    symbols: List[np.ndarray] = []
    for _ in range(n_preamble_upchirps):
        symbols.append(
            compose_symbol(params, marks, 0, random_phases=False)
        )
    for i in range(n_payload):
        symbols.append(
            compose_symbol(params, marks, i + 1, random_phases=False)
        )
    return symbols


def compose_frame(
    params: ChirpParams,
    actives: Sequence[DeviceTransmission],
    n_preamble_upchirps: int = 6,
    n_preamble_downchirps: int = 2,
    leading_silence_samples: int = 0,
    trailing_silence_samples: int = 0,
    rng: RngLike = None,
) -> np.ndarray:
    """Waveform fidelity: full concurrent frame on a common timeline.

    Every device's complete packet (preamble + OOK payload) is rendered,
    fractionally delayed by its ``delay_s``, rotated by its ``cfo_hz``,
    scaled and summed. Optional silence padding lets synchronisation tests
    search for the packet start.
    """
    generator = make_rng(rng)
    n_payload_bits = len(list(actives[0].bits)) if actives else 0
    for tx in actives:
        if len(list(tx.bits)) != n_payload_bits:
            raise ConfigurationError("all devices must send equal-length payloads")
    n_symbols = n_preamble_upchirps + n_preamble_downchirps + n_payload_bits
    frame_len = n_symbols * params.n_samples
    total = np.zeros(
        leading_silence_samples + frame_len + trailing_silence_samples,
        dtype=complex,
    )
    for tx in actives:
        transmitter = OnOffKeyedTransmitter(
            params, tx.shift, power_gain_db=tx.power_gain_db
        )
        packet = transmitter.packet(
            list(tx.bits), n_preamble_upchirps, n_preamble_downchirps
        )
        delay_samples = tx.delay_s * params.bandwidth_hz
        if abs(delay_samples) > 0:
            packet = fractional_delay(packet, delay_samples)
        if tx.cfo_hz != 0.0:
            packet = apply_cfo(packet, tx.cfo_hz, params.bandwidth_hz)
        phase = float(generator.uniform(0.0, 2.0 * np.pi))
        total[
            leading_silence_samples : leading_silence_samples + frame_len
        ] += packet * np.exp(1j * phase)
    return total


def ideal_aggregate_power(actives: Sequence[DeviceTransmission]) -> float:
    """Sum of linear powers of the active devices (capacity argument)."""
    return float(
        sum(amplitude_from_db(tx.power_gain_db) ** 2 for tx in actives)
    )


@lru_cache(maxsize=64)
def _respread_cached(params: ChirpParams) -> np.ndarray:
    """Conjugated baseline downchirp (the re-spreading carrier), cached.

    ``downchirp`` itself is cached, but the conjugation used to be
    re-materialised on every composed round; hoisting it keeps the
    per-round cost of the fast path pure matmul.
    """
    carrier = np.conjugate(downchirp(params))
    carrier.setflags(write=False)
    return carrier


def compose_round_matrix(
    params: ChirpParams,
    effective_bins: np.ndarray,
    amplitudes: np.ndarray,
    phases_rad: np.ndarray,
    bit_matrix: np.ndarray,
) -> np.ndarray:
    """Vectorised fast path: all symbols of a round in one matmul.

    ``bit_matrix[s, d]`` keys device ``d`` in symbol ``s`` (preamble rows
    are all ones). Device ``d`` contributes the dechirped-domain tone at
    ``effective_bins[d]`` with constant amplitude and phase across the
    round. Returns the pre-dechirp symbol matrix (n_symbols, 2^SF) —
    equivalent to calling :func:`compose_symbol` per symbol, but fast
    enough for 256-device round simulations. One-round wrapper of
    :func:`compose_rounds`.
    """
    effective_bins = np.asarray(effective_bins, dtype=float)
    amplitudes = np.asarray(amplitudes, dtype=float)
    phases_rad = np.asarray(phases_rad, dtype=float)
    bit_matrix = np.asarray(bit_matrix, dtype=float)
    n_devices = effective_bins.size
    if amplitudes.size != n_devices or phases_rad.size != n_devices:
        raise ConfigurationError("per-device arrays must align")
    if bit_matrix.ndim != 2 or bit_matrix.shape[1] != n_devices:
        raise ConfigurationError(
            "bit_matrix must be (n_symbols, n_devices)"
        )
    return compose_rounds(
        params,
        effective_bins[None, :],
        amplitudes[None, :],
        phases_rad[None, :],
        bit_matrix[None, :, :],
    )[0]


def compose_rounds(
    params: ChirpParams,
    effective_bins: np.ndarray,
    amplitudes: np.ndarray,
    phases_rad: np.ndarray,
    bit_tensor: np.ndarray,
    respread: bool = True,
) -> np.ndarray:
    """Batched fast path: a whole Monte-Carlo sweep of rounds at once.

    Per-round arrays are stacked on a leading round axis:
    ``effective_bins`` / ``amplitudes`` / ``phases_rad`` are
    ``(n_rounds, n_devices)`` and ``bit_tensor`` is
    ``(n_rounds, n_symbols, n_devices)``. Device ``d`` of round ``r``
    contributes the dechirped-domain tone at ``effective_bins[r, d]``
    with amplitude and phase constant across that round. Returns the
    pre-dechirp symbol tensor ``(n_rounds, n_symbols, 2^SF)`` — the
    input of :meth:`repro.core.receiver.NetScatterReceiver.decode_rounds`
    — as one batched matmul instead of a Python loop over rounds.

    ``respread=False`` skips the final re-spreading carrier and returns
    the tensor in the *dechirped* domain (pass ``dechirped=True`` to
    ``decode_rounds``). The re-spread/de-spread pair is a unit-modulus
    rotation that cancels through the receiver, so skipping it saves a
    full pass over the tensor with identical decode decisions.
    """
    effective_bins, amplitudes, phases_rad, bit_tensor = (
        _validate_round_arrays(
            effective_bins, amplitudes, phases_rad, bit_tensor
        )
    )
    n = params.n_samples
    n_rounds, n_devices = effective_bins.shape
    # tones[r, d, :]: the device's dechirped-grid tone for that round.
    # Synthesised in factored form: with t = t_hi * B + t_lo (B ~ sqrt(N))
    # the tone is an outer product of two short complex exponentials, so
    # only O(sqrt(N)) transcendentals are evaluated per tone instead of
    # N — at 256 devices the full-grid exp used to cost more than the
    # composition GEMM itself. Equal to the direct exp to ~1 ulp
    # (exp(a)*exp(b) vs exp(a+b)), far inside the engines' decision
    # margins.
    block = 1 << (max(n.bit_length() - 1, 1) // 2)
    angle = (2j * np.pi / n) * effective_bins[:, :, None]
    low = np.exp(
        angle * np.arange(min(block, n)) + 1j * phases_rad[:, :, None]
    )
    high = np.exp(angle * (np.arange(-(-n // block)) * block))
    tones = (high[:, :, :, None] * low[:, :, None, :]).reshape(
        n_rounds, n_devices, -1
    )[:, :, :n]
    weights = (bit_tensor * amplitudes[:, None, :]).astype(complex)
    dechirped = weights @ tones
    if not respread:
        return dechirped
    return dechirped * _respread_cached(params)[None, None, :]


def _validate_round_arrays(
    effective_bins: np.ndarray,
    amplitudes: np.ndarray,
    phases_rad: np.ndarray,
    bit_tensor: np.ndarray,
):
    """Shared shape checks of the batched round composition inputs."""
    effective_bins = np.asarray(effective_bins, dtype=float)
    amplitudes = np.asarray(amplitudes, dtype=float)
    phases_rad = np.asarray(phases_rad, dtype=float)
    bit_tensor = np.asarray(bit_tensor, dtype=float)
    if effective_bins.ndim != 2:
        raise ConfigurationError(
            "effective_bins must be (n_rounds, n_devices)"
        )
    n_rounds, n_devices = effective_bins.shape
    if amplitudes.shape != (n_rounds, n_devices):
        raise ConfigurationError("per-device arrays must align")
    if phases_rad.shape != (n_rounds, n_devices):
        raise ConfigurationError("per-device arrays must align")
    if bit_tensor.ndim != 3 or bit_tensor.shape[::2] != (
        n_rounds,
        n_devices,
    ):
        raise ConfigurationError(
            "bit_tensor must be (n_rounds, n_symbols, n_devices)"
        )
    return effective_bins, amplitudes, phases_rad, bit_tensor


def compose_readout(
    params: ChirpParams,
    effective_bins: np.ndarray,
    amplitudes: np.ndarray,
    phases_rad: np.ndarray,
    bit_tensor: np.ndarray,
    readout: SparseReadout,
    dtype=None,
    n_preamble_rows: int = 0,
) -> np.ndarray:
    """Analytic fast path: readout values of a round batch, waveform-free.

    Takes the same batched per-round arrays as :func:`compose_rounds`
    (``(n_rounds, n_devices)`` bins/amplitudes/phases and a
    ``(n_rounds, n_symbols, n_devices)`` keying tensor) but returns the
    complex *readout values* ``(n_rounds, n_symbols, K)`` at the given
    :class:`SparseReadout`'s bins directly: each device tone's value at
    each bin is the closed-form Dirichlet kernel
    (:meth:`SparseReadout.tone_kernel`), so the whole
    compose -> dechirp -> readout chain collapses to one
    ``(symbols, devices) @ (devices, bins)`` matmul per round. No
    ``n_samples``-length tensor is ever materialised; values agree with
    ``readout.spectrum(compose_rounds(...))`` to floating-point
    round-off on either input domain (the re-spread/de-spread rotation
    cancels exactly in the closed form).

    ``dtype`` selects the accumulation precision: ``numpy.complex64``
    halves the matmul/noise cost for very large device counts at ~1e-7
    relative readout error (the kernel ratio is still evaluated in
    double and stored single — see
    :meth:`repro.phy.sparse_readout.SparseReadout.tone_ratio`;
    decisions are unaffected at the operating points the sweeps visit,
    which the equivalence tests pin).

    ``n_preamble_rows`` declares the leading symbol rows of
    ``bit_tensor`` identical per round (the all-on preamble): their
    readout row is then computed *once* per round and broadcast instead
    of re-entering the GEMM ``n_preamble_rows`` times. The claim is
    verified with one cheap equality pass, falling back to the full
    computation when it does not hold, so the option is always safe.
    """
    effective_bins, amplitudes, phases_rad, bit_tensor = (
        _validate_round_arrays(
            effective_bins, amplitudes, phases_rad, bit_tensor
        )
    )
    if params.n_samples != readout.params.n_samples:
        raise ConfigurationError(
            "readout was built for different chirp parameters"
        )
    if dtype is None:
        dtype = np.complex128
    dtype = np.dtype(dtype)
    if dtype.kind != "c":
        raise ConfigurationError("dtype must be a complex dtype")
    n_symbols = bit_tensor.shape[1]
    dedup = int(n_preamble_rows)
    if dedup > 1 and n_symbols >= dedup:
        head = bit_tensor[:, :dedup]
        if not np.array_equal(
            head, np.broadcast_to(head[:, :1], head.shape)
        ):
            dedup = 0
    else:
        dedup = 0
    if dedup:
        # Row dedup-1 is the shared preamble row; rows before it are
        # copies, so the GEMM runs on (1 + payload) rows per round.
        reduced = _compose_readout_values(
            effective_bins,
            amplitudes,
            phases_rad,
            bit_tensor[:, dedup - 1 :],
            readout,
            dtype,
        )
        values = np.empty(
            (bit_tensor.shape[0], n_symbols, reduced.shape[2]),
            dtype=dtype,
        )
        values[:, :dedup] = reduced[:, :1]
        values[:, dedup:] = reduced[:, 1:]
        return values
    return _compose_readout_values(
        effective_bins, amplitudes, phases_rad, bit_tensor, readout, dtype
    )


def _compose_readout_values(
    effective_bins: np.ndarray,
    amplitudes: np.ndarray,
    phases_rad: np.ndarray,
    bit_tensor: np.ndarray,
    readout: SparseReadout,
    dtype,
) -> np.ndarray:
    """The factored-kernel evaluation behind :func:`compose_readout`."""
    real_dtype = np.float32 if dtype == np.complex64 else np.float64
    # Factored kernel: D_N(b - q/zp) = e^{jcb} * ratio * e^{-jcq/zp}.
    # The device-side phase e^{jcb} joins the carrier phase inside the
    # weights and the bin-side phase scales the output, so the heavy
    # (symbols, devices) @ (devices, bins) products run as two *real*
    # matmuls on the ratio matrix — half the flops of a complex GEMM
    # and no complex kernel ever materialised.
    ratio = readout.tone_ratio(effective_bins, dtype=real_dtype)
    angles = phases_rad + readout.tone_phase_coeff * effective_bins
    w_real = bit_tensor * (amplitudes * np.cos(angles))[:, None, :]
    w_imag = bit_tensor * (amplitudes * np.sin(angles))[:, None, :]
    if real_dtype != np.float64:
        w_real = w_real.astype(real_dtype)
        w_imag = w_imag.astype(real_dtype)
    values = (w_real @ ratio).astype(dtype)
    values.imag += w_imag @ ratio
    values *= readout.bin_phase_factor().astype(dtype)
    return values
