"""Network-wide power-control policy (Section 3.2.3, fine-grained half).

The tag-side step logic lives on :class:`repro.hardware.device
.BackscatterDevice`; this module provides the network-side view — target
SNR windows, the closed-loop simulation used by the power-control
ablation, and the SNR-based grouping the AP uses for the query group ID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import DYNAMIC_RANGE_PRACTICE_DB, POWER_GAIN_LEVELS_DB
from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class PowerControlPolicy:
    """Parameters of the self-aware power adjustment loop.

    Attributes
    ----------
    levels_db:
        The discrete gains the switch network offers.
    hysteresis_db:
        Channel change (vs the association baseline) needed before the
        tag steps its gain.
    dynamic_range_db:
        The network-wide SNR window the allocation tolerates (35 dB in
        practice, Fig. 15b).
    """

    levels_db: Tuple[float, ...] = POWER_GAIN_LEVELS_DB
    hysteresis_db: float = 1.5
    dynamic_range_db: float = DYNAMIC_RANGE_PRACTICE_DB

    def __post_init__(self) -> None:
        if len(self.levels_db) < 1:
            raise ConfigurationError("need at least one power level")
        if self.hysteresis_db < 0:
            raise ConfigurationError("hysteresis must be non-negative")

    @property
    def adjustment_span_db(self) -> float:
        """Total gain swing available to a tag."""
        return max(self.levels_db) - min(self.levels_db)


def choose_initial_level(
    query_rssi_dbm: float,
    low_rssi_threshold_dbm: float,
    levels_db: Sequence[float] = POWER_GAIN_LEVELS_DB,
) -> int:
    """Association-time level choice (Section 3.2.3).

    A weak downlink means a far tag: full power (level 0). Otherwise the
    middle level, leaving headroom to step both ways later.
    """
    ordered = sorted(levels_db, reverse=True)
    if query_rssi_dbm < low_rssi_threshold_dbm:
        return 0
    return len(ordered) // 2


def reciprocity_step(
    baseline_rssi_dbm: float,
    current_rssi_dbm: float,
    current_level: int,
    policy: PowerControlPolicy,
) -> Tuple[int, bool]:
    """One power-control decision; returns ``(new_level, participate)``.

    Stronger downlink than at association -> the uplink would also arrive
    hotter -> step the gain down (and vice versa). When the tag runs out
    of levels and the channel has moved more than twice the hysteresis,
    it sits the round out (``participate = False``).
    """
    n_levels = len(policy.levels_db)
    delta = current_rssi_dbm - baseline_rssi_dbm
    if delta > policy.hysteresis_db:
        if current_level < n_levels - 1:
            return current_level + 1, True
        return current_level, delta <= 2.0 * policy.hysteresis_db
    if delta < -policy.hysteresis_db:
        if current_level > 0:
            return current_level - 1, True
        return current_level, delta >= -2.0 * policy.hysteresis_db
    return current_level, True


def simulate_power_control(
    mean_snrs_db: Sequence[float],
    n_rounds: int,
    policy: Optional[PowerControlPolicy] = None,
    fading_std_db: float = 1.5,
    round_interval_s: float = 0.06,
    enabled: bool = True,
    rng: RngLike = None,
) -> Dict[str, np.ndarray]:
    """Closed-loop power control over a fading population (ablation).

    Simulates ``n_rounds`` query/response rounds: each device's channel
    follows an AR(1) fading track; before each round the device applies
    (or, with ``enabled=False``, skips) the reciprocity step. Returns the
    per-round *effective* SNR matrix (channel + gain) and participation
    mask, from which the caller can compare the residual SNR spread with
    and without control.
    """
    from repro.channel.fading import FadingProcess

    if policy is None:
        policy = PowerControlPolicy()
    generator = make_rng(rng)
    n_devices = len(mean_snrs_db)
    if n_devices == 0:
        raise ConfigurationError("need at least one device")
    levels = sorted(policy.levels_db, reverse=True)

    fadings = []
    for snr in mean_snrs_db:
        process = FadingProcess(mean_snr_db=float(snr), std_db=fading_std_db)
        process.reset(generator)
        fadings.append(process)

    current_levels = [len(levels) // 2] * n_devices
    baselines = [f.current_snr_db for f in fadings]

    effective = np.zeros((n_rounds, n_devices))
    participating = np.ones((n_rounds, n_devices), dtype=bool)
    for r in range(n_rounds):
        for d, fading in enumerate(fadings):
            channel_snr = fading.step(round_interval_s, generator)
            if enabled:
                # RSSI deltas mirror SNR deltas under reciprocity; the
                # loop operates directly on the dB difference.
                new_level, participate = reciprocity_step(
                    baselines[d], channel_snr, current_levels[d], policy
                )
                current_levels[d] = new_level
                participating[r, d] = participate
            effective[r, d] = channel_snr + levels[current_levels[d]]
    return {
        "effective_snr_db": effective,
        "participating": participating,
        "final_levels": np.asarray(current_levels),
    }


def snr_groups(
    snrs_db: Sequence[float], group_span_db: float = 35.0
) -> List[List[int]]:
    """Group device indices into similar-SNR groups (query group IDs).

    Section 3.3.3: a large network splits devices into groups of similar
    signal strength so each concurrent round stays inside the tolerable
    dynamic range. Greedy span-limited grouping over the sorted SNRs.
    """
    if group_span_db <= 0:
        raise ConfigurationError("group span must be positive")
    order = np.argsort(np.asarray(snrs_db, dtype=float))[::-1]
    groups: List[List[int]] = []
    current: List[int] = []
    group_top: Optional[float] = None
    for idx in order:
        snr = float(snrs_db[idx])
        if group_top is None or group_top - snr <= group_span_db:
            current.append(int(idx))
            if group_top is None:
                group_top = snr
        else:
            groups.append(current)
            current = [int(idx)]
            group_top = snr
    if current:
        groups.append(current)
    return groups
