"""Multi-user Shannon capacity below the noise floor (Section 3.1).

The paper's information-theoretic framing: the multi-user uplink capacity
``C = BW * log2(1 + N * Ps / Pn)`` grows *linearly* in the device count
``N`` when ``N * Ps / Pn << 1`` — which is exactly the below-noise regime
backscatter operates in. NetScatter's linear throughput scaling (Fig. 17)
is this effect made practical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import LinkBudgetError
from repro.utils.conversions import db_to_linear


def multiuser_capacity_bps(
    bandwidth_hz: float, snr_per_device_db: float, n_devices: int
) -> float:
    """Exact multi-user AP capacity ``BW * log2(1 + N * snr)``."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if n_devices < 0:
        raise LinkBudgetError("device count must be non-negative")
    snr = db_to_linear(snr_per_device_db)
    return bandwidth_hz * math.log2(1.0 + n_devices * snr)


def below_noise_approximation_bps(
    bandwidth_hz: float, snr_per_device_db: float, n_devices: int
) -> float:
    """Small-SNR linearisation ``BW/ln2 * N * snr`` (the paper's form)."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if n_devices < 0:
        raise LinkBudgetError("device count must be non-negative")
    snr = db_to_linear(snr_per_device_db)
    return bandwidth_hz * n_devices * snr / math.log(2.0)


def approximation_error(
    snr_per_device_db: float, n_devices: int
) -> float:
    """Relative error of the linearisation at an operating point.

    Useful for validating where the "capacity scales linearly" claim
    holds: the error is below 5% whenever ``N * snr < 0.1``.
    """
    if n_devices == 0:
        return 0.0
    exact = multiuser_capacity_bps(1.0, snr_per_device_db, n_devices)
    approx = below_noise_approximation_bps(1.0, snr_per_device_db, n_devices)
    if exact == 0.0:
        raise LinkBudgetError("exact capacity is zero")
    return abs(approx - exact) / exact


def capacity_scaling_series(
    bandwidth_hz: float,
    snr_per_device_db: float,
    device_counts: Sequence[int],
) -> List[Dict[str, float]]:
    """Capacity vs device count, exact and linearised (analysis series)."""
    rows = []
    for n in device_counts:
        rows.append(
            {
                "n_devices": float(n),
                "capacity_bps": multiuser_capacity_bps(
                    bandwidth_hz, snr_per_device_db, n
                ),
                "linear_approx_bps": below_noise_approximation_bps(
                    bandwidth_hz, snr_per_device_db, n
                ),
            }
        )
    return rows


def netscatter_utilisation(
    achieved_bps: float, bandwidth_hz: float
) -> float:
    """Fraction of the ``BW`` aggregate-throughput ceiling achieved.

    Distributed CSS tops out at ``BW`` bits/s (every bin carrying one OOK
    bit per symbol); the deployed SKIP = 2 halves it.
    """
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if achieved_bps < 0:
        raise LinkBudgetError("throughput must be non-negative")
    return achieved_bps / bandwidth_hz
