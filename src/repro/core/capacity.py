"""Multi-user Shannon capacity below the noise floor (Section 3.1).

The paper's information-theoretic framing: the multi-user uplink capacity
``C = BW * log2(1 + N * Ps / Pn)`` grows *linearly* in the device count
``N`` when ``N * Ps / Pn << 1`` — which is exactly the below-noise regime
backscatter operates in. NetScatter's linear throughput scaling (Fig. 17)
is this effect made practical.

This module also carries the *closed-form OOK link law* the hybrid
fidelity split (``repro.protocol.population``) aggregates uncontended
device groups with: per-device detection, bit-error and packet-delivery
probabilities as vectorised functions of the pre-despreading SNR. The
law is the exact noncentral-χ² statistics of a matched-filter OOK
decision, calibrated against the decode engine (two pinned constants
below); its validity envelope — where it tracks the engine and where
Monte-Carlo takes over — is documented in ``docs/SCALING.md``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import LinkBudgetError
from repro.utils.conversions import db_to_linear


def multiuser_capacity_bps(
    bandwidth_hz: float, snr_per_device_db: float, n_devices: int
) -> float:
    """Exact multi-user AP capacity ``BW * log2(1 + N * snr)``."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if n_devices < 0:
        raise LinkBudgetError("device count must be non-negative")
    snr = db_to_linear(snr_per_device_db)
    return bandwidth_hz * math.log2(1.0 + n_devices * snr)


def below_noise_approximation_bps(
    bandwidth_hz: float, snr_per_device_db: float, n_devices: int
) -> float:
    """Small-SNR linearisation ``BW/ln2 * N * snr`` (the paper's form)."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if n_devices < 0:
        raise LinkBudgetError("device count must be non-negative")
    snr = db_to_linear(snr_per_device_db)
    return bandwidth_hz * n_devices * snr / math.log(2.0)


def approximation_error(
    snr_per_device_db: float, n_devices: int
) -> float:
    """Relative error of the linearisation at an operating point.

    Useful for validating where the "capacity scales linearly" claim
    holds: the error is below 5% whenever ``N * snr < 0.1``.
    """
    if n_devices == 0:
        return 0.0
    exact = multiuser_capacity_bps(1.0, snr_per_device_db, n_devices)
    approx = below_noise_approximation_bps(1.0, snr_per_device_db, n_devices)
    if exact == 0.0:
        raise LinkBudgetError("exact capacity is zero")
    return abs(approx - exact) / exact


def capacity_scaling_series(
    bandwidth_hz: float,
    snr_per_device_db: float,
    device_counts: Sequence[int],
) -> List[Dict[str, float]]:
    """Capacity vs device count, exact and linearised (analysis series)."""
    rows = []
    for n in device_counts:
        rows.append(
            {
                "n_devices": float(n),
                "capacity_bps": multiuser_capacity_bps(
                    bandwidth_hz, snr_per_device_db, n
                ),
                "linear_approx_bps": below_noise_approximation_bps(
                    bandwidth_hz, snr_per_device_db, n
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# closed-form OOK link law (the hybrid fidelity split's bulk path)
# ---------------------------------------------------------------------- #

#: Engine-calibration offset (dB) applied to the pre-despreading SNR
#: before the χ² law — absorbs the mean CFO/jitter straddle loss of the
#: decode engine's located-bin readout. Fitted against the measured
#: single-device engine curve (see docs/SCALING.md).
OOK_CALIBRATION_DB = -0.15

#: Effective number of *independent* payload bits in a 40-bit packet.
#: Bit errors within one round share the round's located-bin estimate,
#: so they are positively correlated and the all-bits-correct
#: probability exceeds ``(1 - ber)^40``; an effective length of 33
#: reproduces the engine's measured delivery curve.
OOK_EFFECTIVE_PAYLOAD_BITS = 33.0

#: Receiver constants mirrored from :class:`repro.core.receiver`:
#: detection threshold over the noise estimate (dB), preamble symbols
#: voted for detection, and near-bin candidates an off bit can
#: false-alarm on (located ``±1``).
OOK_DETECTION_SNR_DB = 3.0
OOK_PREAMBLE_SYMBOLS = 6
OOK_OFF_BIT_CANDIDATES = 3

#: Post-despreading SNR above which every probability saturates (the
#: χ² series is skipped and 0/1 returned); P(error) < 1e-30 there.
_SATURATION_RHO = 300.0


def noncentral_chi2_cdf(
    x, noncentrality, max_terms: int = 800
) -> np.ndarray:
    """CDF of the 2-DoF noncentral χ² distribution, vectorised.

    ``P(χ²₂(λ) <= x)`` via the Poisson mixture of central χ² CDFs —
    the exact distribution of ``|A + n|²`` readout power (complex
    signal plus circular Gaussian noise), which is what every decision
    in the OOK link law reduces to. Both arguments broadcast.

    >>> float(round(noncentral_chi2_cdf(2.0, 0.0), 4))   # central case
    0.6321
    >>> float(noncentral_chi2_cdf(1e3, 0.0)) == 1.0
    True
    """
    x = np.asarray(x, dtype=np.float64)
    lam = np.asarray(noncentrality, dtype=np.float64)
    x, lam = np.broadcast_arrays(x, lam)
    half_lam = lam / 2.0
    half_x = x / 2.0
    poisson = np.exp(-half_lam)
    term = np.exp(-half_x)
    tail = term.copy()
    cdf = np.zeros_like(half_x)
    for k in range(max_terms):
        cdf += poisson * (1.0 - tail)
        poisson = poisson * half_lam / (k + 1)
        term = term * half_x / (k + 1)
        tail = tail + term
    return np.clip(cdf, 0.0, 1.0)


def post_despreading_snr(
    snr_db, spreading_factor: int, calibration_db: float = OOK_CALIBRATION_DB
) -> np.ndarray:
    """Linear per-device SNR after the ``2^SF`` despreading gain.

    The deployment convention (``repro.channel.awgn``): ``snr_db`` is
    the pre-despreading in-band SNR, and dechirping concentrates the
    signal into one bin for a ``10 log10(2^SF)`` processing gain. The
    result is independent of the concurrent round's noise floor —
    each device's readout SNR depends only on its own link.
    """
    gain_db = 10.0 * math.log10(2.0**spreading_factor)
    return 10.0 ** (
        (np.asarray(snr_db, dtype=np.float64) + gain_db + calibration_db)
        / 10.0
    )


def ook_bit_error_probabilities(rho: np.ndarray):
    """Per-symbol OOK error probabilities ``(p_on_miss, p_off_false)``.

    ``rho`` is the linear post-despreading SNR. The decision threshold
    sits midway between the expected on power ``(1 + rho)·σ²`` and the
    noise power ``σ²``: an on bit is missed when its noncentral-χ²
    power falls below it; an off bit false-alarms when any of the
    ``OOK_OFF_BIT_CANDIDATES`` near-located noise bins exceeds it.
    """
    rho = np.asarray(rho, dtype=np.float64)
    safe = np.minimum(rho, _SATURATION_RHO)
    threshold = 0.5 * (safe + 1.0)
    p_on = noncentral_chi2_cdf(2.0 * threshold, 2.0 * safe)
    p_off = 1.0 - (1.0 - np.exp(-threshold)) ** OOK_OFF_BIT_CANDIDATES
    saturated = rho > _SATURATION_RHO
    return np.where(saturated, 0.0, p_on), np.where(saturated, 0.0, p_off)


def preamble_detection_probability(
    snr_db,
    spreading_factor: int,
    detection_snr_db: float = OOK_DETECTION_SNR_DB,
) -> np.ndarray:
    """Probability the 6-symbol preamble clears the detection gate.

    Every preamble symbol's located-bin power must exceed the noise
    estimate by ``detection_snr_db`` (the receiver's minimum-over-
    preamble vote), so detection is the product of six independent
    per-symbol exceedances.

    >>> float(preamble_detection_probability(0.0, 9)) == 1.0
    True
    """
    rho = post_despreading_snr(snr_db, spreading_factor)
    safe = np.minimum(rho, _SATURATION_RHO)
    gate = 10.0 ** (detection_snr_db / 10.0)
    p_symbol = 1.0 - noncentral_chi2_cdf(2.0 * gate, 2.0 * safe)
    p_detect = p_symbol**OOK_PREAMBLE_SYMBOLS
    return np.where(rho > _SATURATION_RHO, 1.0, p_detect)


def packet_delivery_probability(
    snr_db,
    spreading_factor: int,
    payload_bits: float = OOK_EFFECTIVE_PAYLOAD_BITS,
) -> np.ndarray:
    """Closed-form probability a device's packet is delivered.

    Delivery requires preamble detection *and* every payload bit
    correct (the CRC convention of ``NetworkSimulator.run_rounds``).
    Payload bits are an even on/off mix; ``payload_bits`` defaults to
    the engine-calibrated effective independent length (see
    :data:`OOK_EFFECTIVE_PAYLOAD_BITS`).

    >>> float(packet_delivery_probability(0.0, 9)) == 1.0
    True
    >>> float(packet_delivery_probability(-40.0, 9)) < 1e-3
    True
    """
    rho = post_despreading_snr(snr_db, spreading_factor)
    p_on, p_off = ook_bit_error_probabilities(rho)
    symbol_ber = 0.5 * (p_on + p_off)
    p_detect = preamble_detection_probability(snr_db, spreading_factor)
    return p_detect * (1.0 - symbol_ber) ** float(payload_bits)


def effective_bit_error_rate(snr_db, spreading_factor: int) -> np.ndarray:
    """Expected scored BER of a device, matching the engine's scoring.

    ``NetworkSimulator.run_rounds`` counts a bit correct only when its
    device's preamble was detected, so an undetected round scores every
    bit wrong: ``1 - p_detect * (1 - symbol_ber)``.
    """
    rho = post_despreading_snr(snr_db, spreading_factor)
    p_on, p_off = ook_bit_error_probabilities(rho)
    symbol_ber = 0.5 * (p_on + p_off)
    p_detect = preamble_detection_probability(snr_db, spreading_factor)
    return 1.0 - p_detect * (1.0 - symbol_ber)


def netscatter_utilisation(
    achieved_bps: float, bandwidth_hz: float
) -> float:
    """Fraction of the ``BW`` aggregate-throughput ceiling achieved.

    Distributed CSS tops out at ``BW`` bits/s (every bin carrying one OOK
    bit per symbol); the deployed SKIP = 2 halves it.
    """
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if achieved_bps < 0:
        raise LinkBudgetError("throughput must be non-negative")
    return achieved_bps / bandwidth_hz
