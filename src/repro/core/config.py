"""NetScatter modulation/network configuration (Table 1).

A configuration fixes the chirp bandwidth, spreading factor, guard spacing
(SKIP) and FFT zero-padding, and derives everything the rest of the system
needs: tolerable timing/frequency mismatch, per-device bitrate, receive
sensitivity and the maximum number of concurrent devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.channel.awgn import noise_power_dbm
from repro.constants import (
    DEFAULT_BANDWIDTH_HZ,
    DEFAULT_SKIP,
    DEFAULT_SPREADING_FACTOR,
    DEFAULT_ZERO_PAD_FACTOR,
    N_ASSOCIATION_SHIFTS,
)
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams

# Required post-despreading SNR per SF, from the SX1276 datasheet's
# demodulator SNR limits (used to reproduce Table 1's sensitivity column).
SX1276_SNR_LIMIT_DB = {
    6: -5.0,
    7: -7.5,
    8: -10.0,
    9: -12.5,
    10: -15.0,
    11: -17.5,
    12: -20.0,
}


@dataclass(frozen=True)
class NetScatterConfig:
    """A full NetScatter operating point.

    Attributes
    ----------
    bandwidth_hz, spreading_factor:
        The chirp parameters (also the sample rate at the critical rate).
    skip:
        Guard spacing: devices occupy every ``skip``-th cyclic shift, so
        ``skip - 1`` bins between neighbours absorb per-packet timing
        jitter (Section 3.2.1).
    zero_pad_factor:
        Receiver FFT interpolation for sub-bin peak resolution.
    n_association_shifts:
        Cyclic shifts reserved for association (Section 3.3.2).
    """

    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    spreading_factor: int = DEFAULT_SPREADING_FACTOR
    skip: int = DEFAULT_SKIP
    zero_pad_factor: int = DEFAULT_ZERO_PAD_FACTOR
    n_association_shifts: int = N_ASSOCIATION_SHIFTS

    def __post_init__(self) -> None:
        if self.skip < 1:
            raise ConfigurationError("skip must be >= 1")
        if self.zero_pad_factor < 1:
            raise ConfigurationError("zero_pad_factor must be >= 1")
        if self.n_association_shifts < 0:
            raise ConfigurationError(
                "n_association_shifts must be non-negative"
            )
        # Validate BW/SF via ChirpParams' own checks.
        _ = self.chirp_params

    @property
    def chirp_params(self) -> ChirpParams:
        """The underlying chirp symbol parameters."""
        return ChirpParams(
            bandwidth_hz=self.bandwidth_hz,
            spreading_factor=self.spreading_factor,
        )

    @property
    def n_bins(self) -> int:
        """Number of FFT bins / cyclic shifts, ``2^SF``."""
        return self.chirp_params.n_shifts

    @property
    def max_devices(self) -> int:
        """Concurrent device capacity.

        ``2^SF / skip`` slots on the SKIP grid, minus three per reserved
        association shift (the shift itself plus one guard slot on each
        side, so association packets never collide with data shifts).
        """
        return self.n_bins // self.skip - 3 * self.n_association_shifts

    @property
    def device_bitrate_bps(self) -> float:
        """Per-device OOK bitrate, ``BW / 2^SF`` (Table 1's bitrate column)."""
        return self.chirp_params.symbol_rate_hz

    @property
    def aggregate_throughput_bps(self) -> float:
        """Ideal aggregate PHY throughput with every shift in use.

        ``2^SF`` concurrent devices at ``BW / 2^SF`` each sums to ``BW``
        (Section 3.1's throughput-gain argument); SKIP reduces it.
        """
        return self.max_devices * self.device_bitrate_bps

    @property
    def tolerable_timing_mismatch_s(self) -> float:
        """Largest timing error that stays within one FFT bin: ``1/BW``."""
        return 1.0 / self.bandwidth_hz

    @property
    def tolerable_frequency_mismatch_hz(self) -> float:
        """Largest CFO that stays within one FFT bin: ``BW / 2^SF``."""
        return self.chirp_params.bin_spacing_hz

    @property
    def min_snr_db(self) -> float:
        """Minimum pre-despreading in-band SNR (SX1276 demodulator limit)."""
        limit = SX1276_SNR_LIMIT_DB.get(self.spreading_factor)
        if limit is None:
            raise ConfigurationError(
                f"no SNR limit known for SF {self.spreading_factor}"
            )
        return limit

    @property
    def sensitivity_dbm(self) -> float:
        """Receive sensitivity: noise floor over BW plus the SNR limit."""
        return noise_power_dbm(self.bandwidth_hz) + self.min_snr_db

    @property
    def lora_bitrate_bps(self) -> float:
        """Classic single-user CSS bitrate at the same (BW, SF)."""
        return self.chirp_params.lora_bitrate_bps

    @property
    def throughput_gain_over_lora(self) -> float:
        """The headline ``2^SF / SF`` gain of distributed CSS coding."""
        return self.n_bins / self.spreading_factor

    def assigned_shifts(self) -> List[int]:
        """All data cyclic shifts under the SKIP spacing.

        Association shifts are carved out by
        :class:`repro.core.allocation.AllocationTable`; this enumerates
        the full SKIP-spaced grid.
        """
        return list(range(0, self.n_bins, self.skip))

    def describe(self) -> str:
        """One-line summary used by the benchmark harness."""
        return (
            f"BW={self.bandwidth_hz / 1e3:.0f}kHz SF={self.spreading_factor} "
            f"SKIP={self.skip} -> {self.max_devices} devices @ "
            f"{self.device_bitrate_bps:.0f} bps"
        )


# The six operating points of Table 1 (SKIP spans are derived from the
# tolerable mismatch columns; the deployment uses the first row).
TABLE1_CONFIGS: List[NetScatterConfig] = [
    NetScatterConfig(bandwidth_hz=500e3, spreading_factor=9),
    NetScatterConfig(bandwidth_hz=500e3, spreading_factor=8),
    NetScatterConfig(bandwidth_hz=250e3, spreading_factor=8),
    NetScatterConfig(bandwidth_hz=250e3, spreading_factor=7),
    NetScatterConfig(bandwidth_hz=125e3, spreading_factor=7),
    NetScatterConfig(bandwidth_hz=125e3, spreading_factor=6),
]


def deployment_config() -> NetScatterConfig:
    """The paper's deployed configuration: 500 kHz, SF 9, SKIP 2."""
    return NetScatterConfig()
