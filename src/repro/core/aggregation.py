"""Bandwidth aggregation (Section 3.1, Fig. 5).

To double both the device count and keep per-device bitrate, NetScatter
doubles the *total* band to ``2 x BW`` while each device keeps its chirp
bandwidth ``BW`` and spreading factor: devices park at initial frequency
offsets across the aggregate band, and when a chirp sweeps past the top
edge it aliases down (automatic in sampled complex baseband). The AP then
needs only one dechirp and one ``2 * 2^SF``-point FFT — cheaper than two
filtered sub-bands with separate FFTs.

This module generalises to an ``m``-fold aggregate band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, DecodingError
from repro.phy.chirp import ChirpParams
from repro.utils.conversions import amplitude_from_db
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class AggregateBand:
    """An ``m x BW`` aggregate band hosting ``m * 2^SF`` offset slots."""

    chirp_params: ChirpParams
    aggregation_factor: int = 2

    def __post_init__(self) -> None:
        if self.aggregation_factor < 1:
            raise ConfigurationError("aggregation factor must be >= 1")

    @property
    def total_bandwidth_hz(self) -> float:
        return self.chirp_params.bandwidth_hz * self.aggregation_factor

    @property
    def sample_rate_hz(self) -> float:
        """The AP samples the full aggregate band."""
        return self.total_bandwidth_hz

    @property
    def n_samples(self) -> int:
        """Samples per symbol at the aggregate rate: ``m * 2^SF``."""
        return self.chirp_params.n_samples * self.aggregation_factor

    @property
    def n_slots(self) -> int:
        """Distinguishable frequency slots: ``m * 2^SF``."""
        return self.n_samples

    @property
    def slot_spacing_hz(self) -> float:
        """Same bin spacing as the single band: ``BW / 2^SF``."""
        return self.chirp_params.bin_spacing_hz

    def base_chirp(self) -> np.ndarray:
        """The shared chirp rendered at the aggregate sample rate.

        Same slope ``BW^2 / 2^SF`` as the single-band chirp, evaluated on
        the ``m``-times finer time grid over one symbol duration.
        """
        m = self.aggregation_factor
        n_base = self.chirp_params.n_samples
        n = np.arange(self.n_samples, dtype=float) / m
        return np.exp(1j * np.pi * n**2 / n_base)

    def slot_waveform(self, slot: int) -> np.ndarray:
        """Device waveform for frequency slot ``slot``.

        The chirp shifted by ``slot`` bin spacings; sweeps past the band
        edge alias down automatically in complex baseband sampling.
        """
        if not 0 <= int(slot) < self.n_slots:
            raise ConfigurationError(
                f"slot must be in [0, {self.n_slots}), got {slot}"
            )
        t = np.arange(self.n_samples)
        tone = np.exp(2j * np.pi * int(slot) * t / self.n_samples)
        return self.base_chirp() * tone

    def compose_symbol(
        self,
        active_slots: Sequence[int],
        gains_db: Sequence[float] = None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Sum of the active devices' slot waveforms with random phases."""
        if gains_db is None:
            gains_db = [0.0] * len(active_slots)
        if len(gains_db) != len(active_slots):
            raise ConfigurationError("gains and slots must align")
        generator = make_rng(rng)
        total = np.zeros(self.n_samples, dtype=complex)
        for slot, gain in zip(active_slots, gains_db):
            phase = float(generator.uniform(0.0, 2.0 * np.pi))
            total += (
                amplitude_from_db(gain)
                * np.exp(1j * phase)
                * self.slot_waveform(slot)
            )
        return total

    def dechirp(self, symbol: np.ndarray) -> np.ndarray:
        """Single dechirp + ``m * 2^SF``-point FFT over the aggregate band."""
        symbol = np.asarray(symbol, dtype=complex)
        if symbol.size != self.n_samples:
            raise DecodingError(
                f"expected {self.n_samples} samples, got {symbol.size}"
            )
        despread = symbol * np.conjugate(self.base_chirp())
        return np.fft.fft(despread)

    def decode_slots(
        self, symbol: np.ndarray, threshold_ratio: float = 0.5
    ) -> List[int]:
        """Active slots detected in one aggregate symbol.

        A slot is active when its bin power exceeds ``threshold_ratio``
        times the strongest bin — adequate for the equal-power validation
        scenario; the full near-far machinery runs per sub-band.
        """
        spectrum = np.abs(self.dechirp(symbol)) ** 2
        peak = float(spectrum.max())
        if peak <= 0:
            return []
        return [
            int(i)
            for i in np.flatnonzero(spectrum >= threshold_ratio * peak)
        ]

    def slots_by_subband(self) -> Dict[int, List[int]]:
        """Slots grouped by which ``BW`` sub-band their start frequency
        falls in (the filtered-bands alternative's view)."""
        n_base = self.chirp_params.n_samples
        groups: Dict[int, List[int]] = {}
        for slot in range(self.n_slots):
            groups.setdefault(slot // n_base, []).append(slot)
        return groups


def required_aggregation_factor(n_devices: int, max_devices_per_band: int) -> int:
    """Smallest aggregate-band factor ``m`` that seats ``n_devices``.

    Each ``BW``-wide sub-band seats ``max_devices_per_band`` concurrent
    devices (``NetScatterConfig.max_devices``); an ``m``-fold aggregate
    band seats ``m`` times that. This is the Section 3.1 scaling knob
    the population layer sizes AP-clusters with.

    >>> required_aggregation_factor(256, 256)
    1
    >>> required_aggregation_factor(100_000, 256)
    391
    """
    if n_devices < 1:
        raise ConfigurationError("need at least one device")
    if max_devices_per_band < 1:
        raise ConfigurationError("per-band capacity must be positive")
    return -(-int(n_devices) // int(max_devices_per_band))


def expected_cluster_goodput_bits(
    snrs_db,
    spreading_factor: int,
    payload_bits: int,
) -> float:
    """Closed-form expected correct payload bits per full schedule cycle.

    The hybrid-fidelity bulk path's aggregate: every device transmits
    once per cycle (its group's round), and its expected contribution is
    ``payload_bits * (1 - scored BER)`` under the calibrated OOK link
    law (:func:`repro.core.capacity.effective_bit_error_rate`). One
    vectorised pass over the population — no engine invocation.
    """
    from repro.core.capacity import effective_bit_error_rate

    snrs = np.asarray(snrs_db, dtype=np.float64)
    if snrs.size == 0:
        raise ConfigurationError("need at least one device")
    ber = effective_bit_error_rate(snrs, spreading_factor)
    return float(payload_bits * np.sum(1.0 - ber))


def compare_receiver_costs(band: AggregateBand) -> Dict[str, float]:
    """FFT-work comparison: one aggregate FFT vs per-sub-band FFTs.

    Cost model is ``n log2 n`` per FFT. The aggregate approach also skips
    the band-split filters, which this model does not even charge for.
    """
    m = band.aggregation_factor
    n_base = band.chirp_params.n_samples
    aggregate_cost = band.n_samples * np.log2(band.n_samples)
    filtered_cost = m * n_base * np.log2(n_base)
    return {
        "aggregate_fft_cost": float(aggregate_cost),
        "filtered_fft_cost": float(filtered_cost),
        "aggregate_over_filtered": float(aggregate_cost / filtered_cost),
    }
