"""Power-aware cyclic-shift allocation (Section 3.2.3).

The near-far problem: a zero-padded FFT peak carries sinc side lobes, so a
strong device buries weak devices in nearby bins. The paper's coarse-
grained fix is allocation: sort devices by SNR and assign shifts so that
similar-SNR devices sit in adjacent bins and the weakest devices sit at
the maximum cyclic distance from the strongest. Because the dechirped
spectrum wraps (Fig. 15b is symmetric), "far" means *cyclic* bin distance
— so a simple descending-SNR walk around the ring would put the weakest
device right back next to the strongest at the wrap point. The correct
layout is the *folded* one the paper's Fig. 8 annotates ("High Power |
Low Power | High Power"): strong devices at both edges of the spectrum,
SNR decreasing toward the middle from both sides, weakest devices
mid-ring — maximally (cyclically) distant from the strong edges.

Association reserves one shift in the high-SNR region (near bin 0) and one
in the low-SNR region (near the middle), each with SKIP-guards, so joining
devices of any strength can be heard (Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import NetScatterConfig
from repro.errors import AllocationError


def cyclic_bin_distance(a: float, b: float, n_bins: int) -> float:
    """Cyclic distance between two bins on the ``n_bins`` ring."""
    raw = abs(float(a) - float(b)) % n_bins
    return min(raw, n_bins - raw)


def power_aware_allocation(
    snrs_db: Sequence[float], config: NetScatterConfig
) -> Dict[int, int]:
    """Assign SKIP-spaced cyclic shifts by descending SNR.

    ``snrs_db[i]`` is device ``i``'s SNR at the AP (measured during
    association). Returns ``device_index -> shift``. The strongest device
    gets the first data shift after the high-SNR association slot; each
    subsequent (weaker) device gets the next SKIP-spaced shift, so SNR
    decreases monotonically with ring position and the weakest devices end
    up farthest (cyclically) from the strongest.
    """
    n_devices = len(snrs_db)
    if n_devices == 0:
        raise AllocationError("no devices to allocate")
    slots = _data_slots(config)
    if n_devices > len(slots):
        raise AllocationError(
            f"{n_devices} devices exceed the {len(slots)}-slot capacity "
            f"of {config.describe()}"
        )
    order = np.argsort(np.asarray(snrs_db, dtype=float))[::-1]
    indices = _spread_slot_indices(n_devices, len(slots))
    assignment: Dict[int, int] = {}
    for rank, device_index in enumerate(order):
        assignment[int(device_index)] = slots[indices[rank]]
    return assignment


def _spread_slot_indices(n_devices: int, n_slots: int) -> List[int]:
    """Folded slot indices for descending-SNR ranks.

    Two requirements combine here:

    * *spread*: below capacity, occupied slots spread evenly over the
      ring, which is why the paper observes an effective SKIP >= 3
      separation when fewer than half the slots are in use (Section
      4.4's variance discussion);
    * *fold*: rank 0 (strongest) takes the first spread position, rank 1
      the last, rank 2 the second, and so on — strong devices occupy
      both spectrum edges and the weakest land mid-ring, maximising
      their cyclic distance from the strong edges (Fig. 8's "High Power
      | Low Power | High Power" layout).
    """
    if n_devices > n_slots:
        raise AllocationError("more devices than slots")
    positions = [(k * n_slots) // n_devices for k in range(n_devices)]
    indices: List[int] = []
    for rank in range(n_devices):
        if rank % 2 == 0:
            indices.append(positions[rank // 2])
        else:
            indices.append(positions[n_devices - 1 - rank // 2])
    return indices


def random_allocation(
    n_devices: int, config: NetScatterConfig, rng=None
) -> Dict[int, int]:
    """SKIP-spaced but SNR-blind allocation (the ablation baseline)."""
    from repro.utils.rng import make_rng

    slots = _data_slots(config)
    if n_devices > len(slots):
        raise AllocationError(
            f"{n_devices} devices exceed the {len(slots)}-slot capacity"
        )
    generator = make_rng(rng)
    chosen = generator.permutation(len(slots))[:n_devices]
    return {i: slots[int(c)] for i, c in enumerate(chosen)}


def _data_slots(config: NetScatterConfig) -> List[int]:
    """SKIP-spaced data shifts in ring order, skipping association slots.

    The slot list starts just after the high-SNR association shift and
    walks the ring once, excluding the guard neighbourhoods of both
    association shifts.
    """
    n = config.n_bins
    skip = config.skip
    reserved = set()
    for assoc in association_shifts(config):
        for guard in range(-skip, skip + 1):
            reserved.add((assoc + guard) % n)
    slots = []
    for step in range(n // skip):
        shift = (config.skip + step * skip) % n
        if shift not in reserved:
            slots.append(shift)
    return slots


def association_shifts(config: NetScatterConfig) -> List[int]:
    """Reserved association shifts: high-SNR region (bin 0 area) and
    low-SNR region (mid-spectrum), per Section 3.3.2."""
    if config.n_association_shifts == 0:
        return []
    if config.n_association_shifts == 1:
        return [0]
    shifts = [0, (config.n_bins // 2) // config.skip * config.skip]
    extra = config.n_association_shifts - 2
    for i in range(extra):
        # Additional association slots interleave at quarter positions.
        quarter = (config.n_bins * (i + 1) // 4) // config.skip * config.skip
        shifts.append(quarter)
    return shifts[: config.n_association_shifts]


@dataclass
class AllocationEntry:
    """One device's standing in the allocation table."""

    device_id: int
    shift: int
    snr_db: float


class AllocationTable:
    """Incremental power-aware allocation at the AP.

    Maintains the SNR-sorted ring as devices join and leave. A joining
    device is placed at the rank its SNR deserves; if that requires moving
    existing devices, the table performs a *full reassignment* — the event
    the paper handles with the log2(256!)-bit reordering query message.
    The table reports whether each admit was incremental or required
    reassignment so the protocol layer can charge the right overhead.
    """

    def __init__(self, config: NetScatterConfig) -> None:
        self._config = config
        self._entries: Dict[int, AllocationEntry] = {}
        self._slots = _data_slots(config)
        self.reassignments = 0

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def n_devices(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return len(self._slots)

    def assignments(self) -> Dict[int, int]:
        """Current ``device_id -> shift`` map."""
        return {e.device_id: e.shift for e in self._entries.values()}

    def snr_of(self, device_id: int) -> float:
        return self._entry(device_id).snr_db

    def shift_of(self, device_id: int) -> int:
        return self._entry(device_id).shift

    def _entry(self, device_id: int) -> AllocationEntry:
        if device_id not in self._entries:
            raise AllocationError(f"device {device_id} is not allocated")
        return self._entries[device_id]

    def _ranked_ids(self) -> List[int]:
        """Device ids in descending-SNR order (the canonical ring order)."""
        return sorted(
            self._entries,
            key=lambda d: self._entries[d].snr_db,
            reverse=True,
        )

    def _spread_assignment(self) -> Dict[int, int]:
        """The canonical spread placement for the current population."""
        ranked = self._ranked_ids()
        indices = _spread_slot_indices(len(ranked), len(self._slots))
        return {
            device_id: self._slots[indices[rank]]
            for rank, device_id in enumerate(ranked)
        }

    def _apply_spread(self) -> bool:
        """Move every device to its spread slot; True if anyone moved."""
        target = self._spread_assignment()
        moved = False
        for device_id, shift in target.items():
            entry = self._entries[device_id]
            if entry.shift != shift:
                moved = moved or entry.shift != -1
                entry.shift = shift
        return moved

    def _reassign_all(self) -> None:
        """Full re-pack announced via the reordering query message."""
        self._apply_spread()
        self.reassignments += 1

    def add_device(self, device_id: int, snr_db: float) -> Tuple[int, bool]:
        """Admit a device; returns ``(shift, reassigned_others)``.

        The newcomer lands at the ring position its SNR deserves. If that
        displaces existing devices, the admit counts as a full
        reassignment — the event the paper announces with the
        log2(256!)-bit reordering query message.
        """
        if device_id in self._entries:
            raise AllocationError(f"device {device_id} already allocated")
        if self.n_devices >= self.capacity:
            raise AllocationError(
                f"network full: {self.capacity} slots in use"
            )
        self._entries[device_id] = AllocationEntry(
            device_id=device_id, shift=-1, snr_db=float(snr_db)
        )
        moved_others = self._apply_spread()
        if moved_others:
            self.reassignments += 1
        return self._entries[device_id].shift, moved_others

    def remove_device(self, device_id: int) -> None:
        """Remove a device and re-spread the survivors."""
        self._entry(device_id)
        del self._entries[device_id]
        if self._entries:
            self._apply_spread()

    def update_snr(self, device_id: int, snr_db: float) -> bool:
        """Record a significantly changed SNR; returns True if the ring
        had to be re-packed (rank changed)."""
        entry = self._entry(device_id)
        old_rank = self._ranked_ids().index(device_id)
        entry.snr_db = float(snr_db)
        new_rank = self._ranked_ids().index(device_id)
        if new_rank != old_rank:
            self._reassign_all()
            return True
        return False

    def validate(self) -> None:
        """Check the allocation invariants; raises on violation.

        * every shift SKIP-aligned and unique,
        * no device inside an association guard region,
        * SNR ordering matches ring ordering over the assigned prefix.
        """
        seen = set()
        for entry in self._entries.values():
            if entry.shift % self._config.skip != 0:
                raise AllocationError(
                    f"shift {entry.shift} breaks SKIP alignment"
                )
            if entry.shift in seen:
                raise AllocationError(f"shift {entry.shift} double-booked")
            seen.add(entry.shift)
            if entry.shift not in self._slots:
                raise AllocationError(
                    f"shift {entry.shift} is reserved or out of range"
                )
        expected = self._spread_assignment()
        for device_id, entry in self._entries.items():
            if entry.shift != expected[device_id]:
                raise AllocationError(
                    "ring order does not match SNR order "
                    f"(device {device_id})"
                )

    def min_distance_between(
        self, device_a: int, device_b: int
    ) -> float:
        """Cyclic bin distance between two allocated devices."""
        return cyclic_bin_distance(
            self.shift_of(device_a),
            self.shift_of(device_b),
            self._config.n_bins,
        )

    def worst_case_exposure_db(
        self, side_lobe_profile=None
    ) -> Optional[float]:
        """Worst (power delta - tolerable delta) over all device pairs.

        For each ordered pair (strong, weak), the strong device's side
        lobe at their cyclic distance must stay below the weak device's
        signal. Returns the worst margin in dB (negative = safe), or
        ``None`` with fewer than two devices.
        """
        from repro.phy.spectrum import side_lobe_profile as make_profile

        if self.n_devices < 2:
            return None
        if side_lobe_profile is None:
            side_lobe_profile = make_profile(
                self._config.chirp_params, self._config.zero_pad_factor
            )
        worst = -np.inf
        entries = list(self._entries.values())
        for strong in entries:
            for weak in entries:
                if strong.device_id == weak.device_id:
                    continue
                delta_db = strong.snr_db - weak.snr_db
                if delta_db <= 0:
                    continue
                distance = cyclic_bin_distance(
                    strong.shift, weak.shift, self._config.n_bins
                )
                lobe_db = side_lobe_profile.at_natural_bin(distance)
                margin = delta_db + lobe_db  # lobe is negative dB
                worst = max(worst, margin)
        return float(worst) if np.isfinite(worst) else None
