"""Power-aware cyclic-shift allocation (Section 3.2.3).

The near-far problem: a zero-padded FFT peak carries sinc side lobes, so a
strong device buries weak devices in nearby bins. The paper's coarse-
grained fix is allocation: sort devices by SNR and assign shifts so that
similar-SNR devices sit in adjacent bins and the weakest devices sit at
the maximum cyclic distance from the strongest. Because the dechirped
spectrum wraps (Fig. 15b is symmetric), "far" means *cyclic* bin distance
— so a simple descending-SNR walk around the ring would put the weakest
device right back next to the strongest at the wrap point. The correct
layout is the *folded* one the paper's Fig. 8 annotates ("High Power |
Low Power | High Power"): strong devices at both edges of the spectrum,
SNR decreasing toward the middle from both sides, weakest devices
mid-ring — maximally (cyclically) distant from the strong edges.

Association reserves one shift in the high-SNR region (near bin 0) and one
in the low-SNR region (near the middle), each with SKIP-guards, so joining
devices of any strength can be heard (Section 3.3.2).

Population state is flat by default: :class:`AllocationTable` keeps its
device columns in a :class:`repro.protocol.population.Population`
(struct-of-arrays) and ranks/spreads with the vectorised kernels, so
bulk admits are O(N) array ops instead of per-device dictionary walks.
The legacy per-device-object implementation survives as
``backend="object"`` and the equivalence suite
(``tests/test_population_scale.py``) pins the two bit-identical.

The slot geometry is cached per configuration: ``_data_slots`` /
``association_shifts`` are pure functions of the frozen
:class:`NetScatterConfig`, computed once per config instead of on every
call (pinned by a regression test).

>>> from repro.core.config import NetScatterConfig
>>> config = NetScatterConfig(n_association_shifts=0)
>>> power_aware_allocation([-30.0, -10.0], config)
{1: 2, 0: 258}
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import NetScatterConfig
from repro.errors import AllocationError

#: Storage backends of :class:`AllocationTable`: ``"flat"`` (default,
#: struct-of-arrays) and ``"object"`` (legacy per-device entries).
TABLE_BACKENDS = ("flat", "object")


def cyclic_bin_distance(a: float, b: float, n_bins: int) -> float:
    """Cyclic distance between two bins on the ``n_bins`` ring."""
    raw = abs(float(a) - float(b)) % n_bins
    return min(raw, n_bins - raw)


def power_aware_allocation(
    snrs_db: Sequence[float], config: NetScatterConfig
) -> Dict[int, int]:
    """Assign SKIP-spaced cyclic shifts by descending SNR.

    ``snrs_db[i]`` is device ``i``'s SNR at the AP (measured during
    association). Returns ``device_index -> shift``. The strongest device
    gets the first data shift after the high-SNR association slot; each
    subsequent (weaker) device gets the next SKIP-spaced shift, so SNR
    decreases monotonically with ring position and the weakest devices end
    up farthest (cyclically) from the strongest.

    The body is one argsort plus a cached folded-gather
    (:func:`repro.protocol.population.spread_slot_indices`); the result
    dict lists devices strongest-first, as the legacy per-rank loop did.
    """
    n_devices = len(snrs_db)
    if n_devices == 0:
        raise AllocationError("no devices to allocate")
    slots = _data_slot_array(config)
    if n_devices > slots.size:
        raise AllocationError(
            f"{n_devices} devices exceed the {slots.size}-slot capacity "
            f"of {config.describe()}"
        )
    from repro.protocol.population import spread_slot_indices

    order = np.argsort(np.asarray(snrs_db, dtype=float))[::-1]
    indices = spread_slot_indices(n_devices, slots.size)
    ranked_shifts = slots[indices]
    return {
        int(device_index): int(shift)
        for device_index, shift in zip(order, ranked_shifts)
    }


def _spread_slot_indices(n_devices: int, n_slots: int) -> List[int]:
    """Folded slot indices for descending-SNR ranks.

    Two requirements combine here:

    * *spread*: below capacity, occupied slots spread evenly over the
      ring, which is why the paper observes an effective SKIP >= 3
      separation when fewer than half the slots are in use (Section
      4.4's variance discussion);
    * *fold*: rank 0 (strongest) takes the first spread position, rank 1
      the last, rank 2 the second, and so on — strong devices occupy
      both spectrum edges and the weakest land mid-ring, maximising
      their cyclic distance from the strong edges (Fig. 8's "High Power
      | Low Power | High Power" layout).

    Delegates to the cached vectorised kernel in
    :mod:`repro.protocol.population`; kept for API compatibility.
    """
    from repro.protocol.population import spread_slot_indices

    return spread_slot_indices(n_devices, n_slots).tolist()


def random_allocation(
    n_devices: int, config: NetScatterConfig, rng=None
) -> Dict[int, int]:
    """SKIP-spaced but SNR-blind allocation (the ablation baseline)."""
    from repro.utils.rng import make_rng

    slots = _data_slots(config)
    if n_devices > len(slots):
        raise AllocationError(
            f"{n_devices} devices exceed the {len(slots)}-slot capacity"
        )
    generator = make_rng(rng)
    chosen = generator.permutation(len(slots))[:n_devices]
    return {i: slots[int(c)] for i, c in enumerate(chosen)}


@lru_cache(maxsize=64)
def _data_slots_cached(config: NetScatterConfig) -> Tuple[int, ...]:
    """The per-config slot walk, computed once (configs are frozen)."""
    n = config.n_bins
    skip = config.skip
    reserved = set()
    for assoc in association_shifts(config):
        for guard in range(-skip, skip + 1):
            reserved.add((assoc + guard) % n)
    slots = []
    for step in range(n // skip):
        shift = (config.skip + step * skip) % n
        if shift not in reserved:
            slots.append(shift)
    return tuple(slots)


@lru_cache(maxsize=64)
def _data_slot_array(config: NetScatterConfig) -> np.ndarray:
    """Read-only int64 slot array per config (the kernels' view)."""
    slots = np.array(_data_slots_cached(config), dtype=np.int64)
    slots.setflags(write=False)
    return slots


def _data_slots(config: NetScatterConfig) -> List[int]:
    """SKIP-spaced data shifts in ring order, skipping association slots.

    The slot list starts just after the high-SNR association shift and
    walks the ring once, excluding the guard neighbourhoods of both
    association shifts. Cached per configuration (the config dataclass
    is frozen/hashable); callers get a fresh list each time.
    """
    return list(_data_slots_cached(config))


@lru_cache(maxsize=64)
def _association_shifts_cached(
    config: NetScatterConfig,
) -> Tuple[int, ...]:
    if config.n_association_shifts == 0:
        return ()
    if config.n_association_shifts == 1:
        return (0,)
    shifts = [0, (config.n_bins // 2) // config.skip * config.skip]
    extra = config.n_association_shifts - 2
    for i in range(extra):
        # Additional association slots interleave at quarter positions.
        quarter = (config.n_bins * (i + 1) // 4) // config.skip * config.skip
        shifts.append(quarter)
    return tuple(shifts[: config.n_association_shifts])


def association_shifts(config: NetScatterConfig) -> List[int]:
    """Reserved association shifts: high-SNR region (bin 0 area) and
    low-SNR region (mid-spectrum), per Section 3.3.2. Cached per
    configuration; callers get a fresh list each time."""
    return list(_association_shifts_cached(config))


@dataclass
class AllocationEntry:
    """One device's standing in the allocation table (object backend)."""

    device_id: int
    shift: int
    snr_db: float


class AllocationTable:
    """Incremental power-aware allocation at the AP.

    Maintains the SNR-sorted ring as devices join and leave. A joining
    device is placed at the rank its SNR deserves; if that requires moving
    existing devices, the table performs a *full reassignment* — the event
    the paper handles with the log2(256!)-bit reordering query message.
    The table reports whether each admit was incremental or required
    reassignment so the protocol layer can charge the right overhead.

    ``backend="flat"`` (default) keeps the population in struct-of-array
    columns (:class:`repro.protocol.population.Population`) and ranks,
    spreads and validates with vectorised kernels; ``backend="object"``
    is the legacy one-``AllocationEntry``-per-device implementation.
    Decisions (shifts, reassignment counts, error behaviour) are pinned
    bit-identical between the two by the equivalence suite.
    """

    def __init__(
        self,
        config: NetScatterConfig,
        backend: str = "flat",
        population=None,
    ) -> None:
        if backend not in TABLE_BACKENDS:
            raise AllocationError(
                f"backend must be one of {TABLE_BACKENDS}, got {backend!r}"
            )
        self._config = config
        self._backend = backend
        self._slots = _data_slots(config)
        self._slot_array = _data_slot_array(config)
        self.reassignments = 0
        if backend == "flat":
            from repro.protocol.population import Population

            self._pop = population if population is not None else Population()
            self._entries = None
        else:
            self._pop = None
            self._entries: Dict[int, AllocationEntry] = {}

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def population(self):
        """The underlying flat population (``None`` on the object path)."""
        return self._pop

    @property
    def n_devices(self) -> int:
        if self._backend == "flat":
            return self._pop.n_devices
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return len(self._slots)

    def assignments(self) -> Dict[int, int]:
        """Current ``device_id -> shift`` map."""
        if self._backend == "flat":
            return dict(
                zip(
                    self._pop.device_id.tolist(),
                    self._pop.shift.tolist(),
                )
            )
        return {e.device_id: e.shift for e in self._entries.values()}

    def snr_of(self, device_id: int) -> float:
        if self._backend == "flat":
            return float(self._pop.snr_db[self._pop.row_of(device_id)])
        return self._entry(device_id).snr_db

    def shift_of(self, device_id: int) -> int:
        if self._backend == "flat":
            return int(self._pop.shift[self._pop.row_of(device_id)])
        return self._entry(device_id).shift

    def _entry(self, device_id: int) -> AllocationEntry:
        if device_id not in self._entries:
            raise AllocationError(f"device {device_id} is not allocated")
        return self._entries[device_id]

    def _ranked_ids(self) -> List[int]:
        """Device ids in descending-SNR order (the canonical ring order)."""
        if self._backend == "flat":
            return self._pop.device_id[self._pop.ranked_rows()].tolist()
        return sorted(
            self._entries,
            key=lambda d: self._entries[d].snr_db,
            reverse=True,
        )

    def _spread_assignment(self) -> Dict[int, int]:
        """The canonical spread placement for the current population."""
        if self._backend == "flat":
            from repro.protocol.population import spread_shifts

            target = spread_shifts(self._pop.snr_db, self._slot_array)
            return dict(zip(self._pop.device_id.tolist(), target.tolist()))
        ranked = self._ranked_ids()
        indices = _spread_slot_indices(len(ranked), len(self._slots))
        return {
            device_id: self._slots[indices[rank]]
            for rank, device_id in enumerate(ranked)
        }

    def _apply_spread(self) -> bool:
        """Move every device to its spread slot; True if anyone moved.

        "Moved" counts only devices that already held a real shift
        (``-1`` marks a fresh admit) — the newcomer taking its first
        slot is not a reassignment event.
        """
        if self._backend == "flat":
            from repro.protocol.population import spread_shifts

            shifts = self._pop.shift
            target = spread_shifts(self._pop.snr_db, self._slot_array)
            changed = target != shifts
            moved = bool(np.any(changed & (shifts != -1)))
            shifts[changed] = target[changed]
            return moved
        target = self._spread_assignment()
        moved = False
        for device_id, shift in target.items():
            entry = self._entries[device_id]
            if entry.shift != shift:
                moved = moved or entry.shift != -1
                entry.shift = shift
        return moved

    def _reassign_all(self) -> None:
        """Full re-pack announced via the reordering query message."""
        self._apply_spread()
        self.reassignments += 1

    def add_device(self, device_id: int, snr_db: float) -> Tuple[int, bool]:
        """Admit a device; returns ``(shift, reassigned_others)``.

        The newcomer lands at the ring position its SNR deserves. If that
        displaces existing devices, the admit counts as a full
        reassignment — the event the paper announces with the
        log2(256!)-bit reordering query message.
        """
        if self._backend == "flat":
            if device_id in self._pop:
                raise AllocationError(
                    f"device {device_id} already allocated"
                )
            if self.n_devices >= self.capacity:
                raise AllocationError(
                    f"network full: {self.capacity} slots in use"
                )
            row = self._pop.add(device_id, snr_db)
            moved_others = self._apply_spread()
            if moved_others:
                self.reassignments += 1
            return int(self._pop.shift[row]), moved_others
        if device_id in self._entries:
            raise AllocationError(f"device {device_id} already allocated")
        if self.n_devices >= self.capacity:
            raise AllocationError(
                f"network full: {self.capacity} slots in use"
            )
        self._entries[device_id] = AllocationEntry(
            device_id=device_id, shift=-1, snr_db=float(snr_db)
        )
        moved_others = self._apply_spread()
        if moved_others:
            self.reassignments += 1
        return self._entries[device_id].shift, moved_others

    def bulk_add(
        self,
        device_ids: Sequence[int],
        snrs_db: Sequence[float],
    ) -> Tuple[np.ndarray, bool]:
        """Admit many devices under a *single* re-spread.

        The mass-join fast path: all newcomers enter the ring at once
        and at most one reassignment event is charged (against N when
        admitting one at a time). Returns ``(shifts, reassigned)`` with
        ``shifts`` aligned to ``device_ids``. Identical semantics on
        both backends.
        """
        ids = [int(d) for d in device_ids]
        if self.n_devices + len(ids) > self.capacity:
            raise AllocationError(
                f"network full: {self.capacity} slots in use"
            )
        if self._backend == "flat":
            rows = self._pop.bulk_add(ids, snrs_db)
            moved_others = self._apply_spread()
            if moved_others:
                self.reassignments += 1
            return self._pop.shift[rows].copy(), moved_others
        for device_id in ids:
            if device_id in self._entries:
                raise AllocationError(
                    f"device {device_id} already allocated"
                )
        if len(set(ids)) != len(ids):
            raise AllocationError("duplicate device ids in bulk add")
        for device_id, snr_db in zip(ids, snrs_db):
            self._entries[device_id] = AllocationEntry(
                device_id=device_id, shift=-1, snr_db=float(snr_db)
            )
        moved_others = self._apply_spread()
        if moved_others:
            self.reassignments += 1
        shifts = np.array(
            [self._entries[d].shift for d in ids], dtype=np.int64
        )
        return shifts, moved_others

    def remove_device(self, device_id: int) -> None:
        """Remove a device and re-spread the survivors."""
        if self._backend == "flat":
            self._pop.row_of(device_id)  # raises if unknown
            self._pop.remove(device_id)
            if self._pop.n_devices:
                self._apply_spread()
            return
        self._entry(device_id)
        del self._entries[device_id]
        if self._entries:
            self._apply_spread()

    def update_snr(self, device_id: int, snr_db: float) -> bool:
        """Record a significantly changed SNR; returns True if the ring
        had to be re-packed (rank changed)."""
        if self._backend == "flat":
            row = self._pop.row_of(device_id)
            ranked = self._pop.ranked_rows()
            old_rank = int(np.flatnonzero(ranked == row)[0])
            self._pop.snr_db[row] = float(snr_db)
            ranked = self._pop.ranked_rows()
            new_rank = int(np.flatnonzero(ranked == row)[0])
            if new_rank != old_rank:
                self._reassign_all()
                return True
            return False
        entry = self._entry(device_id)
        old_rank = self._ranked_ids().index(device_id)
        entry.snr_db = float(snr_db)
        new_rank = self._ranked_ids().index(device_id)
        if new_rank != old_rank:
            self._reassign_all()
            return True
        return False

    def validate(self) -> None:
        """Check the allocation invariants; raises on violation.

        * every shift SKIP-aligned and unique,
        * no device inside an association guard region,
        * SNR ordering matches ring ordering over the assigned prefix.
        """
        if self._backend == "flat":
            from repro.protocol.population import spread_shifts

            shifts = self._pop.shift
            if shifts.size == 0:
                return
            misaligned = shifts % self._config.skip != 0
            if np.any(misaligned):
                bad = int(shifts[misaligned][0])
                raise AllocationError(
                    f"shift {bad} breaks SKIP alignment"
                )
            unique, counts = np.unique(shifts, return_counts=True)
            if np.any(counts > 1):
                bad = int(unique[counts > 1][0])
                raise AllocationError(f"shift {bad} double-booked")
            outside = ~np.isin(shifts, self._slot_array)
            if np.any(outside):
                bad = int(shifts[outside][0])
                raise AllocationError(
                    f"shift {bad} is reserved or out of range"
                )
            target = spread_shifts(self._pop.snr_db, self._slot_array)
            mismatched = shifts != target
            if np.any(mismatched):
                bad = int(self._pop.device_id[mismatched][0])
                raise AllocationError(
                    "ring order does not match SNR order "
                    f"(device {bad})"
                )
            return
        seen = set()
        for entry in self._entries.values():
            if entry.shift % self._config.skip != 0:
                raise AllocationError(
                    f"shift {entry.shift} breaks SKIP alignment"
                )
            if entry.shift in seen:
                raise AllocationError(f"shift {entry.shift} double-booked")
            seen.add(entry.shift)
            if entry.shift not in self._slots:
                raise AllocationError(
                    f"shift {entry.shift} is reserved or out of range"
                )
        expected = self._spread_assignment()
        for device_id, entry in self._entries.items():
            if entry.shift != expected[device_id]:
                raise AllocationError(
                    "ring order does not match SNR order "
                    f"(device {device_id})"
                )

    def min_distance_between(
        self, device_a: int, device_b: int
    ) -> float:
        """Cyclic bin distance between two allocated devices."""
        return cyclic_bin_distance(
            self.shift_of(device_a),
            self.shift_of(device_b),
            self._config.n_bins,
        )

    def _snr_shift_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._backend == "flat":
            return self._pop.snr_db, self._pop.shift
        entries = list(self._entries.values())
        return (
            np.array([e.snr_db for e in entries], dtype=float),
            np.array([e.shift for e in entries], dtype=float),
        )

    def worst_case_exposure_db(
        self, side_lobe_profile=None
    ) -> Optional[float]:
        """Worst (power delta - tolerable delta) over all device pairs.

        For each ordered pair (strong, weak), the strong device's side
        lobe at their cyclic distance must stay below the weak device's
        signal. Returns the worst margin in dB (negative = safe), or
        ``None`` with fewer than two devices. Evaluated as one pairwise
        matrix pass (the profile lookup vectorises over the distance
        matrix) on both backends.
        """
        from repro.phy.spectrum import side_lobe_profile as make_profile

        if self.n_devices < 2:
            return None
        if side_lobe_profile is None:
            side_lobe_profile = make_profile(
                self._config.chirp_params, self._config.zero_pad_factor
            )
        snrs, shifts = self._snr_shift_arrays()
        delta_db = snrs[:, None] - snrs[None, :]
        raw = np.abs(
            shifts[:, None].astype(float) - shifts[None, :].astype(float)
        ) % self._config.n_bins
        distance = np.minimum(raw, self._config.n_bins - raw)
        zp = side_lobe_profile.zero_pad_factor
        idx = (
            np.round(distance * zp).astype(np.int64)
            % side_lobe_profile.n_bins
        )
        lobe_db = side_lobe_profile.power_db[idx]
        margin = np.where(delta_db > 0, delta_db + lobe_db, -np.inf)
        worst = float(np.max(margin))
        return worst if np.isfinite(worst) else None
