"""Concurrent (SF, BW) pair analysis (Section 2.2, "different SFs").

An alternative to NetScatter: run several LoRa networks concurrently on
different spreading factors. Two configurations can coexist without
sensitivity loss only if their chirp *slopes* ``BW^2 / 2^SF`` differ
(Sornin & Champion's patent, cited as [24]). Over the LoRa bandwidth
family that fits a 500 kHz band (the half-split chain 7.8125 kHz ...
500 kHz) and SF 6-12, there are exactly 19 distinct slopes; requiring
sensitivity better than -123 dBm and at least 1 kbps leaves 8 usable
concurrent configurations — the paper's counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.core.config import SX1276_SNR_LIMIT_DB, NetScatterConfig
from repro.phy.chirp import ChirpParams

DEFAULT_BANDWIDTHS_HZ = (
    7812.5,
    15625.0,
    31250.0,
    62500.0,
    125e3,
    250e3,
    500e3,
)
"""The power-of-two LoRa bandwidth chain inside a 500 kHz allocation."""

DEFAULT_SPREADING_FACTORS = (6, 7, 8, 9, 10, 11, 12)


@dataclass(frozen=True)
class SfBwPair:
    """One candidate LoRa operating point."""

    bandwidth_hz: float
    spreading_factor: int

    @property
    def params(self) -> ChirpParams:
        return ChirpParams(
            bandwidth_hz=self.bandwidth_hz,
            spreading_factor=self.spreading_factor,
        )

    @property
    def slope(self) -> float:
        """Chirp slope ``BW^2 / 2^SF`` (the concurrency discriminant)."""
        return self.params.chirp_slope_hz_per_s

    @property
    def bitrate_bps(self) -> float:
        return self.params.lora_bitrate_bps

    @property
    def sensitivity_dbm(self) -> float:
        cfg = NetScatterConfig(
            bandwidth_hz=self.bandwidth_hz,
            spreading_factor=self.spreading_factor,
        )
        return cfg.sensitivity_dbm


def _slope_key(pair: SfBwPair) -> float:
    return round(pair.slope, 6)


def all_pairs(
    bandwidths_hz: Sequence[float] = DEFAULT_BANDWIDTHS_HZ,
    spreading_factors: Sequence[int] = DEFAULT_SPREADING_FACTORS,
) -> List[SfBwPair]:
    """Every candidate (SF, BW) combination."""
    return [
        SfBwPair(bandwidth_hz=bw, spreading_factor=sf)
        for bw in bandwidths_hz
        for sf in spreading_factors
    ]


def _dedupe_by_slope(pairs: Sequence[SfBwPair]) -> List[SfBwPair]:
    """Keep the highest-bitrate member of each slope-equivalence class.

    Combinations sharing a slope (e.g. (500 kHz, SF 8) and (250 kHz,
    SF 6): both 977 MHz/ms) cannot be concurrently decoded, so only one
    member of each class can be fielded.
    """
    by_slope: Dict[float, SfBwPair] = {}
    for pair in pairs:
        key = _slope_key(pair)
        current = by_slope.get(key)
        if current is None or pair.bitrate_bps > current.bitrate_bps:
            by_slope[key] = pair
    return sorted(
        by_slope.values(),
        key=lambda p: (-p.bandwidth_hz, p.spreading_factor),
    )


def slope_distinct_pairs(
    bandwidths_hz: Sequence[float] = DEFAULT_BANDWIDTHS_HZ,
    spreading_factors: Sequence[int] = DEFAULT_SPREADING_FACTORS,
) -> List[SfBwPair]:
    """The maximal slope-distinct set (paper: 19 pairs)."""
    return _dedupe_by_slope(all_pairs(bandwidths_hz, spreading_factors))


def usable_concurrent_pairs(
    min_sensitivity_dbm: float = -123.0,
    min_bitrate_bps: float = 1e3,
    bandwidths_hz: Sequence[float] = DEFAULT_BANDWIDTHS_HZ,
    spreading_factors: Sequence[int] = DEFAULT_SPREADING_FACTORS,
) -> List[SfBwPair]:
    """Slope-distinct pairs that also meet the practical constraints.

    Filters *before* deduplication: a slope class counts as usable if any
    member passes (sensitivity at or better than -123 dBm, bitrate of at
    least 1 kbps). The paper counts 8.
    """
    passing = [
        pair
        for pair in all_pairs(bandwidths_hz, spreading_factors)
        if pair.spreading_factor in SX1276_SNR_LIMIT_DB
        and pair.sensitivity_dbm <= min_sensitivity_dbm
        and pair.bitrate_bps >= min_bitrate_bps
    ]
    return _dedupe_by_slope(passing)


def concurrency_ceiling(pairs: Sequence[SfBwPair]) -> int:
    """Concurrent-transmission ceiling of the multi-SF approach.

    One transmission per usable pair at a time — orders of magnitude
    below NetScatter's 2^SF concurrent devices per band.
    """
    return len(list(pairs))


def verify_pairwise_distinct_slopes(pairs: Sequence[SfBwPair]) -> bool:
    """Invariant check used by tests: no two pairs share a slope."""
    slopes: Set[float] = set()
    for pair in pairs:
        key = _slope_key(pair)
        if key in slopes:
            return False
        slopes.add(key)
    return True
