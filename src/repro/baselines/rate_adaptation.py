"""Ideal LoRa rate adaptation via the SX1276 SNR table (Section 4.4).

The paper's strongest baseline gives every backscatter device the best
single-user LoRa bitrate its SNR supports, chosen from the SX1276
datasheet's demodulator SNR limits across (SF, BW) combinations. This is
"ideal" in that it ignores the adaptation protocol's own overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SX1276_SNR_LIMIT_DB
from repro.channel.awgn import noise_power_dbm
from repro.constants import LORA_MAX_BITRATE_BPS
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams

CANDIDATE_BANDWIDTHS_HZ = (125e3, 250e3, 500e3)
CANDIDATE_SPREADING_FACTORS = (6, 7, 8, 9, 10, 11, 12)


@dataclass(frozen=True)
class RateChoice:
    """A feasible (SF, BW) operating point for one device."""

    bandwidth_hz: float
    spreading_factor: int
    bitrate_bps: float
    required_snr_db: float

    @property
    def params(self) -> ChirpParams:
        return ChirpParams(
            bandwidth_hz=self.bandwidth_hz,
            spreading_factor=self.spreading_factor,
        )


def feasible_choices(
    snr_db: float,
    reference_bandwidth_hz: float = 500e3,
    max_bitrate_bps: float = LORA_MAX_BITRATE_BPS,
) -> List[RateChoice]:
    """All (SF, BW) pairs whose SNR demand is met at ``snr_db``.

    ``snr_db`` is referred to ``reference_bandwidth_hz``; narrower
    bandwidths see proportionally less noise, which the comparison
    accounts for (a 125 kHz choice gains 6 dB of SNR over 500 kHz).
    """
    choices: List[RateChoice] = []
    reference_noise = noise_power_dbm(reference_bandwidth_hz)
    for bw in CANDIDATE_BANDWIDTHS_HZ:
        snr_at_bw = snr_db + reference_noise - noise_power_dbm(bw)
        for sf in CANDIDATE_SPREADING_FACTORS:
            limit = SX1276_SNR_LIMIT_DB.get(sf)
            if limit is None or snr_at_bw < limit:
                continue
            params = ChirpParams(bandwidth_hz=bw, spreading_factor=sf)
            bitrate = min(params.lora_bitrate_bps, max_bitrate_bps)
            choices.append(
                RateChoice(
                    bandwidth_hz=bw,
                    spreading_factor=sf,
                    bitrate_bps=bitrate,
                    required_snr_db=limit,
                )
            )
    return choices


def best_choice(
    snr_db: float, reference_bandwidth_hz: float = 500e3
) -> Optional[RateChoice]:
    """The highest-bitrate feasible choice, or ``None`` if out of range."""
    choices = feasible_choices(snr_db, reference_bandwidth_hz)
    if not choices:
        return None
    return max(choices, key=lambda c: c.bitrate_bps)


def best_rate_bps(
    snr_db: float,
    reference_bandwidth_hz: float = 500e3,
    floor_bitrate_bps: float = 0.0,
) -> float:
    """Ideal rate-adaptation bitrate for a device at ``snr_db``.

    Devices below even SF12's limit get ``floor_bitrate_bps`` (the
    comparison drops them, as the paper's testbed had no such devices).
    """
    choice = best_choice(snr_db, reference_bandwidth_hz)
    if choice is None:
        return float(floor_bitrate_bps)
    return choice.bitrate_bps


def rates_for_population(
    snrs_db: Sequence[float], reference_bandwidth_hz: float = 500e3
) -> List[float]:
    """Per-device ideal bitrates for a deployment's SNR vector."""
    if len(snrs_db) == 0:
        raise ConfigurationError("need at least one device")
    return [
        best_rate_bps(snr, reference_bandwidth_hz) for snr in snrs_db
    ]
