"""Ideal LoRa rate adaptation via the SX1276 SNR table (Section 4.4).

The paper's strongest baseline gives every backscatter device the best
single-user LoRa bitrate its SNR supports, chosen from the SX1276
datasheet's demodulator SNR limits across (SF, BW) combinations. This is
"ideal" in that it ignores the adaptation protocol's own overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.core.config import SX1276_SNR_LIMIT_DB
from repro.channel.awgn import noise_power_dbm
from repro.constants import LORA_MAX_BITRATE_BPS
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams

CANDIDATE_BANDWIDTHS_HZ = (125e3, 250e3, 500e3)
CANDIDATE_SPREADING_FACTORS = (6, 7, 8, 9, 10, 11, 12)


@dataclass(frozen=True)
class RateChoice:
    """A feasible (SF, BW) operating point for one device."""

    bandwidth_hz: float
    spreading_factor: int
    bitrate_bps: float
    required_snr_db: float

    @property
    def params(self) -> ChirpParams:
        return ChirpParams(
            bandwidth_hz=self.bandwidth_hz,
            spreading_factor=self.spreading_factor,
        )


@lru_cache(maxsize=16)
def _candidate_table(
    reference_bandwidth_hz: float, max_bitrate_bps: float
) -> Tuple[Tuple[float, RateChoice], ...]:
    """The fixed (threshold, choice) table, built once per reference.

    Each entry pairs a candidate operating point with the minimum SNR —
    *referred to the reference bandwidth* — at which it demodulates.
    The candidates themselves never change, so the per-device adaptation
    (which the Fig. 17-19 baselines run thousands of times per sweep)
    reduces to threshold comparisons instead of rebuilding 21
    :class:`ChirpParams` per call.
    """
    reference_noise = noise_power_dbm(reference_bandwidth_hz)
    table = []
    for bw in CANDIDATE_BANDWIDTHS_HZ:
        bandwidth_gain_db = reference_noise - noise_power_dbm(bw)
        for sf in CANDIDATE_SPREADING_FACTORS:
            limit = SX1276_SNR_LIMIT_DB.get(sf)
            if limit is None:
                continue
            params = ChirpParams(bandwidth_hz=bw, spreading_factor=sf)
            bitrate = min(params.lora_bitrate_bps, max_bitrate_bps)
            table.append(
                (
                    limit - bandwidth_gain_db,
                    RateChoice(
                        bandwidth_hz=bw,
                        spreading_factor=sf,
                        bitrate_bps=bitrate,
                        required_snr_db=limit,
                    ),
                )
            )
    return tuple(table)


def feasible_choices(
    snr_db: float,
    reference_bandwidth_hz: float = 500e3,
    max_bitrate_bps: float = LORA_MAX_BITRATE_BPS,
) -> List[RateChoice]:
    """All (SF, BW) pairs whose SNR demand is met at ``snr_db``.

    ``snr_db`` is referred to ``reference_bandwidth_hz``; narrower
    bandwidths see proportionally less noise, which the comparison
    accounts for (a 125 kHz choice gains 6 dB of SNR over 500 kHz).
    """
    return [
        choice
        for threshold, choice in _candidate_table(
            float(reference_bandwidth_hz), float(max_bitrate_bps)
        )
        if snr_db >= threshold
    ]


@lru_cache(maxsize=4096)
def best_choice(
    snr_db: float, reference_bandwidth_hz: float = 500e3
) -> Optional[RateChoice]:
    """The highest-bitrate feasible choice, or ``None`` if out of range.

    Cached: deployments poll the same per-device SNRs once per sweep
    point, so Fig. 17-19 hit this with a few hundred distinct values.
    """
    choices = feasible_choices(snr_db, reference_bandwidth_hz)
    if not choices:
        return None
    return max(choices, key=lambda c: c.bitrate_bps)


def best_rate_bps(
    snr_db: float,
    reference_bandwidth_hz: float = 500e3,
    floor_bitrate_bps: float = 0.0,
) -> float:
    """Ideal rate-adaptation bitrate for a device at ``snr_db``.

    Devices below even SF12's limit get ``floor_bitrate_bps`` (the
    comparison drops them, as the paper's testbed had no such devices).
    """
    choice = best_choice(snr_db, reference_bandwidth_hz)
    if choice is None:
        return float(floor_bitrate_bps)
    return choice.bitrate_bps


def rates_for_population(
    snrs_db: Sequence[float], reference_bandwidth_hz: float = 500e3
) -> List[float]:
    """Per-device ideal bitrates for a deployment's SNR vector."""
    if len(snrs_db) == 0:
        raise ConfigurationError("need at least one device")
    return [
        best_rate_bps(snr, reference_bandwidth_hz) for snr in snrs_db
    ]
