"""LoRa Backscatter baseline [25]: sequential query-response TDMA.

The paper replicates LoRa Backscatter (whose code was not released) as a
query-response system: the AP polls each device in turn with a 28-bit
query; the device answers with an 8-symbol preamble and its payload at
either a fixed 8.7 kbps or (for the idealised variant) the best bitrate
its SNR supports. This module reproduces that replication and its
rate/latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.airtime import lora_backscatter_poll_airtime_s
from repro.baselines.rate_adaptation import best_choice
from repro.constants import (
    LORA_BACKSCATTER_FIXED_BITRATE_BPS,
    LORA_BACKSCATTER_QUERY_BITS,
    PAYLOAD_CRC_BITS,
)
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams


@dataclass(frozen=True)
class PollAccounting:
    """Air-time breakdown of polling one device."""

    device_index: int
    bitrate_bps: float
    poll_airtime_s: float
    payload_airtime_s: float


class LoRaBackscatterNetwork:
    """The TDMA baseline over a deployment's SNR vector.

    Parameters
    ----------
    snrs_db:
        Per-device uplink SNRs (referred to 500 kHz).
    rate_adaptation:
        If True, each device uses its ideal single-user bitrate (and the
        matching preamble duration); otherwise the fixed 8.7 kbps of the
        original system, with the deployment (500 kHz, SF 9) preamble.
    """

    def __init__(
        self,
        snrs_db: Sequence[float],
        rate_adaptation: bool = False,
        payload_bits: int = PAYLOAD_CRC_BITS,
        fixed_bitrate_bps: float = LORA_BACKSCATTER_FIXED_BITRATE_BPS,
        fixed_params: Optional[ChirpParams] = None,
    ) -> None:
        if len(snrs_db) == 0:
            raise ConfigurationError("need at least one device")
        self._snrs = [float(s) for s in snrs_db]
        self._rate_adaptation = bool(rate_adaptation)
        self._payload_bits = int(payload_bits)
        self._fixed_bitrate = float(fixed_bitrate_bps)
        self._fixed_params = fixed_params or ChirpParams(
            bandwidth_hz=500e3, spreading_factor=9
        )

    @property
    def n_devices(self) -> int:
        return len(self._snrs)

    def _device_choice(self, index: int):
        """The adapted rate choice for one device (None when fixed-rate
        or out of range)."""
        if not self._rate_adaptation:
            return None
        return best_choice(self._snrs[index])

    def device_bitrate_bps(self, index: int) -> float:
        """Payload bitrate the indexed device transmits at."""
        choice = self._device_choice(index)
        if choice is None:
            # Fixed-rate mode, or an out-of-range device falling back to
            # the slowest configuration.
            return self._fixed_bitrate
        return choice.bitrate_bps

    def device_preamble_s(self, index: int, n_symbols: int = 8) -> float:
        """Preamble duration for the device's chosen modulation."""
        choice = self._device_choice(index)
        params = choice.params if choice is not None else self._fixed_params
        return n_symbols * params.symbol_duration_s

    def poll(self, index: int) -> PollAccounting:
        """Air-time accounting for polling one device."""
        bitrate = self.device_bitrate_bps(index)
        preamble_s = self.device_preamble_s(index)
        poll_s = lora_backscatter_poll_airtime_s(
            bitrate,
            payload_bits=self._payload_bits,
            preamble_s=preamble_s,
            query_bits=LORA_BACKSCATTER_QUERY_BITS,
        )
        return PollAccounting(
            device_index=index,
            bitrate_bps=bitrate,
            poll_airtime_s=poll_s,
            payload_airtime_s=self._payload_bits / bitrate,
        )

    def full_sweep(self) -> List[PollAccounting]:
        """Poll every device once (one full data-collection cycle)."""
        return [self.poll(i) for i in range(self.n_devices)]

    def network_phy_rate_bps(self) -> float:
        """Total payload bits over total *payload* air time (Fig. 17)."""
        polls = self.full_sweep()
        total_bits = self._payload_bits * self.n_devices
        total_payload_time = sum(p.payload_airtime_s for p in polls)
        return total_bits / total_payload_time

    def link_layer_rate_bps(self) -> float:
        """Total payload bits over total poll air time (Fig. 18)."""
        polls = self.full_sweep()
        total_bits = self._payload_bits * self.n_devices
        total_time = sum(p.poll_airtime_s for p in polls)
        return total_bits / total_time

    def network_latency_s(self) -> float:
        """Time to hear from every device once (Fig. 19)."""
        return sum(p.poll_airtime_s for p in self.full_sweep())

    def summary(self) -> Dict[str, float]:
        """All three evaluation metrics in one map."""
        return {
            "n_devices": float(self.n_devices),
            "network_phy_rate_bps": self.network_phy_rate_bps(),
            "link_layer_rate_bps": self.link_layer_rate_bps(),
            "network_latency_s": self.network_latency_s(),
        }
