"""Choir [12] baseline: fractional-FFT-bin disambiguation.

Choir decodes concurrent LoRa radios by attributing each FFT peak to a
transmitter via the *fractional* part of its bin index (hardware offsets
give each radio a stable fraction, resolvable to ~1/10 bin). Section 2.2
gives two reasons this cannot scale to backscatter:

1. distinct-fraction probability: with a 1/10-bin resolution, the chance
   that N transmitters all land on different fractions is
   ``10! / ((10-N)! * 10^N)`` — only ~30% at N = 5;
2. same-shift collisions: two radios transmitting the same data symbol
   collide irrecoverably with probability ``~N(N-1)/2^(SF+1)`` per symbol;
3. backscatter tags synthesise ~3 MHz instead of 900 MHz, shrinking their
   frequency spread ~90x to under a third of a bin (Fig. 4), so the
   fractions are not distinct in the first place.

This module implements the analytic models and a working fractional-bin
decoder so the claims can be demonstrated, not just asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DecodingError
from repro.phy.chirp import ChirpParams
from repro.phy.demodulation import Demodulator
from repro.utils.rng import RngLike, make_rng

CHOIR_FRACTION_RESOLUTION = 10
"""Choir resolves one-tenth of an FFT bin."""


def choir_distinct_fraction_probability(
    n_devices: int, resolution: int = CHOIR_FRACTION_RESOLUTION
) -> float:
    """Probability all ``n_devices`` land on distinct bin fractions.

    ``resolution! / ((resolution - n)! * resolution^n)``; zero once the
    device count exceeds the number of distinguishable fractions.
    """
    if n_devices < 0:
        raise ConfigurationError("device count must be non-negative")
    if n_devices > resolution:
        return 0.0
    probability = 1.0
    for i in range(n_devices):
        probability *= (resolution - i) / resolution
    return probability


def choir_same_shift_collision_probability(
    n_devices: int, spreading_factor: int, exact: bool = True
) -> float:
    """Per-symbol probability that two devices pick the same cyclic shift.

    Exact form ``1 - prod_{i=1..N} (1 - (i-1)/2^SF)``; the paper also
    quotes the approximation ``N(N-1)/2^(SF+1)``.
    """
    if n_devices < 0:
        raise ConfigurationError("device count must be non-negative")
    n_shifts = 2**spreading_factor
    if n_devices > n_shifts:
        return 1.0
    if exact:
        p_all_distinct = 1.0
        for i in range(1, n_devices + 1):
            p_all_distinct *= 1.0 - (i - 1) / n_shifts
        return 1.0 - p_all_distinct
    return n_devices * (n_devices - 1) / (2 ** (spreading_factor + 1))


@dataclass(frozen=True)
class ChoirPeak:
    """One FFT peak measured with sub-bin resolution."""

    integer_bin: int
    fraction: float

    @property
    def value(self) -> float:
        return self.integer_bin + self.fraction


class ChoirDecoder:
    """A working fractional-bin concurrent decoder in Choir's style.

    Each transmitter is enrolled with its characteristic fractional
    offset (learned from its preamble in the real system). Per symbol the
    decoder finds the strongest peaks, quantises each peak's fraction to
    the 1/10-bin grid and attributes it to the enrolled transmitter with
    the matching fraction. Attribution fails when fractions collide or
    when two transmitters pick the same symbol value.
    """

    def __init__(
        self,
        params: ChirpParams,
        zero_pad_factor: int = 10,
        resolution: int = CHOIR_FRACTION_RESOLUTION,
    ) -> None:
        self._params = params
        self._demod = Demodulator(params, zero_pad_factor=zero_pad_factor)
        self._resolution = int(resolution)
        self._enrolled: Dict[int, int] = {}

    def enroll(self, device_id: int, fractional_offset: float) -> None:
        """Register a transmitter's characteristic bin fraction."""
        quantised = self.quantise_fraction(fractional_offset)
        self._enrolled[device_id] = quantised

    def quantise_fraction(self, fraction: float) -> int:
        """Quantise a fractional offset to the 1/10-bin grid."""
        return int(round((fraction % 1.0) * self._resolution)) % self._resolution

    def fractions_distinct(self) -> bool:
        """Whether the enrolled population is disambiguable at all."""
        values = list(self._enrolled.values())
        return len(set(values)) == len(values)

    def decode_symbol(
        self, symbol: np.ndarray, n_transmitters: Optional[int] = None
    ) -> Dict[int, Optional[int]]:
        """Attribute the strongest peaks to enrolled transmitters.

        Returns ``device_id -> decoded shift`` (``None`` when the device's
        peak could not be attributed unambiguously this symbol).
        """
        if not self._enrolled:
            raise DecodingError("no transmitters enrolled")
        if n_transmitters is None:
            n_transmitters = len(self._enrolled)
        result = self._demod.dechirp(symbol)
        peaks = self._find_peaks(result, n_transmitters)
        # Group peaks by quantised fraction.
        by_fraction: Dict[int, List[ChoirPeak]] = {}
        for peak in peaks:
            by_fraction.setdefault(
                self.quantise_fraction(peak.fraction), []
            ).append(peak)
        decoded: Dict[int, Optional[int]] = {}
        for device_id, fraction in self._enrolled.items():
            candidates = by_fraction.get(fraction, [])
            if len(candidates) == 1:
                decoded[device_id] = candidates[0].integer_bin
            else:
                # zero or multiple peaks at this fraction: ambiguous.
                decoded[device_id] = None
        return decoded

    def _find_peaks(self, result, count: int) -> List[ChoirPeak]:
        """Strongest ``count`` well-separated interpolated peaks."""
        magnitude = result.magnitude.copy()
        zp = result.zero_pad_factor
        peaks: List[ChoirPeak] = []
        guard = zp  # suppress one natural bin around each found peak
        for _ in range(count):
            index = int(np.argmax(magnitude))
            if magnitude[index] <= 0:
                break
            value = index / zp
            integer_bin = int(math.floor(value)) % self._params.n_shifts
            peaks.append(
                ChoirPeak(integer_bin=integer_bin, fraction=value % 1.0)
            )
            lo = max(0, index - guard)
            hi = min(magnitude.size, index + guard + 1)
            magnitude[lo:hi] = 0.0
        return peaks


def simulate_choir_scaling(
    params: ChirpParams,
    device_counts: Sequence[int],
    offset_std_bins: float,
    n_trials: int = 200,
    rng: RngLike = None,
) -> List[Dict[str, float]]:
    """Monte-Carlo of Choir's attribution success vs population size.

    Per trial, each device draws a stable fractional offset from a
    zero-mean Gaussian with ``offset_std_bins`` (wide for radios, narrow
    for backscatter) and the trial succeeds iff all quantised fractions
    are distinct — the necessary condition for Choir to work at all.
    """
    generator = make_rng(rng)
    resolution = CHOIR_FRACTION_RESOLUTION
    rows: List[Dict[str, float]] = []
    for n in device_counts:
        successes = 0
        for _ in range(n_trials):
            offsets = generator.normal(scale=offset_std_bins, size=n)
            fractions = set(
                int(round((o % 1.0) * resolution)) % resolution
                for o in offsets
            )
            if len(fractions) == n:
                successes += 1
        rows.append(
            {
                "n_devices": float(n),
                "attribution_success": successes / n_trials,
                "analytic_distinct": choir_distinct_fraction_probability(n),
            }
        )
    return rows
