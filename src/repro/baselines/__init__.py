"""Comparison baselines the paper evaluates against.

* ``lora_backscatter`` — the sequential query-response TDMA design of
  LoRa Backscatter [25], with and without ideal rate adaptation;
* ``rate_adaptation`` — the SX1276 SNR -> (SF, BW) rate table used for
  the ideal-rate-adaptation variant;
* ``choir`` — Choir's [12] fractional-FFT-bin disambiguation and the
  analytic collision model of Section 2.2;
* ``sf_pairs`` — the concurrent (SF, BW) pair analysis (19 slope-distinct
  pairs, 8 usable under sensitivity/bitrate constraints).
"""

from repro.baselines.choir import (
    choir_distinct_fraction_probability,
    choir_same_shift_collision_probability,
    ChoirDecoder,
)
from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.baselines.rate_adaptation import best_rate_bps, RateChoice
from repro.baselines.sf_pairs import (
    slope_distinct_pairs,
    usable_concurrent_pairs,
)

__all__ = [
    "choir_distinct_fraction_probability",
    "choir_same_shift_collision_probability",
    "ChoirDecoder",
    "LoRaBackscatterNetwork",
    "best_rate_bps",
    "RateChoice",
    "slope_distinct_pairs",
    "usable_concurrent_pairs",
]
