"""Campaign orchestration: declarative, sharded, resumable sweeps.

The campaign layer turns the repo's Monte-Carlo figure sweeps into
declarative, cacheable artifacts:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` grids expanding
  into content-hashable :class:`CampaignPoint` values (every random
  ingredient an explicit seed);
* :mod:`repro.campaign.store` — :class:`CampaignStore`, a per-point
  JSON/npz chunk store keyed by content hash with a rebuildable
  manifest, chunk-integrity verification, and a quarantine for corrupt
  chunks (reruns skip completed points bit-for-bit);
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, sharding
  pending points over the network-sweep process-pool plumbing with
  per-point checkpointing, bounded retries with seeded-jitter backoff,
  per-point timeouts, and broken-pool → serial degradation;
* :mod:`repro.campaign.leases` — the point claim/heartbeat/expiry
  protocol letting N concurrent runners partition one store;
* :mod:`repro.campaign.storage` — the pluggable
  :class:`StorageDriver` layer every byte of campaign state flows
  through (posix with fsync-on-commit, in-memory, fault-injecting),
  with bounded per-operation retries and seeded-jitter backoff;
* :mod:`repro.campaign.objectstore` — the remote half:
  :class:`HttpDriver` speaking a minimal S3-style REST protocol to
  :class:`ObjectStoreService` (``python -m repro.campaign serve``),
  with server-side network-chaos injection and a client-side
  :class:`CircuitBreakerDriver`;
* :mod:`repro.campaign.faults` — deterministic fault injection
  (:class:`FaultPlan` / ``REPRO_FAULT_PLAN``, :class:`StorageFaultPlan`
  / ``REPRO_STORAGE_FAULT_PLAN``) exercising every recovery path
  above in CI;
* :mod:`repro.campaign.service` / :mod:`repro.campaign.client` — the
  HSDS-style service node: :class:`CampaignService`
  (``python -m repro.campaign serve-api``) accepts JSON campaign
  specs over HTTP, answers cached points straight from the store,
  dedupes identical in-flight requests, and streams per-point results
  with bounded backpressure; :class:`CampaignServiceClient` drives it
  with retries and a :class:`CircuitBreaker`;
* :mod:`repro.campaign.presets` — builtin specs matching the Fig.
  17/18 drivers seed for seed;
* ``python -m repro.campaign`` — ``run`` / ``status`` / ``export`` /
  ``serve`` / ``serve-api`` / ``submit``.

See the Campaign layer sections of ``docs/ARCHITECTURE.md``.
"""

from repro.campaign.faults import (
    FaultPlan,
    FaultRule,
    StorageFaultPlan,
    StorageFaultRule,
)
from repro.campaign.client import (
    CampaignServiceClient,
    CampaignServiceRun,
)
from repro.campaign.leases import LeaseManager
from repro.campaign.objectstore import (
    CircuitBreaker,
    CircuitBreakerDriver,
    HttpDriver,
    ObjectStoreService,
)
from repro.campaign.service import CampaignService, campaign_id_for
from repro.campaign.storage import (
    FaultyDriver,
    MemoryDriver,
    PosixDriver,
    RetryingDriver,
    StorageDriver,
    StorageRetryPolicy,
    build_driver,
    parse_driver_spec,
)
from repro.campaign.presets import (
    PRESETS,
    build_preset,
    fig17_campaign,
    fig18_campaign,
    noise_grid_campaign,
)
from repro.campaign.runner import (
    CampaignPointFailure,
    CampaignPointResult,
    CampaignRun,
    CampaignRunner,
    RetryPolicy,
    execute_point,
    run_campaign_sweep,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec, derive_seeds
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignPoint",
    "CampaignPointFailure",
    "CampaignPointResult",
    "CampaignRun",
    "CampaignRunner",
    "CampaignService",
    "CampaignServiceClient",
    "CampaignServiceRun",
    "CampaignSpec",
    "CampaignStore",
    "CircuitBreaker",
    "CircuitBreakerDriver",
    "FaultPlan",
    "FaultRule",
    "FaultyDriver",
    "HttpDriver",
    "LeaseManager",
    "MemoryDriver",
    "ObjectStoreService",
    "PRESETS",
    "PosixDriver",
    "RetryPolicy",
    "RetryingDriver",
    "StorageDriver",
    "StorageFaultPlan",
    "StorageFaultRule",
    "StorageRetryPolicy",
    "build_driver",
    "build_preset",
    "campaign_id_for",
    "parse_driver_spec",
    "derive_seeds",
    "execute_point",
    "fig17_campaign",
    "fig18_campaign",
    "noise_grid_campaign",
    "run_campaign_sweep",
]
