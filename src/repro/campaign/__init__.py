"""Campaign orchestration: declarative, sharded, resumable sweeps.

The campaign layer turns the repo's Monte-Carlo figure sweeps into
declarative, cacheable artifacts:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` grids expanding
  into content-hashable :class:`CampaignPoint` values (every random
  ingredient an explicit seed);
* :mod:`repro.campaign.store` — :class:`CampaignStore`, a per-point
  JSON/npz chunk store keyed by content hash with a rebuildable
  manifest (reruns skip completed points bit-for-bit);
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, sharding
  pending points over the network-sweep process-pool plumbing with
  per-point checkpointing (kill-safe, resumable);
* :mod:`repro.campaign.presets` — builtin specs matching the Fig.
  17/18 drivers seed for seed;
* ``python -m repro.campaign`` — ``run`` / ``status`` / ``export``.

See the Campaign layer section of ``docs/ARCHITECTURE.md``.
"""

from repro.campaign.presets import (
    PRESETS,
    build_preset,
    fig17_campaign,
    fig18_campaign,
    noise_grid_campaign,
)
from repro.campaign.runner import (
    CampaignRun,
    CampaignRunner,
    execute_point,
    run_campaign_sweep,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec, derive_seeds
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignPoint",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "PRESETS",
    "build_preset",
    "derive_seeds",
    "execute_point",
    "fig17_campaign",
    "fig18_campaign",
    "noise_grid_campaign",
    "run_campaign_sweep",
]
