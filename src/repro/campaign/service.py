"""Campaign service node: cached sweep/decode requests over HTTP.

The service-node half of the HSDS-style SN/DN split. PR 8's
:class:`~repro.campaign.objectstore.ObjectStoreService` is the data
node — raw bytes in a bucket; this module adds the front end that lets
many simultaneous clients request *computation*: a JSON
:class:`~repro.campaign.spec.CampaignSpec` in, per-point metrics
streamed out, with every already-computed point answered straight from
the backing :class:`~repro.campaign.store.CampaignStore` (sha256
content hashes are the read-through cache key — zero recompute), and
identical in-flight requests deduplicated so N concurrent clients
asking for the same spec trigger exactly one
:class:`~repro.campaign.runner.CampaignRunner` execution.

Wire protocol (NDJSON over chunked HTTP/1.1)
============================================

========================  =============================================
``POST /campaigns``       body ``{"spec": {...}}`` (or a bare spec
                          dict); streams newline-delimited JSON
                          events: one ``accepted`` line, one ``point``
                          line per resolved point *in spec order*, a
                          ``failed`` line per permanently-failed
                          point, then one ``done`` summary line.
                          ``X-Repro-Campaign-Id`` names the campaign;
                          ``X-Repro-Campaign-Created`` is ``1`` for
                          the request that started the execution and
                          ``0`` for deduplicated joiners.
``GET /campaigns``        ``{"campaigns": [status, ...]}``
``GET /campaigns/<id>/status``  one campaign's live status snapshot
``GET /healthz``          service health + dedup/disconnect counters
========================  =============================================

Determinism contract: ``accepted`` and ``point`` lines carry only
deterministic fields (event, index, content hash, metrics, provenance
— never elapsed times, attempt counts, or cache-hit flags), are
serialised canonically (sorted keys, compact separators), and are
published in strict spec-index order through a reorder buffer. Every
subscriber of one execution therefore reads a byte-identical stream,
and a cold run's point lines equal a warm (fully cached) run's point
lines. Volatile counters — ``points_computed``, ``points_cached`` —
live in the ``done`` line and the status endpoint.

Dedup: the campaign id is the sha256 of the canonical spec JSON
(:func:`campaign_id_for`). A ``POST`` whose id matches a live
execution subscribes to it instead of starting a second runner; a
match on a *finished* execution starts a fresh runner, which serves
every point from the store's cache (``points_computed == 0``).

Backpressure: one shared ordered event log per execution with
per-subscriber cursors. The publisher blocks while the slowest live
subscriber lags more than ``max_backlog`` events; a subscriber that
stays that far behind for ``stall_timeout_s`` is dropped (it receives
an ``error`` event) so one stalled client can never wedge the shared
computation. A client disconnecting mid-stream merely unsubscribes —
the runner thread is independent of every handler thread.

Chaos: ``service_fault_plan`` rules with request-level ops
(:data:`~repro.campaign.faults.SERVICE_OPS` — ``submit``, ``status``,
``list_campaigns``, ``healthz``) and network kinds
(:data:`~repro.campaign.faults.REQUEST_KINDS`) are injected
server-side exactly like the object store's chaos harness: ``refuse``
drops the connection cold, ``http_error`` answers 503/``Retry-After``,
``delay`` sleeps, and ``disconnect`` streams the results but cuts the
connection before the ``done`` line — the client sees a truncated
stream for a computation that *landed*, which a re-submit reconciles
through the cache.

Doctest — the dedup key is invariant under JSON key order:

>>> from repro.campaign.presets import fig17_campaign
>>> from repro.campaign.service import campaign_id_for
>>> spec = fig17_campaign(rng=0, device_counts=(1, 2), n_rounds=1)
>>> forward = spec.to_dict()
>>> shuffled = dict(reversed(list(forward.items())))
>>> campaign_id_for(forward) == campaign_id_for(shuffled)
True
>>> len(campaign_id_for(forward))
64
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler
from typing import Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from repro.campaign.faults import (
    REQUEST_KINDS,
    StorageFaultPlan,
    StorageFaultSelector,
)
from repro.campaign.objectstore import (
    DISCONNECT_ERRORS,
    ClientDisconnectLog,
    DisconnectTolerantHTTPServer,
)
from repro.campaign.runner import CampaignPointResult, CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.errors import (
    CampaignServiceError,
    ConfigurationError,
    ReproError,
)

#: Response headers naming the campaign and whether this request
#: started the execution (vs joining a deduplicated one).
CAMPAIGN_ID_HEADER = "X-Repro-Campaign-Id"
CREATED_HEADER = "X-Repro-Campaign-Created"


def _canonical(payload) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _event_line(payload: Mapping[str, object]) -> bytes:
    """One canonical NDJSON event line (the byte-identity unit)."""
    return _canonical(payload) + b"\n"


def campaign_id_for(spec_dict: Mapping[str, object]) -> str:
    """The dedup/cache key of a campaign: sha256 of its canonical JSON.

    Key order never matters (canonical serialisation sorts); any value
    change yields a different id, exactly like point content hashes.
    """
    return hashlib.sha256(_canonical(spec_dict)).hexdigest()


class CampaignExecution:
    """One running (or finished) campaign with a shared event stream.

    The runner thread publishes deterministic ``point`` events in
    strict spec-index order into one append-only log; each subscriber
    reads through its own cursor. See the module docstring for the
    backpressure and determinism contracts.
    """

    def __init__(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        runner_factory: Callable[
            [Callable[[int, CampaignPointResult], None]], CampaignRunner
        ],
        max_backlog: int = 256,
        stall_timeout_s: float = 30.0,
    ) -> None:
        if max_backlog < 1:
            raise ConfigurationError("max_backlog must be >= 1")
        if stall_timeout_s < 0:
            raise ConfigurationError("stall_timeout_s must be >= 0")
        self.campaign_id = campaign_id
        self.spec = spec
        self._runner_factory = runner_factory
        self._max_backlog = int(max_backlog)
        self._stall_timeout_s = float(stall_timeout_s)
        self._hashes = [p.content_hash() for p in spec.points()]
        self._n_points = len(self._hashes)
        self.accepted_line = _event_line(
            {
                "event": "accepted",
                "campaign_id": campaign_id,
                "name": spec.name,
                "n_points": self._n_points,
            }
        )
        self._cond = threading.Condition()
        self._events: List[bytes] = []
        self._cursors: Dict[int, int] = {}
        self._dropped: set = set()
        self._next_subscriber = 0
        self._buffer: Dict[int, bytes] = {}
        self._next_index = 0
        self._points_computed = 0
        self._points_cached = 0
        self._points_failed = 0
        self._state = "running"
        self._done = False
        self._summary: Optional[Dict[str, object]] = None
        self._summary_line: Optional[bytes] = None
        self._started = time.monotonic()
        self._elapsed_s: Optional[float] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # runner side
    # ------------------------------------------------------------------ #

    def start(self) -> "CampaignExecution":
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-campaign-{self.campaign_id[:12]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        summary: Dict[str, object]
        try:
            runner = self._runner_factory(self._on_result)
            run = runner.run(self.spec)
        except Exception as error:  # noqa: BLE001 - reported, not lost
            with self._cond:
                self._state = "failed"
                summary = {
                    "event": "done",
                    "status": "failed",
                    "campaign_id": self.campaign_id,
                    "error": f"{type(error).__name__}: {error}",
                }
        else:
            with self._cond:
                for index, failure in self._failed_indices(run).items():
                    last = (
                        failure.attempts[-1] if failure.attempts else {}
                    )
                    self._buffer.setdefault(
                        index,
                        _event_line(
                            {
                                "event": "failed",
                                "index": index,
                                "content_hash": failure.content_hash,
                                "error": last.get("error", "?"),
                                "message": last.get("message", "?"),
                            }
                        ),
                    )
                self._drain_locked(force=True)
                self._points_failed = run.n_failed
                self._state = (
                    "partial" if run.failures else "complete"
                )
                summary = {
                    "event": "done",
                    "status": self._state,
                    "campaign_id": self.campaign_id,
                    "n_points": self._n_points,
                    "points_computed": run.n_computed,
                    "points_cached": run.n_cached,
                    "points_failed": run.n_failed,
                    "storage_degraded": run.storage_degraded,
                }
        with self._cond:
            self._summary = summary
            self._summary_line = _event_line(summary)
            self._elapsed_s = time.monotonic() - self._started
            self._done = True
            self._cond.notify_all()

    def _failed_indices(self, run) -> Dict[int, object]:
        by_hash = {f.content_hash: f for f in run.failures}
        return {
            index: by_hash[content_hash]
            for index, content_hash in enumerate(self._hashes)
            if content_hash in by_hash
        }

    def _on_result(self, index: int, result: CampaignPointResult) -> None:
        # Only deterministic fields: a cold computation and a warm
        # cache hit must produce the same bytes (module docstring).
        line = _event_line(
            {
                "event": "point",
                "index": index,
                "content_hash": self._hashes[index],
                "metrics": asdict(result.metrics),
                "provenance": dict(result.provenance),
            }
        )
        with self._cond:
            if result.cached:
                self._points_cached += 1
            else:
                self._points_computed += 1
            self._buffer[index] = line
            self._drain_locked()

    def _drain_locked(self, force: bool = False) -> None:
        # Publish buffered lines in strict index order. ``force``
        # (completion) flushes past gaps left by failed points whose
        # ``failed`` lines were just buffered — order is still by
        # index.
        if force:
            for index in sorted(self._buffer):
                if index >= self._next_index:
                    self._publish_locked(self._buffer[index])
            self._buffer.clear()
            self._next_index = self._n_points
            return
        while self._next_index in self._buffer:
            self._publish_locked(self._buffer.pop(self._next_index))
            self._next_index += 1

    def _publish_locked(self, line: bytes) -> None:
        # Backpressure: wait for the slowest live subscriber, dropping
        # any that stay >= max_backlog behind for stall_timeout_s.
        deadline = time.monotonic() + self._stall_timeout_s
        while self._cursors and (
            len(self._events) - min(self._cursors.values())
            >= self._max_backlog
        ):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for subscriber in [
                    s
                    for s, cursor in self._cursors.items()
                    if len(self._events) - cursor >= self._max_backlog
                ]:
                    del self._cursors[subscriber]
                    self._dropped.add(subscriber)
                self._cond.notify_all()
                break
            self._cond.wait(remaining)
        self._events.append(line)
        self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # subscriber side
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        with self._cond:
            return self._done

    def subscribe(self) -> int:
        with self._cond:
            token = self._next_subscriber
            self._next_subscriber += 1
            self._cursors[token] = 0
            return token

    def unsubscribe(self, token: int) -> None:
        with self._cond:
            self._cursors.pop(token, None)
            self._dropped.discard(token)
            self._cond.notify_all()  # a waiting publisher may proceed

    def next_event(self, token: int) -> Optional[bytes]:
        """The subscriber's next event line; ``None`` once the stream
        is complete and fully drained. Raises
        :class:`~repro.errors.CampaignServiceError` for a subscriber
        dropped by the backpressure policy."""
        with self._cond:
            while True:
                if token in self._dropped:
                    self._dropped.discard(token)
                    raise CampaignServiceError(
                        f"subscriber fell more than "
                        f"{self._max_backlog} events behind campaign "
                        f"{self.campaign_id[:12]} and was dropped"
                    )
                cursor = self._cursors.get(token)
                if cursor is None:
                    raise CampaignServiceError("not subscribed")
                if cursor < len(self._events):
                    line = self._events[cursor]
                    self._cursors[token] = cursor + 1
                    self._cond.notify_all()  # publisher may unblock
                    return line
                if self._done:
                    return None
                self._cond.wait(0.1)

    def summary_line(self) -> bytes:
        """The ``done`` line, built exactly once at completion — every
        subscriber of this execution streams identical bytes."""
        with self._cond:
            if self._summary_line is None:
                raise CampaignServiceError(
                    f"campaign {self.campaign_id[:12]} still running"
                )
            return self._summary_line

    def status_snapshot(self) -> Dict[str, object]:
        with self._cond:
            points_done = self._points_computed + self._points_cached
            snapshot: Dict[str, object] = {
                "campaign_id": self.campaign_id,
                "name": self.spec.name,
                "state": self._state,
                "n_points": self._n_points,
                "points_done": points_done,
                "points_computed": self._points_computed,
                "points_cached": self._points_cached,
                "points_failed": self._points_failed,
                "n_subscribers": len(self._cursors),
                "n_dropped_subscribers": len(self._dropped),
            }
            if self._elapsed_s is not None:
                snapshot["elapsed_s"] = round(self._elapsed_s, 6)
            return snapshot


class _CampaignHTTPServer(DisconnectTolerantHTTPServer):
    # Handler threads may sit in a blocking stream for the lifetime of
    # a campaign; never make server_close wait on them (they are
    # daemons and executions are bounded).
    block_on_close = False


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-campaign-service/1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    @property
    def service(self) -> "CampaignService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        self.service.log_lines.append(format % args)

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, object],
        headers: Optional[Dict[str, str]] = None,
        truncate: bool = False,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if truncate:
            # Mid-body disconnect: declared length exceeds what lands.
            self.wfile.write(body[: len(body) // 2])
            self.wfile.flush()
            self.close_connection = True
            try:
                self.connection.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass
            return
        self.wfile.write(body)

    # ------------------------------------------------------------------ #
    # request-level fault injection (REQUEST_KINDS only)
    # ------------------------------------------------------------------ #

    def _apply_pre_fault(self, op: str, key: str) -> str:
        """``"handled"`` | ``"truncate"`` | ``"proceed"`` — like the
        object store's harness, minus storage-only kinds."""
        selector = self.service.selector
        rule = selector.consult(op, key) if selector is not None else None
        if rule is None:
            return "proceed"
        if rule.kind == "refuse":
            self.close_connection = True
            try:
                self.connection.shutdown(2)
            except OSError:
                pass
            return "handled"
        if rule.kind == "http_error":
            headers = {}
            if rule.retry_after_s is not None:
                headers["Retry-After"] = f"{rule.retry_after_s:g}"
            self._send_json(
                rule.status,
                {"error": f"injected HTTP {rule.status}"},
                headers,
            )
            return "handled"
        if rule.kind == "delay":
            time.sleep(rule.hang_s)
            return "proceed"
        if rule.kind == "disconnect":
            return "truncate"
        return "proceed"

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self.close_connection = True
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/campaigns":
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        action = self._apply_pre_fault("submit", "")
        if action == "handled":
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        if len(body) != length:
            self._send_json(400, {"error": "truncated request body"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except ValueError as error:
            self._send_json(
                400, {"error": f"malformed JSON body: {error}"}
            )
            return
        spec_dict = (
            payload.get("spec", payload)
            if isinstance(payload, dict)
            else None
        )
        if not isinstance(spec_dict, dict):
            self._send_json(
                400,
                {"error": "campaign request must be a JSON object"},
            )
            return
        try:
            execution, created = self.service.submit(spec_dict)
        except ReproError as error:
            self._send_json(
                400, {"error": f"{type(error).__name__}: {error}"}
            )
            return
        self._stream(execution, created, truncate=action == "truncate")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self.close_connection = True
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            action = self._apply_pre_fault("healthz", "")
            if action == "handled":
                return
            self._send_json(
                200,
                self.service.healthz(),
                truncate=action == "truncate",
            )
            return
        if path == "/campaigns":
            action = self._apply_pre_fault("list_campaigns", "")
            if action == "handled":
                return
            self._send_json(
                200,
                {"campaigns": self.service.list_campaigns()},
                truncate=action == "truncate",
            )
            return
        segments = path.lstrip("/").split("/")
        if (
            len(segments) in (2, 3)
            and segments[0] == "campaigns"
            and (len(segments) == 2 or segments[2] == "status")
        ):
            campaign_id = segments[1]
            action = self._apply_pre_fault("status", campaign_id)
            if action == "handled":
                return
            snapshot = self.service.campaign_status(campaign_id)
            if snapshot is None:
                self._send_json(
                    404,
                    {"error": f"unknown campaign {campaign_id!r}"},
                )
                return
            self._send_json(200, snapshot, truncate=action == "truncate")
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(
            f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"
        )
        self.wfile.flush()

    def _stream(
        self,
        execution: CampaignExecution,
        created: bool,
        truncate: bool = False,
    ) -> None:
        token = execution.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header(CAMPAIGN_ID_HEADER, execution.campaign_id)
            self.send_header(CREATED_HEADER, "1" if created else "0")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            self._write_chunk(execution.accepted_line)
            while True:
                line = execution.next_event(token)
                if line is None:
                    break
                self._write_chunk(line)
            if truncate:
                # Injected mid-stream disconnect: the results streamed,
                # the ``done`` line never arrives, the terminal chunk
                # is withheld — the client's read sees a torn stream
                # for a computation that landed.
                try:
                    self.connection.shutdown(2)
                except OSError:
                    pass
                return
            self._write_chunk(execution.summary_line())
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except DISCONNECT_ERRORS + (OSError,) as error:
            # This subscriber hung up; the shared execution continues.
            self.service.note_client_disconnect(
                self.client_address, error
            )
            self.close_connection = True
        except CampaignServiceError as error:
            # Dropped by the backpressure policy: tell the client (it
            # re-submits and replays from the cache-backed log).
            try:
                self._write_chunk(
                    _event_line({"event": "error", "error": str(error)})
                )
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
            except OSError:
                pass
        finally:
            execution.unsubscribe(token)


class CampaignService(ClientDisconnectLog):
    """HTTP campaign service node over a :class:`CampaignStore`.

    In-process for tests (``with CampaignService() as service:``) and
    behind ``python -m repro.campaign serve-api`` for deployments.
    ``store`` is a :class:`CampaignStore`, a posix root path, or
    ``None`` for an ephemeral in-memory store — any
    :class:`~repro.campaign.storage.StorageDriver`-backed store works,
    including ``http://`` drivers pointing at a remote object-store
    data node. Runner knobs (``workers``, ``retry``,
    ``point_timeout_s``, ``use_leases``, ``allow_partial``,
    ``fault_plan``) configure the one :class:`CampaignRunner` each
    distinct spec gets; ``service_fault_plan`` injects request-level
    chaos (module docstring). ``allow_partial`` defaults to True: a
    permanently-failed point becomes a ``failed`` event and a
    ``partial`` summary instead of killing every subscriber's stream.
    """

    def __init__(
        self,
        store=None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Optional[int] = None,
        retry=None,
        point_timeout_s: Optional[float] = None,
        use_leases: bool = True,
        allow_partial: bool = True,
        fault_plan=None,
        service_fault_plan: Optional[StorageFaultPlan] = None,
        max_backlog: int = 256,
        stall_timeout_s: float = 30.0,
    ) -> None:
        if store is None:
            from repro.campaign.storage import MemoryDriver

            store = CampaignStore(driver=MemoryDriver())
        elif not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        self._store = store
        self._host = host
        self._port = int(port)
        self._workers = workers
        self._retry = retry
        self._point_timeout_s = point_timeout_s
        self._use_leases = bool(use_leases)
        self._allow_partial = bool(allow_partial)
        self._fault_plan = fault_plan
        self._max_backlog = int(max_backlog)
        self._stall_timeout_s = float(stall_timeout_s)
        self.selector = (
            StorageFaultSelector(service_fault_plan, kinds=REQUEST_KINDS)
            if service_fault_plan is not None
            and service_fault_plan.rules
            else None
        )
        self._lock = threading.Lock()
        self._executions: Dict[str, CampaignExecution] = {}
        self._n_submitted = 0
        self._n_deduped = 0
        self.log_lines: List[str] = []
        self._init_disconnect_log()
        self._server: Optional[_CampaignHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def store(self) -> CampaignStore:
        return self._store

    # ------------------------------------------------------------------ #
    # campaign registry (dedup)
    # ------------------------------------------------------------------ #

    def _runner_factory(
        self, on_result: Callable[[int, CampaignPointResult], None]
    ) -> CampaignRunner:
        kwargs = {}
        if self._retry is not None:
            kwargs["retry"] = self._retry
        return CampaignRunner(
            store=self._store,
            workers=self._workers,
            point_timeout_s=self._point_timeout_s,
            use_leases=self._use_leases,
            fault_plan=self._fault_plan,
            allow_partial=self._allow_partial,
            on_result=on_result,
            **kwargs,
        )

    def submit(
        self, spec_dict: Mapping[str, object]
    ) -> Tuple[CampaignExecution, bool]:
        """Validate the spec and return ``(execution, created)``.

        ``created`` is False when the request joined a live execution
        of the identical spec (the dedup path). A finished execution
        is re-run — which answers entirely from the content-hash cache.
        """
        try:
            spec = CampaignSpec.from_dict(dict(spec_dict))
        except ReproError:
            raise
        except (TypeError, ValueError, KeyError) as error:
            # Unknown/missing spec fields surface as stdlib errors from
            # the dataclass constructor; a bad request is an answer.
            raise ConfigurationError(
                f"invalid campaign spec: {type(error).__name__}: {error}"
            ) from error
        campaign_id = campaign_id_for(spec.to_dict())
        with self._lock:
            self._n_submitted += 1
            existing = self._executions.get(campaign_id)
            if existing is not None and not existing.done:
                self._n_deduped += 1
                return existing, False
            execution = CampaignExecution(
                campaign_id,
                spec,
                self._runner_factory,
                max_backlog=self._max_backlog,
                stall_timeout_s=self._stall_timeout_s,
            )
            self._executions[campaign_id] = execution
        execution.start()
        return execution, True

    def campaign_status(
        self, campaign_id: str
    ) -> Optional[Dict[str, object]]:
        with self._lock:
            execution = self._executions.get(campaign_id)
        return (
            execution.status_snapshot() if execution is not None else None
        )

    def list_campaigns(self) -> List[Dict[str, object]]:
        with self._lock:
            executions = sorted(
                self._executions.values(), key=lambda e: e.campaign_id
            )
        return [e.status_snapshot() for e in executions]

    def healthz(self) -> Dict[str, object]:
        with self._lock:
            executions = list(self._executions.values())
            n_submitted = self._n_submitted
            n_deduped = self._n_deduped
        in_flight = sum(1 for e in executions if not e.done)
        return {
            "status": "ok",
            "campaigns_total": len(executions),
            "campaigns_in_flight": in_flight,
            "n_submitted": n_submitted,
            "n_deduped": n_deduped,
            "n_client_disconnects": self.n_client_disconnects,
            "store": self._store.driver.name,
        }

    # ------------------------------------------------------------------ #
    # lifecycle (ObjectStoreService idiom)
    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        """Client-ready base URL: ``http://host:port``."""
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CampaignService":
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _CampaignHTTPServer(
            (self._host, self._port), _ServiceHandler
        )
        self._server.service = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-campaign-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def serve_forever(self) -> None:
        """Blocking loop for ``python -m repro.campaign serve-api``."""
        if self._server is None:
            self._server = _CampaignHTTPServer(
                (self._host, self._port), _ServiceHandler
            )
            self._server.service = self
        self._server.serve_forever(poll_interval=0.2)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "CAMPAIGN_ID_HEADER",
    "CREATED_HEADER",
    "CampaignExecution",
    "CampaignService",
    "campaign_id_for",
]
