"""Remote object-store driver + hermetic HTTP object-store service.

The network half of the storage layer: :class:`HttpDriver` speaks a
minimal S3-style REST protocol to :class:`ObjectStoreService` (a
``ThreadingHTTPServer`` over any local :class:`~repro.campaign.storage.
StorageDriver`), so campaign state — chunks, leases, failures,
quarantine, manifest — spans hosts behind the same
:class:`~repro.campaign.storage.StorageDriver` contract the posix and
memory backends honour. The service runs in-process for tests and as
``python -m repro.campaign serve`` for real deployments; HSDS's
``storUtil`` pluggable posix/S3/Azure split is the model.

Wire protocol (single bucket, keys are driver keys)
===================================================

========================  =============================================
``GET /b/<key>``          body + ``ETag``/``X-Repro-Sha256`` (sha256
                          hex of the body); 404 when absent
``PUT /b/<key>``          commit body; ``X-Repro-Op`` selects
                          ``put_atomic`` vs ``replace``; with
                          ``If-None-Match: *`` it is ``put_exclusive``
                          (201 created, 412 when the key exists);
                          request carries ``X-Repro-Sha256``, the
                          response echoes the committed ``ETag``
``DELETE /b/<key>``       idempotent; ``X-Repro-Deleted: 1|0``
``HEAD /b/<key>``         ``exists``/``stat``: ``X-Repro-Size`` +
                          ``X-Repro-Mtime``; 404 when absent
``GET /b?list=1&prefix=`` sorted key list as JSON
``POST /b/<key>`` +       atomic ``rename`` (the quarantine
``X-Repro-Rename-To``     primitive); 404 when the source is absent
========================  =============================================

Integrity is end-to-end: both directions carry ``X-Repro-Sha256`` and
both sides verify it before trusting a byte — a mismatch (bit rot,
truncation, a proxy mangling the body) surfaces as
:class:`~repro.errors.TransientStorageError`, so the retrying wrapper
re-fetches before the store's quarantine machinery ever escalates.
``ETag`` *is* the content sha256, which makes ``replace`` a
write-plus-read-back in one round trip: the response ETag must equal
the sha of what was sent, or the write is retried (idempotent). The
lease protocol (:mod:`repro.campaign.leases`) therefore works
unchanged across hosts: ``put_exclusive`` maps to the conditional PUT,
steal stays replace-then-read-back.

Consistency assumptions: the service commits through one local driver,
so reads-after-write and read-your-writes hold (what the lease
read-back requires). The ``stale_read`` fault kind exists precisely to
violate that on purpose in tests — it serves the *previous* committed
state once, emulating an eventually-consistent backend.

Chaos harness: network-class fault kinds
(:data:`~repro.campaign.faults.NETWORK_KINDS` — ``refuse``,
``http_error``, ``disconnect``, ``delay``, ``stale_read``) are
injected *server-side* from the same seeded
:class:`~repro.campaign.faults.StorageFaultPlan` that drives the
client-side ``FaultyDriver``; each consumer fires only its own class
of rules. ``disconnect`` performs the operation and then truncates the
response mid-body — the client sees a failure for a write that
*landed*, the eventually-landing-write case the lease read-back
reconciles.

Circuit breaker (:class:`CircuitBreakerDriver`, stacked under the
store's ``RetryingDriver``) state machine::

    closed --(failure_threshold consecutive faults)--> open
    open   --(reset_after_s elapsed)----------------> half-open
    half-open --probe succeeds--> closed
    half-open --probe fails-----> open (timer restarts)

While open every call fails fast with :class:`~repro.errors.
CircuitOpenError` (a :class:`~repro.errors.PersistentStorageError`),
which the campaign runner's ``allow_partial`` read-only degradation
path absorbs — a dead endpoint degrades the run instead of hanging it.

Doctest — the contract over a live in-process server:

>>> from repro.campaign.objectstore import HttpDriver, ObjectStoreService
>>> with ObjectStoreService() as service:
...     driver = HttpDriver(service.url)
...     driver.put_atomic("points/a.json", b'{"x": 1}')
...     driver.get("points/a.json")
...     driver.put_exclusive("leases/a.lease", b"owner-1")
...     driver.put_exclusive("leases/a.lease", b"owner-2")
...     driver.list("points/")
b'{"x": 1}'
True
False
['points/a.json']
"""

from __future__ import annotations

import hashlib
import json
import logging
import sys
import threading
import time
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, quote, unquote, urlsplit

from repro.campaign.faults import (
    NETWORK_KINDS,
    STORAGE_STALE_OPS,
    StorageFaultPlan,
    StorageFaultSelector,
)
from repro.campaign.storage import (
    MemoryDriver,
    StorageDriver,
    StorageStat,
    _check_key,
)
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    PersistentStorageError,
    StorageMissingError,
    TransientStorageError,
)

#: Integrity / protocol headers (both directions where applicable).
SHA_HEADER = "X-Repro-Sha256"
OP_HEADER = "X-Repro-Op"
RENAME_HEADER = "X-Repro-Rename-To"
SIZE_HEADER = "X-Repro-Size"
MTIME_HEADER = "X-Repro-Mtime"
DELETED_HEADER = "X-Repro-Deleted"
PERSISTENT_HEADER = "X-Repro-Persistent"


log = logging.getLogger("repro.campaign.objectstore")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class HttpDriver(StorageDriver):
    """Remote :class:`~repro.campaign.storage.StorageDriver` over the
    object-store wire protocol (see the module docstring).

    One short-lived connection per operation: simple, thread-safe, and
    robust to the server-side disconnect faults the chaos harness
    injects (a poisoned keep-alive connection can never leak across
    operations). Transport failures — refused connections, resets,
    truncated bodies, timeouts, 5xx responses — all surface as
    :class:`~repro.errors.TransientStorageError` for the retrying
    wrapper; a ``Retry-After`` header rides along as the error's
    ``retry_after_s`` hint.
    """

    name = "http"

    def __init__(self, url: str, timeout_s: float = 10.0) -> None:
        super().__init__()
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https"):
            raise ConfigurationError(
                f"HttpDriver needs an http(s)://host[:port]/bucket "
                f"URL, got {url!r}"
            )
        bucket = parts.path.strip("/")
        if not parts.netloc or not bucket or "/" in bucket:
            raise ConfigurationError(
                f"HttpDriver needs exactly one bucket path segment, "
                f"got {url!r}"
            )
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self._scheme = parts.scheme
        self._netloc = parts.netloc
        self._bucket = bucket
        self._timeout_s = float(timeout_s)
        self.spec = f"{parts.scheme}://{parts.netloc}/{bucket}"
        self.name = f"http({parts.netloc}/{bucket})"

    @property
    def url(self) -> str:
        return self.spec

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _path(self, key: str = "", query: str = "") -> str:
        path = "/" + quote(self._bucket, safe="")
        if key:
            path += "/" + quote(key, safe="/")
        if query:
            path += "?" + query
        return path

    def _request(
        self,
        method: str,
        op: str,
        key: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn_cls = (
            HTTPSConnection if self._scheme == "https" else HTTPConnection
        )
        conn = conn_cls(self._netloc, timeout=self._timeout_s)
        sent = dict(headers or {})
        sent[OP_HEADER] = op
        if body is not None:
            sent[SHA_HEADER] = _sha256(body)
        try:
            conn.request(method, path, body=body, headers=sent)
            response = conn.getresponse()
            data = response.read()
            got = {k.lower(): v for k, v in response.getheaders()}
        except (HTTPException, OSError) as error:
            # Refused/reset connections, timeouts, truncated bodies
            # (IncompleteRead), and torn status lines all land here.
            self._record(op, error=True)
            raise TransientStorageError(
                f"{op}({key!r}) over {self.spec}: "
                f"{type(error).__name__}: {error}"
            ) from error
        finally:
            conn.close()
        if response.status >= 500 or response.status == 429:
            self._record(op, error=True)
            hint = got.get("retry-after")
            raise TransientStorageError(
                f"{op}({key!r}) over {self.spec}: "
                f"HTTP {response.status} "
                f"{data[:200].decode('utf-8', 'replace')}",
                retry_after_s=float(hint) if hint else None,
            )
        return response.status, got, data

    def _verify(self, op: str, key: str, data: bytes, claimed: str) -> None:
        if claimed and _sha256(data) != claimed:
            self._record(op, error=True)
            raise TransientStorageError(
                f"{op}({key!r}): body sha256 disagrees with the "
                f"{SHA_HEADER} header (corrupt or truncated transfer)"
            )

    def _unexpected(self, op: str, key: str, status: int, body: bytes):
        self._record(op, error=True)
        raise PersistentStorageError(
            f"{op}({key!r}) over {self.spec}: unexpected HTTP "
            f"{status} {body[:200].decode('utf-8', 'replace')}"
        )

    # ------------------------------------------------------------------ #
    # contract
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> bytes:
        _check_key(key)
        status, headers, data = self._request(
            "GET", "get", key, self._path(key)
        )
        if status == 404:
            self._record("get", error=True)
            raise StorageMissingError(f"no value at {key!r}")
        if status != 200:
            self._unexpected("get", key, status, data)
        self._verify("get", key, data, headers.get(SHA_HEADER.lower(), ""))
        self._record("get", read=len(data))
        return data

    def _put(self, op: str, key: str, data: bytes) -> None:
        _check_key(key)
        status, headers, body = self._request(
            "PUT", op, key, self._path(key), body=data
        )
        if status not in (200, 201):
            self._unexpected(op, key, status, body)
        etag = headers.get("etag", "").strip('"')
        if etag != _sha256(data):
            # The committed content must be what was sent: ETag is the
            # write's read-back. A mismatch (or a truncated response
            # that lost the header) retries the idempotent write.
            self._record(op, error=True)
            raise TransientStorageError(
                f"{op}({key!r}): committed ETag {etag!r} disagrees "
                f"with the sent payload"
            )
        self._record(op, wrote=len(data))

    def put_atomic(self, key: str, data: bytes) -> None:
        self._put("put_atomic", key, data)

    def replace(self, key: str, data: bytes) -> None:
        self._put("replace", key, data)

    def put_exclusive(self, key: str, data: bytes) -> bool:
        _check_key(key)
        status, headers, body = self._request(
            "PUT",
            "put_exclusive",
            key,
            self._path(key),
            body=data,
            headers={"If-None-Match": "*"},
        )
        if status == 412:
            self._record("put_exclusive")
            return False
        if status != 201:
            self._unexpected("put_exclusive", key, status, body)
        etag = headers.get("etag", "").strip('"')
        if etag != _sha256(data):
            self._record("put_exclusive", error=True)
            raise TransientStorageError(
                f"put_exclusive({key!r}): committed ETag disagrees "
                f"with the sent payload"
            )
        self._record("put_exclusive", wrote=len(data))
        return True

    def delete(self, key: str) -> bool:
        _check_key(key)
        status, headers, body = self._request(
            "DELETE", "delete", key, self._path(key)
        )
        self._record("delete")
        if status != 200:
            self._unexpected("delete", key, status, body)
        return headers.get(DELETED_HEADER.lower()) == "1"

    def list(self, prefix: str = "") -> List[str]:
        self._record("list")
        status, headers, data = self._request(
            "GET",
            "list",
            prefix,
            self._path(query=f"list=1&prefix={quote(prefix, safe='')}"),
        )
        if status != 200:
            self._unexpected("list", prefix, status, data)
        self._verify("list", prefix, data, headers.get(SHA_HEADER.lower(), ""))
        try:
            keys = json.loads(data.decode("utf-8"))
        except ValueError as error:
            raise TransientStorageError(
                f"list({prefix!r}): undecodable listing body"
            ) from error
        return list(keys)

    def exists(self, key: str) -> bool:
        _check_key(key)
        self._record("exists")
        status, _, _ = self._request(
            "HEAD", "exists", key, self._path(key)
        )
        if status == 200:
            return True
        if status == 404:
            return False
        self._unexpected("exists", key, status, b"")

    def stat(self, key: str) -> StorageStat:
        _check_key(key)
        self._record("stat")
        status, headers, _ = self._request(
            "HEAD", "stat", key, self._path(key)
        )
        if status == 404:
            raise StorageMissingError(f"no value at {key!r}")
        if status != 200:
            self._unexpected("stat", key, status, b"")
        try:
            return StorageStat(
                size=int(headers[SIZE_HEADER.lower()]),
                mtime=float(headers[MTIME_HEADER.lower()]),
            )
        except (KeyError, ValueError) as error:
            raise TransientStorageError(
                f"stat({key!r}): malformed stat headers"
            ) from error

    def rename(self, key: str, new_key: str) -> None:
        _check_key(key)
        _check_key(new_key)
        self._record("rename")
        status, _, body = self._request(
            "POST",
            "rename",
            key,
            self._path(key),
            body=b"",
            headers={RENAME_HEADER: quote(new_key, safe="/")},
        )
        if status == 404:
            raise StorageMissingError(f"no value at {key!r}")
        if status != 200:
            self._unexpected("rename", key, status, body)


class CircuitBreaker:
    """Reusable fail-fast state machine (module-docstring diagram).

    Counts *consecutive* failed calls; at ``failure_threshold`` the
    breaker opens and :meth:`guard` raises
    :class:`~repro.errors.CircuitOpenError` without invoking the
    guarded call. After ``reset_after_s`` one half-open probe is let
    through — its success closes the breaker, its failure reopens it.
    The same machine protects storage operations
    (:class:`CircuitBreakerDriver`) and campaign-service requests
    (:class:`repro.campaign.client.CampaignServiceClient`).
    """

    def __init__(
        self,
        name: str = "endpoint",
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ConfigurationError("reset_after_s must be >= 0")
        self.name = name
        self._threshold = int(failure_threshold)
        self._reset_after_s = float(reset_after_s)
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._n_trips = 0
        self._n_short_circuited = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == "open"
            and time.monotonic() - self._opened_at >= self._reset_after_s
        ):
            self._state = "half-open"
            self._probe_in_flight = False

    def _admit(self, op: str, key: str) -> bool:
        """Admit the call, or raise CircuitOpenError. Returns whether
        this call is the half-open probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return False
            if self._state == "half-open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self._n_short_circuited += 1
            remaining = max(
                0.0,
                self._reset_after_s
                - (time.monotonic() - self._opened_at),
            )
            raise CircuitOpenError(
                f"circuit open for {self.name}: {op}({key!r}) "
                f"failed fast ({self._consecutive_failures} consecutive "
                f"failures; next probe in {remaining:.1f}s)"
            )

    def _on_success(self, probe: bool) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if probe or self._state != "open":
                self._state = "closed"
            self._probe_in_flight = False

    def _on_failure(self, probe: bool) -> None:
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                probe
                or (
                    self._state == "closed"
                    and self._consecutive_failures >= self._threshold
                )
            )
            if tripped:
                self._state = "open"
                self._opened_at = time.monotonic()
                self._n_trips += 1
            self._probe_in_flight = False

    def guard(
        self,
        op: str,
        key: str,
        fn,
        answers: Tuple[type, ...] = (StorageMissingError,),
    ):
        """Run ``fn()`` under the breaker.

        ``answers`` are exception types that count as the backend
        *answering* (a missing key, a lost exclusive claim): they
        propagate without tripping the breaker. Transient/persistent
        storage errors count as failures; anything else passes through
        untouched.
        """
        probe = self._admit(op, key)
        try:
            result = fn()
        except answers:
            self._on_success(probe)  # the backend answered
            raise
        except (TransientStorageError, PersistentStorageError):
            self._on_failure(probe)
            raise
        self._on_success(probe)
        return result

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "n_trips": self._n_trips,
                "n_short_circuited": self._n_short_circuited,
            }


class CircuitBreakerDriver(StorageDriver):
    """Fail-fast wrapper tripping persistent network failure into the
    runner's read-only degradation path (state machine in the module
    docstring; the machine itself lives in :class:`CircuitBreaker`).

    Missing keys and lost exclusive claims are answers, not failures.
    Stacked as ``RetryingDriver(CircuitBreakerDriver(HttpDriver))``
    (what ``build_driver("http://...")`` plus the store's auto-wrap
    produces), so bounded retries run above and fail-fast below.
    """

    def __init__(
        self,
        inner: StorageDriver,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._breaker = CircuitBreaker(
            inner.name, failure_threshold, reset_after_s
        )
        self.name = f"breaker({inner.name})"
        spec = getattr(inner, "spec", None)
        if spec is not None:
            self.spec = spec

    @property
    def inner(self) -> StorageDriver:
        return self._inner

    @property
    def state(self) -> str:
        return self._breaker.state

    def _guard(self, op: str, key: str, fn):
        return self._breaker.guard(op, key, fn)

    def get(self, key: str) -> bytes:
        return self._guard("get", key, lambda: self._inner.get(key))

    def put_atomic(self, key: str, data: bytes) -> None:
        return self._guard(
            "put_atomic", key, lambda: self._inner.put_atomic(key, data)
        )

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._guard(
            "put_exclusive",
            key,
            lambda: self._inner.put_exclusive(key, data),
        )

    def replace(self, key: str, data: bytes) -> None:
        return self._guard(
            "replace", key, lambda: self._inner.replace(key, data)
        )

    def delete(self, key: str) -> bool:
        return self._guard("delete", key, lambda: self._inner.delete(key))

    def list(self, prefix: str = "") -> List[str]:
        return self._guard(
            "list", prefix, lambda: self._inner.list(prefix)
        )

    def exists(self, key: str) -> bool:
        return self._guard(
            "exists", key, lambda: self._inner.exists(key)
        )

    def stat(self, key: str) -> StorageStat:
        return self._guard("stat", key, lambda: self._inner.stat(key))

    def rename(self, key: str, new_key: str) -> None:
        return self._guard(
            "rename", key, lambda: self._inner.rename(key, new_key)
        )

    def stats(self) -> Dict[str, object]:
        own: Dict[str, object] = {"driver": self.name}
        own.update(self._breaker.snapshot())
        own["inner"] = self._inner.stats()
        return own


# ---------------------------------------------------------------------- #
# server
# ---------------------------------------------------------------------- #


#: Exceptions that mean "the client hung up mid-request" — routine
#: under chaos plans and impatient clients, never a server bug.
DISCONNECT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class ClientDisconnectLog:
    """Counts mid-response client disconnects for an HTTP service.

    One warning line on the first occurrence, a ``log_lines`` entry per
    event, never a traceback — chaos plans disconnect on purpose,
    hundreds of times per CI run. Mixed into :class:`ObjectStoreService`
    and :class:`repro.campaign.service.CampaignService`, both of which
    provide ``log_lines``.
    """

    log_lines: List[str]

    def _init_disconnect_log(self) -> None:
        self.n_client_disconnects = 0
        self._disconnect_lock = threading.Lock()

    def note_client_disconnect(self, client_address, exc) -> None:
        with self._disconnect_lock:
            self.n_client_disconnects += 1
            first = self.n_client_disconnects == 1
        self.log_lines.append(
            f"client disconnect from {client_address}: "
            f"{type(exc).__name__}"
        )
        if first:
            log.warning(
                "client %s disconnected mid-response (%s); further "
                "disconnects are counted silently",
                client_address,
                type(exc).__name__,
            )


class DisconnectTolerantHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client disconnects as routine.

    The stock ``socketserver`` prints a full traceback to stderr every
    time a handler thread dies on ``BrokenPipeError`` /
    ``ConnectionResetError`` — which under a chaos plan (or a client
    that simply stopped reading a stream) spams CI logs with noise.
    Disconnects are counted on the owning service
    (``note_client_disconnect``) and logged once; everything else still
    gets the stock traceback.
    """

    daemon_threads = True
    allow_reuse_address = True
    service: ClientDisconnectLog

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, DISCONNECT_ERRORS):
            self.service.note_client_disconnect(client_address, exc)
            return
        super().handle_error(request, client_address)


class _ObjectStoreHTTPServer(DisconnectTolerantHTTPServer):
    pass


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-objectstore/1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    @property
    def service(self) -> "ObjectStoreService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        self.service.log_lines.append(format % args)

    def _send(
        self,
        status: int,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        truncate: bool = False,
    ) -> None:
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command == "HEAD":
            return
        if truncate:
            # Mid-body disconnect: declared Content-Length exceeds
            # what lands, so the client's read raises IncompleteRead.
            self.wfile.write(body[: len(body) // 2])
            self.wfile.flush()
            self.close_connection = True
            try:
                self.connection.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass
            return
        if body:
            self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
        truncate: bool = False,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send(status, body, headers, truncate=truncate)

    def _parse(self) -> Optional[Tuple[str, str, Dict[str, List[str]]]]:
        """(key, op, query) for this request, or None after a 404/400."""
        parts = urlsplit(self.path)
        segments = parts.path.lstrip("/").split("/", 1)
        if unquote(segments[0]) != self.service.bucket:
            self._send_json(404, {"error": "unknown bucket"})
            return None
        key = unquote(segments[1]) if len(segments) > 1 else ""
        query = parse_qs(parts.query)
        op = self.headers.get(OP_HEADER, "") or self._default_op(key, query)
        return key, op, query

    def _default_op(self, key: str, query: Dict[str, List[str]]) -> str:
        return {
            "GET": "list" if (not key or "list" in query) else "get",
            "HEAD": "stat",
            "PUT": (
                "put_exclusive"
                if self.headers.get("If-None-Match") == "*"
                else "put_atomic"
            ),
            "DELETE": "delete",
            "POST": "rename",
        }.get(self.command, "get")

    def _read_body(self) -> Optional[bytes]:
        """Request body verified against its integrity header, or
        ``None`` after responding 400/422 (nothing was committed)."""
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        claimed = self.headers.get(SHA_HEADER, "")
        if len(body) != length or (claimed and _sha256(body) != claimed):
            self._send_json(
                422, {"error": "body integrity check failed"}
            )
            return None
        return body

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #

    def _consult_fault(self, op: str, key: str):
        """The network fault rule firing on this request, if any."""
        selector = self.service.selector
        if selector is None:
            return None
        return selector.consult(op, key)

    def _apply_pre_fault(self, rule, op: str, key: str) -> str:
        """Apply a fault that acts before/instead of the operation.

        Returns ``"handled"`` when a response (or deliberate silence)
        was already produced, ``"truncate"`` when the operation should
        proceed but its response must be cut mid-body, ``"stale"``
        when a read should serve the previous committed state, and
        ``"proceed"`` otherwise.
        """
        if rule is None:
            return "proceed"
        if rule.kind == "refuse":
            # Drop the connection before any response bytes: the
            # client sees a reset/torn status line.
            self.close_connection = True
            try:
                self.connection.shutdown(2)
            except OSError:
                pass
            return "handled"
        if rule.kind == "http_error":
            headers = {}
            if rule.retry_after_s is not None:
                headers["Retry-After"] = f"{rule.retry_after_s:g}"
            self._send_json(
                rule.status,
                {"error": f"injected HTTP {rule.status}"},
                headers,
            )
            return "handled"
        if rule.kind == "delay":
            time.sleep(rule.hang_s)
            return "proceed"
        if rule.kind == "disconnect":
            return "truncate"
        if rule.kind == "stale_read" and op in STORAGE_STALE_OPS:
            return "stale"
        return "proceed"

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def _handle(self) -> None:
        # One request per connection both sides (the driver opens a
        # fresh connection per op): never reuse a socket that may hold
        # an undrained request body or a truncated response.
        self.close_connection = True
        parsed = self._parse()
        if parsed is None:
            return
        key, op, query = parsed
        rule = self._consult_fault(op, key)
        action = self._apply_pre_fault(rule, op, key)
        if action == "handled":
            return
        truncate = action == "truncate"
        stale = action == "stale"
        try:
            if op == "list":
                prefix = (query.get("prefix") or [""])[0]
                keys = self.service.driver.list(unquote(prefix))
                body = json.dumps(keys).encode("utf-8")
                self._send(
                    200,
                    body,
                    {SHA_HEADER: _sha256(body)},
                    truncate=truncate,
                )
            elif op == "get":
                data = self.service.read_for(key, stale=stale)
                sha = _sha256(data)
                self._send(
                    200,
                    data,
                    {SHA_HEADER: sha, "ETag": f'"{sha}"'},
                    truncate=truncate,
                )
            elif op in ("exists", "stat"):
                if stale:
                    # Serve the historical view: size from the
                    # recorded bytes, mtime approximate (an emulation
                    # knob, not a durability promise).
                    data = self.service.read_for(key, stale=True)
                    size, mtime = len(data), time.time()
                else:
                    stat = self.service.driver.stat(key)
                    size, mtime = stat.size, stat.mtime
                self._send(
                    200,
                    b"",
                    {
                        SIZE_HEADER: str(size),
                        MTIME_HEADER: f"{mtime!r}",
                    },
                )
            elif op in ("put_atomic", "replace", "put_exclusive"):
                body = self._read_body()
                if body is None:
                    return
                self.service.note_write(key)
                if op == "put_exclusive":
                    created = self.service.driver.put_exclusive(key, body)
                    if not created:
                        self._send_json(
                            412, {"error": "key exists"}, truncate=truncate
                        )
                        return
                elif op == "replace":
                    self.service.driver.replace(key, body)
                else:
                    self.service.driver.put_atomic(key, body)
                sha = _sha256(body)
                self._send_json(
                    201 if op == "put_exclusive" else 200,
                    {"ok": True},
                    {"ETag": f'"{sha}"', SHA_HEADER: sha},
                    truncate=truncate,
                )
            elif op == "delete":
                self.service.note_write(key)
                removed = self.service.driver.delete(key)
                self._send_json(
                    200,
                    {"ok": True},
                    {DELETED_HEADER: "1" if removed else "0"},
                    truncate=truncate,
                )
            elif op == "rename":
                new_key = unquote(self.headers.get(RENAME_HEADER, ""))
                if not new_key:
                    self._send_json(
                        400, {"error": f"missing {RENAME_HEADER}"}
                    )
                    return
                self.service.note_write(key)
                self.service.note_write(new_key)
                self.service.driver.rename(key, new_key)
                self._send_json(200, {"ok": True}, truncate=truncate)
            else:
                self._send_json(400, {"error": f"unknown op {op!r}"})
        except StorageMissingError:
            self._send_json(404, {"error": f"no value at {key!r}"})
        except ConfigurationError as error:
            self._send_json(400, {"error": str(error)})
        except TransientStorageError as error:
            self._send_json(503, {"error": str(error)})
        except PersistentStorageError as error:
            self._send_json(
                500, {"error": str(error)}, {PERSISTENT_HEADER: "1"}
            )

    do_GET = _handle
    do_HEAD = _handle
    do_PUT = _handle
    do_DELETE = _handle
    do_POST = _handle


class ObjectStoreService(ClientDisconnectLog):
    """Hermetic HTTP object-store service over a local driver.

    In-process for tests (``with ObjectStoreService() as service:``) and
    behind ``python -m repro.campaign serve`` for real deployments. The
    backing ``driver`` defaults to a fresh
    :class:`~repro.campaign.storage.MemoryDriver`; hand it a
    ``PosixDriver`` for a durable store. ``fault_plan``'s network-class
    rules are injected server-side (see the module docstring).
    """

    def __init__(
        self,
        driver: Optional[StorageDriver] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        bucket: str = "campaign",
        fault_plan: Optional[StorageFaultPlan] = None,
    ) -> None:
        if "/" in bucket or not bucket:
            raise ConfigurationError(
                f"bucket must be one path segment, got {bucket!r}"
            )
        self.driver = driver if driver is not None else MemoryDriver()
        self.bucket = bucket
        self._host = host
        self._port = int(port)
        self.selector = (
            StorageFaultSelector(fault_plan, kinds=NETWORK_KINDS)
            if fault_plan is not None and fault_plan.rules
            else None
        )
        self._track_stale = bool(
            fault_plan is not None and fault_plan.has_kind("stale_read")
        )
        self._history: Dict[str, bytes] = {}
        self._history_lock = threading.Lock()
        self.log_lines: List[str] = []
        self._init_disconnect_log()
        self._server: Optional[_ObjectStoreHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # stale-read history (one-deep, recorded only when a plan wants it)
    # ------------------------------------------------------------------ #

    def note_write(self, key: str) -> None:
        """Record the pre-write committed state of ``key`` so a
        ``stale_read`` fault can serve it later."""
        if not self._track_stale:
            return
        with self._history_lock:
            try:
                self._history[key] = self.driver.get(key)
            except StorageMissingError:
                self._history.pop(key, None)

    def read_for(self, key: str, stale: bool = False) -> bytes:
        """Committed bytes at ``key`` — or, under a ``stale_read``
        fault, the previous committed state (absence raises, emulating
        a not-yet-visible write)."""
        if stale:
            with self._history_lock:
                if key in self._history:
                    return self._history[key]
            # No recorded history: the key predates tracking, so the
            # current state *is* the stale view — unless it was never
            # written through this server, in which case a fresh write
            # is simply not visible yet.
            raise StorageMissingError(
                f"stale read: {key!r} not yet visible"
            )
        return self.driver.get(key)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        """Driver-ready spec: ``http://host:port/bucket``."""
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/{self.bucket}"

    def start(self) -> "ObjectStoreService":
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _ObjectStoreHTTPServer(
            (self._host, self._port), _Handler
        )
        self._server.service = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-objectstore",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve loop for ``python -m repro.campaign serve``."""
        if self._server is None:
            self._server = _ObjectStoreHTTPServer(
                (self._host, self._port), _Handler
            )
            self._server.service = self
        self._server.serve_forever(poll_interval=0.2)

    def __enter__(self) -> "ObjectStoreService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "DISCONNECT_ERRORS",
    "CircuitBreaker",
    "ClientDisconnectLog",
    "CircuitBreakerDriver",
    "DisconnectTolerantHTTPServer",
    "HttpDriver",
    "ObjectStoreService",
]
