"""Declarative campaign specs: grids of content-addressable sweep points.

A *campaign* is a Monte-Carlo grid over the network simulator's
scenario axes — engine × noise stream × fading × device count (× the
deployment, round count and query length they all share). The spec is
fully declarative: every random ingredient is an explicit integer seed
(derived once, via :func:`repro.utils.rng.child_seed`, with exactly the
draw order the direct Fig. 17/18 drivers use), so a
:class:`CampaignPoint` is a pure value. Its :meth:`~CampaignPoint.
content_hash` is the SHA-256 of its canonical JSON form, which is what
makes the campaign store (:mod:`repro.campaign.store`) safe to reuse
across figures and across resumed runs: two points collide exactly when
they would compute the same result.

Doctest — the same point always hashes the same, and any axis change
moves the hash:

>>> from repro.campaign.spec import CampaignPoint
>>> point = CampaignPoint(
...     deployment={"kind": "paper", "n_devices": 16, "seed": 7},
...     config={"n_association_shifts": 0},
...     n_devices=8, n_rounds=2, query_bits=32,
...     engine="analytic", noise_mode="payload", fading=False,
...     readout_dtype=None, seed=1234)
>>> point.content_hash() == point.content_hash()
True
>>> from dataclasses import replace
>>> replace(point, seed=1235).content_hash() == point.content_hash()
False
>>> moved = replace(point, noise_mode="full").content_hash()
>>> moved == point.content_hash()
False
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.phy.noise import NOISE_MODES
from repro.protocol.network import ENGINES
from repro.utils.rng import RngLike, child_seed, make_rng

#: Version stamp hashed into every point: bump it when the meaning of a
#: stored result changes (e.g. a new noise-stream default), so stale
#: cache entries stop matching instead of silently serving old physics.
POINT_SCHEMA = "repro-campaign-point-v1"

#: Deployment kinds the runner knows how to rebuild from a descriptor.
DEPLOYMENT_KINDS = ("paper",)


def _canonical_json(data) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-specified experiment point (a pure, hashable value).

    Attributes
    ----------
    deployment:
        Descriptor of the *full* deployment the point subsets —
        ``{"kind": "paper", "n_devices": int, "seed": int}``. Kept as
        a descriptor (not the object) so the point serialises, hashes,
        and rebuilds identically in any worker process.
    config:
        ``NetScatterConfig`` keyword overrides shared by the campaign.
    n_devices:
        The subset size this point simulates (the sweep axis).
    seed:
        The point's integer RNG seed — the same value the direct
        ``sweep_device_counts`` path derives for this count, so
        campaign results are bit-identical to the driver path.
    readout_dtype:
        ``None`` or ``"complex64"`` (the float32 analytic operators).
    """

    deployment: Mapping[str, object]
    config: Mapping[str, object]
    n_devices: int
    n_rounds: int
    query_bits: int
    engine: str
    noise_mode: str
    fading: bool
    readout_dtype: Optional[str]
    seed: int

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.noise_mode not in NOISE_MODES:
            raise ConfigurationError(
                f"noise_mode must be one of {NOISE_MODES}, "
                f"got {self.noise_mode!r}"
            )
        if self.readout_dtype not in (None, "complex64"):
            raise ConfigurationError(
                "readout_dtype must be None or 'complex64', "
                f"got {self.readout_dtype!r}"
            )
        kind = dict(self.deployment).get("kind")
        if kind not in DEPLOYMENT_KINDS:
            raise ConfigurationError(
                f"deployment kind must be one of {DEPLOYMENT_KINDS}, "
                f"got {kind!r}"
            )
        if not 1 <= int(self.n_devices) <= int(
            dict(self.deployment)["n_devices"]
        ):
            raise ConfigurationError(
                f"n_devices {self.n_devices} outside the deployment's "
                f"1..{dict(self.deployment)['n_devices']}"
            )
        if int(self.n_rounds) < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        # Freeze the mappings into plain dicts so asdict/JSON round-trip.
        object.__setattr__(self, "deployment", dict(self.deployment))
        object.__setattr__(self, "config", dict(self.config))

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the exact content that is hashed)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignPoint":
        return cls(**dict(data))

    def content_hash(self) -> str:
        """SHA-256 of the canonical point content (+ schema version)."""
        payload = {"schema": POINT_SCHEMA, "point": self.to_dict()}
        return hashlib.sha256(
            _canonical_json(payload).encode()
        ).hexdigest()

    def matches(self, **criteria: object) -> bool:
        """True when every ``field=value`` criterion equals this point's.

        The selection helper behind fault-plan rules and CLI filters:
        ``point.matches(n_devices=64, engine="auto")``. A criterion of
        ``hash_prefix=`` matches on :meth:`content_hash` instead.

        >>> CampaignPoint(
        ...     deployment={"kind": "paper", "n_devices": 4, "seed": 1},
        ...     config={}, n_devices=2, n_rounds=1, query_bits=32,
        ...     engine="analytic", noise_mode="payload", fading=False,
        ...     readout_dtype=None, seed=5).matches(n_devices=2)
        True
        """
        fields = self.to_dict()
        for key, wanted in criteria.items():
            if key == "hash_prefix":
                if not self.content_hash().startswith(str(wanted)):
                    return False
            elif fields.get(key) != wanted:
                return False
        return True


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of :class:`CampaignPoint`\\ s.

    The grid is the Cartesian product ``engines × noise_modes × fading
    × device_counts`` (in that nesting order, counts innermost). Every
    count owns one pre-derived integer seed shared across the other
    axes, so cross-engine / cross-noise-mode comparisons are *paired*:
    they see the same deployment subset and the same draw stream, and a
    single-axis campaign reproduces the direct driver sweep seed for
    seed. Use the preset builders (:mod:`repro.campaign.presets`) to
    derive ``deployment_seed``/``point_seeds`` from a base RNG with the
    figure drivers' exact draw order.
    """

    name: str
    deployment: Mapping[str, object]
    device_counts: Tuple[int, ...]
    point_seeds: Tuple[int, ...]
    config: Mapping[str, object] = field(default_factory=dict)
    engines: Tuple[str, ...] = ("analytic",)
    noise_modes: Tuple[str, ...] = ("payload",)
    fading: Tuple[bool, ...] = (False,)
    n_rounds: int = 3
    query_bits: int = 32
    float32_min_devices: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "deployment", dict(self.deployment))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(
            self, "device_counts", tuple(int(c) for c in self.device_counts)
        )
        object.__setattr__(
            self, "point_seeds", tuple(int(s) for s in self.point_seeds)
        )
        object.__setattr__(self, "engines", tuple(self.engines))
        object.__setattr__(self, "noise_modes", tuple(self.noise_modes))
        object.__setattr__(
            self, "fading", tuple(bool(f) for f in self.fading)
        )
        if len(self.point_seeds) != len(self.device_counts):
            raise ConfigurationError(
                f"{len(self.device_counts)} device counts but "
                f"{len(self.point_seeds)} point seeds"
            )
        if not self.device_counts:
            raise ConfigurationError("campaign needs at least one count")
        if not (self.engines and self.noise_modes and self.fading):
            raise ConfigurationError("every grid axis needs >= 1 value")
        # Validate every point eagerly: a bad spec should fail at
        # construction, not halfway through a sharded run.
        for _ in self.points():
            pass

    @property
    def n_points(self) -> int:
        return (
            len(self.engines)
            * len(self.noise_modes)
            * len(self.fading)
            * len(self.device_counts)
        )

    def _dtype_for(self, engine: str, count: int) -> Optional[str]:
        if (
            self.float32_min_devices is not None
            and engine in ("analytic", "auto")
            and count >= int(self.float32_min_devices)
        ):
            return "complex64"
        return None

    def points(self) -> Iterator[CampaignPoint]:
        """Expand the grid, counts innermost, deterministically ordered."""
        for engine in self.engines:
            for noise_mode in self.noise_modes:
                for fading in self.fading:
                    for count, seed in zip(
                        self.device_counts, self.point_seeds
                    ):
                        yield CampaignPoint(
                            deployment=self.deployment,
                            config=self.config,
                            n_devices=count,
                            n_rounds=self.n_rounds,
                            query_bits=self.query_bits,
                            engine=engine,
                            noise_mode=noise_mode,
                            fading=fading,
                            readout_dtype=self._dtype_for(engine, count),
                            seed=seed,
                        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["schema"] = "repro-campaign-spec-v1"
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        payload = dict(data)
        schema = payload.pop("schema", "repro-campaign-spec-v1")
        if schema != "repro-campaign-spec-v1":
            raise ConfigurationError(
                f"unsupported campaign spec schema {schema!r}"
            )
        return cls(**payload)


def derive_seeds(
    rng: RngLike, device_counts: Sequence[int]
) -> Tuple[int, Tuple[int, ...]]:
    """``(deployment_seed, point_seeds)`` with the driver draw order.

    Consumes draws from ``rng`` exactly as ``fig17/fig18.run`` +
    ``sweep_device_counts`` do — one :func:`child_seed` at index 0 for
    the deployment, then one per device count in sweep order — so a
    campaign built from the same base seed computes bit-identical
    metrics to the direct driver path (pinned by the campaign tests).
    """
    generator = make_rng(rng)
    deployment_seed = child_seed(generator, 0)
    point_seeds = tuple(
        child_seed(generator, int(count)) for count in device_counts
    )
    return deployment_seed, point_seeds


__all__ = [
    "POINT_SCHEMA",
    "DEPLOYMENT_KINDS",
    "CampaignPoint",
    "CampaignSpec",
    "derive_seeds",
]
