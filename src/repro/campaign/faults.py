"""Deterministic fault injection for the campaign execution layer.

Every recovery path in the campaign runner/store — retry after a worker
crash, per-point timeout of a hung worker, ``BrokenProcessPool`` →
serial degradation, torn-chunk quarantine — is exercised in CI through
this harness rather than trusted. A :class:`FaultPlan` is a *seeded,
declarative* list of :class:`FaultRule`\\ s saying exactly which points
fail, how, and on which attempt:

.. code-block:: json

    {
      "schema": "repro-fault-plan-v1",
      "seed": 0,
      "rules": [
        {"stage": "execute", "kind": "crash",
         "match": {"n_devices": 16}, "attempts": [1]},
        {"stage": "execute", "kind": "hang",
         "match": {"hash_prefix": "3f"}, "attempts": [1], "hang_s": 0.5},
        {"stage": "write", "kind": "torn", "match": {}, "attempts": [1]}
      ]
    }

Rules fire on explicit *attempt numbers* (the runner threads the
current attempt through), so injection is reproducible across serial
runs, process pools, and resumed campaigns without shared mutable
state. The plan reaches out-of-process pool workers by value (it is a
frozen, picklable dataclass) and reaches subprocess-launched runners
via the ``REPRO_FAULT_PLAN`` environment variable (inline JSON, or a
path to a JSON file).

Fault kinds:

``crash``
    Raise :class:`~repro.errors.FaultInjectedError` (a retryable,
    transient worker exception).
``hang``
    Sleep ``hang_s`` seconds before proceeding — long enough to trip a
    configured per-point timeout, it simulates a hung worker.
``kill``
    Hard-kill the executing process with ``os._exit`` — in a pool
    worker this breaks the pool (exercising the serial fallback). In
    the main process it degrades to ``crash`` so a serial test run is
    not killed outright.
``torn``
    (``stage="write"`` only) Truncate the just-written chunk file in
    half, simulating a crash mid-write; the store's integrity check
    must quarantine it on next read.

Doctest — a plan round-trips through JSON and fires only on its
declared attempt:

>>> from repro.campaign.faults import FaultPlan
>>> plan = FaultPlan.from_json(
...     '{"schema": "repro-fault-plan-v1", "rules": ['
...     '{"stage": "execute", "kind": "crash",'
...     ' "match": {"n_devices": 8}, "attempts": [1]}]}')
>>> point = {"n_devices": 8, "engine": "analytic"}
>>> plan.match("execute", point, "abc123", attempt=2) is None
True
>>> plan.match("execute", point, "abc123", attempt=1).kind
'crash'
>>> plan.match("execute", {"n_devices": 4}, "abc123", 1) is None
True
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, FaultInjectedError

#: Environment variable carrying a fault plan: inline JSON (starts with
#: ``{``) or a path to a JSON file. Empty/unset means no injection.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

PLAN_SCHEMA = "repro-fault-plan-v1"

STAGES = ("execute", "write")
KINDS = ("crash", "hang", "kill", "torn")

#: Point fields a rule's ``match`` may constrain (beyond
#: ``hash_prefix``, which matches on the point's content hash).
_MATCH_FIELDS = (
    "n_devices",
    "n_rounds",
    "engine",
    "noise_mode",
    "fading",
    "seed",
)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: where it fires, what it does."""

    stage: str
    kind: str
    match: Mapping[str, object] = field(default_factory=dict)
    attempts: Tuple[int, ...] = (1,)
    hang_s: float = 1.0

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ConfigurationError(
                f"fault stage must be one of {STAGES}, got {self.stage!r}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.kind == "torn" and self.stage != "write":
            raise ConfigurationError("'torn' faults belong to stage 'write'")
        if self.kind != "torn" and self.stage == "write":
            raise ConfigurationError(
                f"stage 'write' only supports 'torn', got {self.kind!r}"
            )
        object.__setattr__(self, "match", dict(self.match))
        object.__setattr__(
            self, "attempts", tuple(int(a) for a in self.attempts)
        )
        unknown = [
            key
            for key in self.match
            if key != "hash_prefix" and key not in _MATCH_FIELDS
        ]
        if unknown:
            raise ConfigurationError(
                f"fault match keys {unknown} are not matchable; "
                f"use hash_prefix or {_MATCH_FIELDS}"
            )

    def applies(
        self,
        stage: str,
        point_fields: Mapping[str, object],
        content_hash: str,
        attempt: int,
    ) -> bool:
        if stage != self.stage or int(attempt) not in self.attempts:
            return False
        for key, wanted in self.match.items():
            if key == "hash_prefix":
                if not content_hash.startswith(str(wanted)):
                    return False
            elif point_fields.get(key) != wanted:
                return False
        return True


def _in_pool_worker() -> bool:
    """True when running inside a spawned/forked worker process."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of deterministic fault rules.

    Frozen and picklable so the runner can ship the plan to pool
    workers by value; ``seed`` is reserved for rules that need derived
    randomness (none of the built-in kinds draw — determinism first).
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        payload = dict(data)
        schema = payload.pop("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported fault plan schema {schema!r}"
            )
        rules = tuple(
            FaultRule(**dict(rule)) for rule in payload.pop("rules", ())
        )
        seed = int(payload.pop("seed", 0))
        if payload:
            raise ConfigurationError(
                f"unknown fault plan keys {sorted(payload)}"
            )
        return cls(rules=rules, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The ambient plan (``REPRO_FAULT_PLAN``), or ``None``.

        Inline JSON when the value starts with ``{``, otherwise a file
        path. This is how fault plans reach subprocess-launched runners
        and the CLI without threading an argument everywhere.
        """
        raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        if raw.startswith("{"):
            return cls.from_json(raw)
        return cls.from_file(raw)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "rules": [
                {
                    "stage": rule.stage,
                    "kind": rule.kind,
                    "match": dict(rule.match),
                    "attempts": list(rule.attempts),
                    "hang_s": rule.hang_s,
                }
                for rule in self.rules
            ],
        }

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #

    def match(
        self,
        stage: str,
        point_fields: Mapping[str, object],
        content_hash: str,
        attempt: int,
    ) -> Optional[FaultRule]:
        """First rule applying at this (stage, point, attempt), if any."""
        for rule in self.rules:
            if rule.applies(stage, point_fields, content_hash, attempt):
                return rule
        return None

    def fire_execute(
        self,
        point_fields: Mapping[str, object],
        content_hash: str,
        attempt: int,
    ) -> None:
        """Inject the matching execute-stage fault, if any.

        Called by the runner (serial path) and the pool worker wrapper
        immediately before the real point computation.
        """
        rule = self.match("execute", point_fields, content_hash, attempt)
        if rule is None:
            return
        if rule.kind == "hang":
            time.sleep(rule.hang_s)
            return
        if rule.kind == "kill":
            if _in_pool_worker():
                # Hard-kill the worker: the parent sees a
                # BrokenProcessPool and must degrade to serial.
                os._exit(86)
            raise FaultInjectedError(
                f"injected kill (degraded to crash in main process) at "
                f"point {content_hash[:12]}… attempt {attempt}"
            )
        raise FaultInjectedError(
            f"injected {rule.kind} at point {content_hash[:12]}… "
            f"attempt {attempt}"
        )

    def fire_write(
        self,
        point_fields: Mapping[str, object],
        content_hash: str,
        path,
        attempt: int,
    ) -> None:
        """Tear the just-written chunk at ``path`` if a rule matches."""
        rule = self.match("write", point_fields, content_hash, attempt)
        if rule is None:
            return
        tear_file(path)


def tear_file(path) -> None:
    """Truncate ``path`` to half its size (simulates a torn write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])


# ---------------------------------------------------------------------- #
# storage-layer fault plans (consumed by storage.FaultyDriver)
# ---------------------------------------------------------------------- #

#: Environment variable carrying a storage fault plan (inline JSON or a
#: path), the storage-layer sibling of ``REPRO_FAULT_PLAN``.
STORAGE_FAULT_PLAN_ENV = "REPRO_STORAGE_FAULT_PLAN"

STORAGE_PLAN_SCHEMA = "repro-storage-fault-plan-v1"

#: Driver operations a storage rule may target (``None``/``"*"`` = any).
STORAGE_OPS = (
    "get",
    "put_atomic",
    "put_exclusive",
    "replace",
    "delete",
    "list",
    "exists",
    "stat",
    "rename",
)

#: ``error``/``persistent`` raise Transient-/PersistentStorageError
#: before the operation runs; ``hang`` sleeps ``hang_s`` then proceeds;
#: ``torn`` (write operations only) lands a truncated payload — raising
#: TransientStorageError unless ``silent`` (the undetected-crash case).
STORAGE_KINDS = ("error", "persistent", "torn", "hang")

#: Network-class kinds, injected *server-side* by the object-store
#: service (:mod:`repro.campaign.objectstore`) rather than by the
#: client's ``FaultyDriver`` — they model the wire, not the disk:
#:
#: * ``refuse`` — drop the connection before any response bytes (a
#:   refused/reset connection);
#: * ``http_error`` — respond ``status`` (default 503) with an
#:   optional ``Retry-After: retry_after_s`` header, without touching
#:   the backend;
#: * ``disconnect`` — *perform* the operation, then truncate the
#:   response mid-body and drop the connection (reads arrive torn;
#:   writes land server-side while the client sees a failure — the
#:   eventually-landing-write case the lease read-back reconciles);
#: * ``delay`` — sleep ``hang_s`` before serving (a slow link);
#: * ``stale_read`` — serve the *previous* committed state of the key
#:   (eventual-visibility emulation; applies to get/exists/stat).
NETWORK_KINDS = ("refuse", "http_error", "disconnect", "delay", "stale_read")

#: Request-level operations on the campaign *service* node
#: (:mod:`repro.campaign.service`) that network-class rules may also
#: target: one seeded plan drives chaos against both the object store
#: and the service front end, each consumer firing only the rules whose
#: op names it understands.
SERVICE_OPS = ("submit", "status", "list_campaigns", "healthz")

#: Network kinds meaningful at the service request level.
#: ``stale_read`` is a storage-visibility fault — service requests have
#: no committed history to serve stale — so the service consults plans
#: with this narrower kind set.
REQUEST_KINDS = ("refuse", "http_error", "disconnect", "delay")

#: Read operations eligible for ``stale_read`` faults.
STORAGE_STALE_OPS = ("get", "exists", "stat")

#: Write operations eligible for ``torn`` faults.
STORAGE_WRITE_OPS = ("put_atomic", "put_exclusive", "replace")


@dataclass(frozen=True)
class StorageFaultRule:
    """One deterministic storage fault: which driver calls, what breaks.

    A rule selects calls by operation (``op``, ``None`` = any) and key
    prefix, then fires either on explicit 1-based *matching-call*
    indices (``calls``) or with seeded per-call probability ``p``
    (derived from the plan seed, the op, the key, and the call index —
    reproducible, no shared randomness). ``max_fires`` bounds the total
    injections so probabilistic plans always let a retried operation
    through eventually.
    """

    kind: str
    op: Optional[str] = None
    key_prefix: str = ""
    calls: Optional[Tuple[int, ...]] = None
    p: Optional[float] = None
    max_fires: Optional[int] = None
    hang_s: float = 0.05
    offset: Optional[int] = None  # torn: bytes kept (None = half)
    silent: bool = False  # torn lands without raising
    status: int = 503  # http_error: response status
    retry_after_s: Optional[float] = None  # http_error: Retry-After

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_KINDS + NETWORK_KINDS:
            raise ConfigurationError(
                f"storage fault kind must be one of "
                f"{STORAGE_KINDS + NETWORK_KINDS}, got {self.kind!r}"
            )
        op = None if self.op in (None, "*") else self.op
        if op is not None and op not in STORAGE_OPS + SERVICE_OPS:
            raise ConfigurationError(
                f"storage fault op must be one of "
                f"{STORAGE_OPS + SERVICE_OPS} or '*', got {self.op!r}"
            )
        object.__setattr__(self, "op", op)
        if self.kind == "torn" and op is not None and (
            op not in STORAGE_WRITE_OPS
        ):
            raise ConfigurationError(
                f"'torn' storage faults only apply to write operations "
                f"{STORAGE_WRITE_OPS}, got op={op!r}"
            )
        if self.kind == "stale_read" and op is not None and (
            op not in STORAGE_STALE_OPS
        ):
            raise ConfigurationError(
                f"'stale_read' faults only apply to read operations "
                f"{STORAGE_STALE_OPS}, got op={op!r}"
            )
        if self.kind == "http_error" and not (
            400 <= int(self.status) <= 599
        ):
            raise ConfigurationError(
                f"http_error status must be a 4xx/5xx code, "
                f"got {self.status!r}"
            )
        object.__setattr__(self, "status", int(self.status))
        if self.retry_after_s is not None and self.retry_after_s < 0:
            raise ConfigurationError("retry_after_s must be >= 0")
        if self.calls is not None and self.p is not None:
            raise ConfigurationError(
                "a storage fault rule takes 'calls' or 'p', not both"
            )
        if self.p is not None and not 0.0 <= float(self.p) <= 1.0:
            raise ConfigurationError("storage fault p must be in [0, 1]")
        if self.calls is None and self.p is None:
            object.__setattr__(self, "calls", (1,))
        if self.calls is not None:
            object.__setattr__(
                self, "calls", tuple(int(c) for c in self.calls)
            )

    def selects(self, op: str, key: str) -> bool:
        """True when this rule's (op, key-prefix) selector matches."""
        if self.op is not None and self.op != op:
            return False
        return key.startswith(self.key_prefix)


@dataclass(frozen=True)
class StorageFaultPlan:
    """A seeded, declarative set of storage-driver fault rules.

    The storage-layer extension of :class:`FaultPlan`: consumed by
    :class:`repro.campaign.storage.FaultyDriver`, shipped to
    subprocess-launched runners via ``REPRO_STORAGE_FAULT_PLAN``
    (inline JSON or a file path) and to the CLI via
    ``--storage-fault-plan``.

    >>> plan = StorageFaultPlan.from_json(
    ...     '{"schema": "repro-storage-fault-plan-v1", "rules": ['
    ...     '{"op": "put_atomic", "key_prefix": "points/",'
    ...     ' "kind": "torn", "calls": [1]}]}')
    >>> plan.rules[0].selects("put_atomic", "points/abc.json")
    True
    >>> plan.rules[0].selects("get", "points/abc.json")
    False
    >>> StorageFaultPlan.from_json(
    ...     json.dumps(plan.to_dict())) == plan  # JSON round trip
    True
    """

    rules: Tuple[StorageFaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StorageFaultPlan":
        payload = dict(data)
        schema = payload.pop("schema", STORAGE_PLAN_SCHEMA)
        if schema != STORAGE_PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported storage fault plan schema {schema!r}"
            )
        rules = tuple(
            StorageFaultRule(**dict(rule))
            for rule in payload.pop("rules", ())
        )
        seed = int(payload.pop("seed", 0))
        if payload:
            raise ConfigurationError(
                f"unknown storage fault plan keys {sorted(payload)}"
            )
        return cls(rules=rules, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "StorageFaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "StorageFaultPlan":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_env(cls) -> Optional["StorageFaultPlan"]:
        """The ambient plan (``REPRO_STORAGE_FAULT_PLAN``), or ``None``."""
        raw = os.environ.get(STORAGE_FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        if raw.startswith("{"):
            return cls.from_json(raw)
        return cls.from_file(raw)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": STORAGE_PLAN_SCHEMA,
            "seed": self.seed,
            "rules": [
                {
                    "kind": rule.kind,
                    "op": rule.op,
                    "key_prefix": rule.key_prefix,
                    "calls": (
                        list(rule.calls) if rule.calls is not None else None
                    ),
                    "p": rule.p,
                    "max_fires": rule.max_fires,
                    "hang_s": rule.hang_s,
                    "offset": rule.offset,
                    "silent": rule.silent,
                    "status": rule.status,
                    "retry_after_s": rule.retry_after_s,
                }
                for rule in self.rules
            ],
        }

    def unit(self, op: str, key: str, call_index: int) -> float:
        """Seeded uniform draw in [0, 1) for one (op, key, call)."""
        import hashlib

        digest = hashlib.sha256(
            f"{self.seed}:{op}:{key}:{call_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def has_kind(self, *kinds: str) -> bool:
        """True when any rule carries one of ``kinds``."""
        return any(rule.kind in kinds for rule in self.rules)


class StorageFaultSelector:
    """Stateful, thread-safe rule selection over one storage fault plan.

    Shared by the client-side :class:`~repro.campaign.storage.
    FaultyDriver` and the object-store service's network injector
    (:mod:`repro.campaign.objectstore`): per-rule *matching-call*
    counters advance deterministically, so a given operation sequence
    reproduces the same injections wherever the plan is consulted.

    ``kinds`` restricts which rule kinds this consumer may fire — the
    driver ignores network-class rules, the HTTP service ignores
    storage-class ones — and ignored rules do not advance their
    counters here, so one plan can carry both classes without the two
    consumers perturbing each other's call indices.
    """

    def __init__(
        self,
        plan: "StorageFaultPlan",
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self._plan = plan
        self._kinds = tuple(kinds) if kinds is not None else None
        self._lock = threading.Lock()
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._n_injected = 0

    @property
    def plan(self) -> "StorageFaultPlan":
        return self._plan

    @property
    def n_injected(self) -> int:
        with self._lock:
            return self._n_injected

    def consult(self, op: str, key: str) -> Optional[StorageFaultRule]:
        """First eligible rule firing on this call, advancing counters."""
        with self._lock:
            chosen = None
            for index, rule in enumerate(self._plan.rules):
                if self._kinds is not None and rule.kind not in self._kinds:
                    continue
                if not rule.selects(op, key):
                    continue
                self._seen[index] = n = self._seen.get(index, 0) + 1
                if chosen is not None:
                    continue  # still count later rules' matches
                if (
                    rule.max_fires is not None
                    and self._fired.get(index, 0) >= rule.max_fires
                ):
                    continue
                if rule.calls is not None:
                    fires = n in rule.calls
                else:
                    fires = self._plan.unit(op, key, n) < float(rule.p)
                if fires:
                    self._fired[index] = self._fired.get(index, 0) + 1
                    self._n_injected += 1
                    chosen = rule
            return chosen


__all__ = [
    "FAULT_PLAN_ENV",
    "PLAN_SCHEMA",
    "NETWORK_KINDS",
    "REQUEST_KINDS",
    "SERVICE_OPS",
    "STORAGE_FAULT_PLAN_ENV",
    "STORAGE_KINDS",
    "STORAGE_OPS",
    "STORAGE_PLAN_SCHEMA",
    "STORAGE_STALE_OPS",
    "STORAGE_WRITE_OPS",
    "FaultPlan",
    "FaultRule",
    "StorageFaultPlan",
    "StorageFaultRule",
    "StorageFaultSelector",
    "tear_file",
]
