"""Pluggable fault-tolerant storage drivers for the campaign store.

Every byte of campaign state — point chunks, npz payloads, the
manifest, lease files, failure records, quarantine stamps — flows
through a :class:`StorageDriver`. The driver layer is where I/O faults
are absorbed: bounded retries with seeded-jitter backoff and optional
per-operation timeouts live in :class:`RetryingDriver`, crash-consistent
durability lives in :class:`PosixDriver` (fsync-on-commit), and the
whole contract is exercised in CI by :class:`FaultyDriver`, which
injects I/O errors, torn writes, and latency from a seeded declarative
:class:`~repro.campaign.faults.StorageFaultPlan`. A remote/object-store
driver only has to honour the same contract to inherit the campaign
layer's entire fault story (HSDS's ``storUtil`` posix/S3/Azure split is
the model).

The driver contract
===================

Keys are relative POSIX-style paths (``"points/<hash>.json"``). All
operations are synchronous. The guarantees below are what the store and
the lease protocol are built on — any new driver MUST provide them:

``get(key) -> bytes``
    Returns the *complete* value most recently committed at ``key``;
    raises :class:`~repro.errors.StorageMissingError` when absent. A
    reader never observes a torn value from a committed
    ``put_atomic``/``replace``.
``put_atomic(key, data)``
    All-or-nothing publication: after it returns, every subsequent
    ``get`` observes exactly ``data`` (visible-after-return); if the
    caller crashes mid-operation, readers observe the previous value
    (or absence), never a prefix. On durable backends the committed
    value also survives a host crash (fsync-on-commit).
``put_exclusive(key, data) -> bool``
    Atomic create-if-absent — the lease *claim* primitive. Exactly one
    of N concurrent callers on a vacant key returns ``True``.
``replace(key, data)``
    Atomic unconditional overwrite — the lease *steal/heartbeat*
    primitive. Visible-after-return with read-your-writes: a ``get``
    issued by any process after ``replace`` returns sees the new value
    (or a strictly later one), which is what makes
    replace-then-read-back resolve simultaneous stealers to one winner.
``delete(key) -> bool`` / ``exists(key)`` / ``stat(key)`` /
``list(prefix)`` / ``rename(key, new_key)``
    Bookkeeping; ``delete`` is idempotent, ``list`` never shows
    uncommitted temporaries, ``rename`` atomically moves a committed
    value (the quarantine primitive).

Errors are typed: :class:`~repro.errors.TransientStorageError` may
succeed on retry; :class:`~repro.errors.PersistentStorageError` will
not (the campaign runner degrades to read-only serving when a write
reaches it); :class:`~repro.errors.StorageMissingError` is an answer,
not a fault, and is never retried.

Doctest — the contract in miniature, on the in-process driver:

>>> from repro.campaign.storage import MemoryDriver
>>> driver = MemoryDriver()
>>> driver.put_atomic("points/a.json", b'{"x": 1}')
>>> driver.get("points/a.json")
b'{"x": 1}'
>>> driver.put_exclusive("leases/a.lease", b"owner-1")  # claim wins
True
>>> driver.put_exclusive("leases/a.lease", b"owner-2")  # claim loses
False
>>> driver.replace("leases/a.lease", b"owner-2")        # steal
>>> driver.get("leases/a.lease")                        # read-back
b'owner-2'
>>> driver.list("points/")
['points/a.json']
>>> driver.delete("leases/a.lease")
True
>>> driver.exists("leases/a.lease")
False
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, List, Optional
from urllib.parse import urlsplit

from repro.campaign.faults import (
    STORAGE_KINDS,
    STORAGE_WRITE_OPS,
    StorageFaultPlan,
    StorageFaultSelector,
)
from repro.errors import (
    ConfigurationError,
    PersistentStorageError,
    StorageMissingError,
    TransientStorageError,
)

log = logging.getLogger("repro.campaign.storage")


@dataclass(frozen=True)
class StorageStat:
    """Size and modification time of one committed value."""

    size: int
    mtime: float


def _check_key(key: str) -> str:
    """Validate a driver key: relative, normalised, no traversal."""
    if not key or key.startswith("/") or "\\" in key:
        raise ConfigurationError(
            f"storage keys are relative POSIX paths, got {key!r}"
        )
    path = PurePosixPath(key)
    if ".." in path.parts or str(path) != key:
        # str(path) != key catches the forms PurePosixPath would
        # silently normalise ("./x", "a//b", trailing "/"): a key must
        # name its object the same way list() will report it.
        raise ConfigurationError(
            f"storage keys must be normalised relative POSIX paths "
            f"without traversal, got {key!r}"
        )
    return key


class StorageDriver(ABC):
    """Abstract storage backend; see the module docstring contract.

    Concrete drivers record lightweight operation statistics
    (:meth:`stats`) so ``python -m repro.campaign status`` can report
    per-driver I/O counts without instrumentation.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._stats_lock = threading.Lock()
        self._op_counts: Dict[str, int] = {}
        self._bytes_read = 0
        self._bytes_written = 0
        self._n_errors = 0

    # ------------------------------------------------------------------ #
    # contract
    # ------------------------------------------------------------------ #

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Complete committed value at ``key``; StorageMissingError if absent."""

    @abstractmethod
    def put_atomic(self, key: str, data: bytes) -> None:
        """All-or-nothing durable publication of ``data`` at ``key``."""

    @abstractmethod
    def put_exclusive(self, key: str, data: bytes) -> bool:
        """Atomic create-if-absent; True iff this call created the key."""

    @abstractmethod
    def replace(self, key: str, data: bytes) -> None:
        """Atomic unconditional overwrite, visible-after-return."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key`` if present (idempotent); True iff removed."""

    @abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """Sorted committed keys starting with ``prefix``."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """True when ``key`` holds a committed value."""

    @abstractmethod
    def stat(self, key: str) -> StorageStat:
        """Size/mtime of ``key``; StorageMissingError if absent."""

    @abstractmethod
    def rename(self, key: str, new_key: str) -> None:
        """Atomically move ``key`` to ``new_key`` (replacing it)."""

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def _record(
        self, op: str, read: int = 0, wrote: int = 0, error: bool = False
    ) -> None:
        with self._stats_lock:
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
            self._bytes_read += read
            self._bytes_written += wrote
            if error:
                self._n_errors += 1

    def stats(self) -> Dict[str, object]:
        """Operation counts and byte totals since construction."""
        with self._stats_lock:
            return {
                "driver": self.name,
                "ops": dict(sorted(self._op_counts.items())),
                "bytes_read": self._bytes_read,
                "bytes_written": self._bytes_written,
                "n_errors": self._n_errors,
            }


class PosixDriver(StorageDriver):
    """Local-filesystem driver: today's store layout, made durable.

    Writes commit via a temporary file in ``<root>/.tmp/`` followed by
    ``os.replace`` — readers and :meth:`list` never observe
    temporaries. With ``fsync=True`` (the default) every commit fsyncs
    the file contents *and* the destination directory entry, so a host
    crash immediately after :meth:`put_atomic` returns can no longer
    leave a zero-length or missing chunk behind a manifest that saw it
    (the pre-driver ``_write_atomic`` skipped both fsyncs).
    """

    name = "posix"

    def __init__(self, root, fsync: bool = True) -> None:
        super().__init__()
        self._root = Path(root)
        self._tmp_dir = self._root / ".tmp"
        self._fsync = bool(fsync)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def spec(self) -> str:
        """URL spec reproducing this driver via :func:`build_driver`."""
        return f"posix://{self._root.resolve()}"

    def _path(self, key: str) -> Path:
        return self._root / PurePosixPath(_check_key(key))

    def _fsync_dir(self, directory: Path) -> None:
        if not self._fsync:
            return
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _write_tmp(self, key: str, data: bytes) -> Path:
        """Write ``data`` to a unique tmp file, fsynced when configured."""
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_dir / (
            f"{PurePosixPath(key).name}.{os.getpid()}."
            f"{threading.get_ident()}.tmp"
        )
        fd = os.open(tmp, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
        try:
            os.write(fd, data)
            if self._fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        return tmp

    def _commit(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._write_tmp(key, data)
        os.replace(tmp, path)
        self._fsync_dir(path.parent)

    def get(self, key: str) -> bytes:
        try:
            data = self._path(key).read_bytes()
        except FileNotFoundError:
            self._record("get", error=True)
            raise StorageMissingError(f"no value at {key!r}") from None
        except OSError as error:
            self._record("get", error=True)
            raise TransientStorageError(f"get({key!r}): {error}") from error
        self._record("get", read=len(data))
        return data

    def put_atomic(self, key: str, data: bytes) -> None:
        try:
            self._commit(key, data)
        except OSError as error:
            self._record("put_atomic", error=True)
            raise TransientStorageError(
                f"put_atomic({key!r}): {error}"
            ) from error
        self._record("put_atomic", wrote=len(data))

    def put_exclusive(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            self._record("put_exclusive")
            return False
        except OSError as error:
            self._record("put_exclusive", error=True)
            raise TransientStorageError(
                f"put_exclusive({key!r}): {error}"
            ) from error
        try:
            try:
                os.write(fd, data)
                if self._fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
            self._fsync_dir(path.parent)
        except OSError as error:
            self._record("put_exclusive", error=True)
            raise TransientStorageError(
                f"put_exclusive({key!r}): {error}"
            ) from error
        self._record("put_exclusive", wrote=len(data))
        return True

    def replace(self, key: str, data: bytes) -> None:
        try:
            self._commit(key, data)
        except OSError as error:
            self._record("replace", error=True)
            raise TransientStorageError(
                f"replace({key!r}): {error}"
            ) from error
        self._record("replace", wrote=len(data))

    def delete(self, key: str) -> bool:
        self._record("delete")
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            return False
        except OSError as error:
            raise TransientStorageError(
                f"delete({key!r}): {error}"
            ) from error
        return True

    def list(self, prefix: str = "") -> List[str]:
        self._record("list")
        keys = []
        try:
            for dirpath, dirnames, filenames in os.walk(self._root):
                rel = Path(dirpath).relative_to(self._root)
                if rel.parts[:1] == (".tmp",):
                    dirnames[:] = []
                    continue
                for name in filenames:
                    key = str(PurePosixPath(*(rel.parts + (name,))))
                    if key.startswith(prefix):
                        keys.append(key)
        except OSError as error:
            raise TransientStorageError(
                f"list({prefix!r}): {error}"
            ) from error
        return sorted(keys)

    def exists(self, key: str) -> bool:
        self._record("exists")
        return self._path(key).is_file()

    def stat(self, key: str) -> StorageStat:
        self._record("stat")
        try:
            info = os.stat(self._path(key))
        except FileNotFoundError:
            raise StorageMissingError(f"no value at {key!r}") from None
        except OSError as error:
            raise TransientStorageError(
                f"stat({key!r}): {error}"
            ) from error
        return StorageStat(size=info.st_size, mtime=info.st_mtime)

    def rename(self, key: str, new_key: str) -> None:
        self._record("rename")
        src, dst = self._path(key), self._path(new_key)
        try:
            dst.parent.mkdir(parents=True, exist_ok=True)
            os.replace(src, dst)
            self._fsync_dir(dst.parent)
        except FileNotFoundError:
            raise StorageMissingError(f"no value at {key!r}") from None
        except OSError as error:
            raise TransientStorageError(
                f"rename({key!r} -> {new_key!r}): {error}"
            ) from error


class MemoryDriver(StorageDriver):
    """In-process driver: a dict under one lock.

    Hermetic and fast — the campaign test suite runs unchanged on it —
    and the template for remote drivers: every contract guarantee is
    trivially explicit here (exclusivity and replace-then-read-back are
    one lock acquisition), so a new backend can be diffed against it
    operation by operation.
    """

    name = "memory"
    spec = "memory://"

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()
        self._data: Dict[str, bytes] = {}
        self._mtimes: Dict[str, float] = {}

    def get(self, key: str) -> bytes:
        _check_key(key)
        with self._lock:
            if key not in self._data:
                self._record("get", error=True)
                raise StorageMissingError(f"no value at {key!r}")
            data = self._data[key]
        self._record("get", read=len(data))
        return data

    def put_atomic(self, key: str, data: bytes) -> None:
        _check_key(key)
        with self._lock:
            self._data[key] = bytes(data)
            self._mtimes[key] = time.time()
        self._record("put_atomic", wrote=len(data))

    def put_exclusive(self, key: str, data: bytes) -> bool:
        _check_key(key)
        with self._lock:
            if key in self._data:
                created = False
            else:
                self._data[key] = bytes(data)
                self._mtimes[key] = time.time()
                created = True
        self._record("put_exclusive", wrote=len(data) if created else 0)
        return created

    def replace(self, key: str, data: bytes) -> None:
        self.put_atomic(key, data)

    def delete(self, key: str) -> bool:
        _check_key(key)
        self._record("delete")
        with self._lock:
            self._mtimes.pop(key, None)
            return self._data.pop(key, None) is not None

    def list(self, prefix: str = "") -> List[str]:
        self._record("list")
        with self._lock:
            return sorted(k for k in self._data if k.startswith(prefix))

    def exists(self, key: str) -> bool:
        _check_key(key)
        self._record("exists")
        with self._lock:
            return key in self._data

    def stat(self, key: str) -> StorageStat:
        _check_key(key)
        self._record("stat")
        with self._lock:
            if key not in self._data:
                raise StorageMissingError(f"no value at {key!r}")
            return StorageStat(
                size=len(self._data[key]), mtime=self._mtimes[key]
            )

    def rename(self, key: str, new_key: str) -> None:
        _check_key(key)
        _check_key(new_key)
        self._record("rename")
        with self._lock:
            if key not in self._data:
                raise StorageMissingError(f"no value at {key!r}")
            self._data[new_key] = self._data.pop(key)
            self._mtimes[new_key] = self._mtimes.pop(key)


class PrefixDriver(StorageDriver):
    """Namespace view of another driver under a fixed key prefix.

    Used to hand subsystems (the lease protocol) a scoped slice of the
    store's driver without threading path strings around.
    """

    def __init__(self, inner: StorageDriver, prefix: str) -> None:
        super().__init__()
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        self._inner = inner
        self._prefix = prefix
        self.name = f"{inner.name}:{prefix or '/'}"

    def _k(self, key: str) -> str:
        return self._prefix + _check_key(key)

    def get(self, key: str) -> bytes:
        return self._inner.get(self._k(key))

    def put_atomic(self, key: str, data: bytes) -> None:
        self._inner.put_atomic(self._k(key), data)

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._inner.put_exclusive(self._k(key), data)

    def replace(self, key: str, data: bytes) -> None:
        self._inner.replace(self._k(key), data)

    def delete(self, key: str) -> bool:
        return self._inner.delete(self._k(key))

    def list(self, prefix: str = "") -> List[str]:
        n = len(self._prefix)
        return [k[n:] for k in self._inner.list(self._prefix + prefix)]

    def exists(self, key: str) -> bool:
        return self._inner.exists(self._k(key))

    def stat(self, key: str) -> StorageStat:
        return self._inner.stat(self._k(key))

    def rename(self, key: str, new_key: str) -> None:
        self._inner.rename(self._k(key), self._k(new_key))

    def stats(self) -> Dict[str, object]:
        return self._inner.stats()


class FaultyDriver(StorageDriver):
    """Wrapper injecting storage faults from a seeded declarative plan.

    The storage-layer extension of the ``faults.py`` harness: rules
    select driver calls by operation and key prefix, then fire on
    explicit call indices or with seeded per-call probability
    (:class:`~repro.campaign.faults.StorageFaultPlan`). Kinds:

    * ``error`` / ``persistent`` — raise Transient-/
      PersistentStorageError *before* the operation touches the
      backend (the old state is intact);
    * ``hang`` — sleep ``hang_s``, then perform the operation (a slow
      disk / network stall; trips per-operation timeouts);
    * ``torn`` — write operations only: land ``data[:offset]``
      (default: half) through the raw backend, then raise
      TransientStorageError — or return successfully when ``silent``,
      simulating an *undetected* torn write on a non-atomic backend
      that the store's integrity verification must catch later.

    Call counting is per rule within this driver instance (via the
    shared :class:`~repro.campaign.faults.StorageFaultSelector`), so
    injection is reproducible for a given operation sequence without
    shared mutable state. Network-class rules in the plan are for the
    object-store *service* to consume — this driver skips them without
    advancing their counters.
    """

    def __init__(
        self,
        inner: StorageDriver,
        plan: Optional[StorageFaultPlan] = None,
    ) -> None:
        super().__init__()
        if plan is None:
            plan = StorageFaultPlan.from_env() or StorageFaultPlan()
        self._inner = inner
        self._plan = plan
        self._selector = StorageFaultSelector(plan, kinds=STORAGE_KINDS)
        self.name = f"faulty({inner.name})"

    @property
    def inner(self) -> StorageDriver:
        return self._inner

    @property
    def n_injected(self) -> int:
        return self._selector.n_injected

    def _apply(self, op: str, key: str, fn, data: Optional[bytes] = None):
        rule = self._selector.consult(op, key)
        if rule is None:
            return fn()
        if rule.kind == "hang":
            time.sleep(rule.hang_s)
            return fn()
        if rule.kind == "persistent":
            raise PersistentStorageError(
                f"injected persistent storage fault at {op}({key!r})"
            )
        if rule.kind == "torn" and op in STORAGE_WRITE_OPS:
            assert data is not None
            offset = (
                max(0, len(data) // 2)
                if rule.offset is None
                else min(int(rule.offset), len(data))
            )
            # The partial payload lands through the *raw* backend: this
            # models a non-atomic write (or a crash mid-copy) that the
            # atomicity contract forbids — exactly what the store's
            # integrity verification exists to catch.
            self._inner.replace(key, data[:offset])
            if rule.silent:
                return None
            raise TransientStorageError(
                f"injected torn write at {op}({key!r}) "
                f"(kept {offset} of {len(data)} bytes)"
            )
        raise TransientStorageError(
            f"injected transient storage fault at {op}({key!r})"
        )

    def get(self, key: str) -> bytes:
        return self._apply("get", key, lambda: self._inner.get(key))

    def put_atomic(self, key: str, data: bytes) -> None:
        return self._apply(
            "put_atomic",
            key,
            lambda: self._inner.put_atomic(key, data),
            data=data,
        )

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._apply(
            "put_exclusive",
            key,
            lambda: self._inner.put_exclusive(key, data),
            data=data,
        )

    def replace(self, key: str, data: bytes) -> None:
        return self._apply(
            "replace",
            key,
            lambda: self._inner.replace(key, data),
            data=data,
        )

    def delete(self, key: str) -> bool:
        return self._apply("delete", key, lambda: self._inner.delete(key))

    def list(self, prefix: str = "") -> List[str]:
        return self._apply(
            "list", prefix, lambda: self._inner.list(prefix)
        )

    def exists(self, key: str) -> bool:
        return self._apply("exists", key, lambda: self._inner.exists(key))

    def stat(self, key: str) -> StorageStat:
        return self._apply("stat", key, lambda: self._inner.stat(key))

    def rename(self, key: str, new_key: str) -> None:
        return self._apply(
            "rename", key, lambda: self._inner.rename(key, new_key)
        )

    def stats(self) -> Dict[str, object]:
        # Wrapper stats nest rather than merge: a stacked
        # retrying(faulty(posix)) reports every layer without key
        # collisions (see also RetryingDriver.stats).
        return {
            "driver": self.name,
            "n_injected_faults": self.n_injected,
            "inner": self._inner.stats(),
        }


@dataclass(frozen=True)
class StorageRetryPolicy:
    """Bounded retries for transient driver errors.

    The storage-layer sibling of the runner's ``RetryPolicy``: the
    backoff for a given ``(op, key, attempt)`` is a pure function of
    the policy seed (seeded-jitter exponential), so retry schedules are
    reproducible across runs and hosts. ``op_timeout_s`` additionally
    bounds each underlying operation's wall clock — a hung backend
    surfaces as a transient error and is retried instead of wedging
    the campaign.

    >>> policy = StorageRetryPolicy(max_attempts=4, base_delay_s=0.01)
    >>> policy.backoff_s("get", "points/a.json", 1) == policy.backoff_s(
    ...     "get", "points/a.json", 1)
    True
    >>> policy.backoff_s("get", "points/a.json", 3) >= policy.backoff_s(
    ...     "get", "points/a.json", 1)
    True
    """

    max_attempts: int = 4
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    op_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                "need 0 <= base_delay_s <= max_delay_s"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError("jitter must be within [0, 1]")
        if self.op_timeout_s is not None and self.op_timeout_s <= 0:
            raise ConfigurationError("op_timeout_s must be positive")

    def backoff_s(self, op: str, key: str, attempt: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{op}:{key}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        delay = self.base_delay_s * 2.0 ** (attempt - 1)
        return min(self.max_delay_s, delay) * (1.0 + self.jitter * unit)


def _bounded_call(fn, timeout_s: Optional[float]):
    """Run ``fn()`` under a wall-clock bound (None = unbounded).

    On timeout the worker thread is abandoned and the operation is
    reported transient (the caller retries); like the runner's
    per-point timeout, an eventually-completing abandoned call is
    harmless because all driver writes are atomic and idempotent.
    """
    if not timeout_s:
        return fn()
    box: Dict[str, object] = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise TransientStorageError(
            f"storage operation exceeded {timeout_s:g}s"
        )
    if "error" in box:
        raise box["error"]
    return box.get("result")


class RetryingDriver(StorageDriver):
    """Per-operation bounded retries + timeouts over any driver.

    Transient errors retry up to ``policy.max_attempts`` with
    seeded-jitter exponential backoff; exhaustion escalates to
    :class:`~repro.errors.PersistentStorageError` (which the campaign
    runner treats as "degrade to read-only"). Missing keys and
    already-persistent errors pass straight through.
    """

    def __init__(
        self,
        inner: StorageDriver,
        policy: Optional[StorageRetryPolicy] = None,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._policy = policy or StorageRetryPolicy()
        self._retry_lock = threading.Lock()
        self._n_retries = 0
        self.name = f"retrying({inner.name})"

    @property
    def inner(self) -> StorageDriver:
        return self._inner

    @property
    def policy(self) -> StorageRetryPolicy:
        return self._policy

    @property
    def n_retries(self) -> int:
        with self._retry_lock:
            return self._n_retries

    def _run(self, op: str, key: str, fn):
        attempt = 1
        while True:
            try:
                return _bounded_call(fn, self._policy.op_timeout_s)
            except (StorageMissingError, PersistentStorageError):
                raise
            except TransientStorageError as error:
                if attempt >= self._policy.max_attempts:
                    raise PersistentStorageError(
                        f"{op}({key!r}) still failing after "
                        f"{attempt} attempts: {error}"
                    ) from error
                backoff = self._policy.backoff_s(op, key, attempt)
                hint = getattr(error, "retry_after_s", None)
                if hint is not None:
                    # A backend-provided Retry-After hint: retrying
                    # sooner is pointless, but never exceed the
                    # policy's configured ceiling.
                    backoff = max(
                        backoff,
                        min(float(hint), self._policy.max_delay_s),
                    )
                log.debug(
                    "transient storage fault on %s(%r) attempt %d "
                    "(%s); retrying in %.3fs",
                    op,
                    key,
                    attempt,
                    error,
                    backoff,
                )
                with self._retry_lock:
                    self._n_retries += 1
                time.sleep(backoff)
                attempt += 1

    def get(self, key: str) -> bytes:
        return self._run("get", key, lambda: self._inner.get(key))

    def put_atomic(self, key: str, data: bytes) -> None:
        return self._run(
            "put_atomic", key, lambda: self._inner.put_atomic(key, data)
        )

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._run(
            "put_exclusive",
            key,
            lambda: self._inner.put_exclusive(key, data),
        )

    def replace(self, key: str, data: bytes) -> None:
        return self._run(
            "replace", key, lambda: self._inner.replace(key, data)
        )

    def delete(self, key: str) -> bool:
        return self._run("delete", key, lambda: self._inner.delete(key))

    def list(self, prefix: str = "") -> List[str]:
        return self._run(
            "list", prefix, lambda: self._inner.list(prefix)
        )

    def exists(self, key: str) -> bool:
        return self._run(
            "exists", key, lambda: self._inner.exists(key)
        )

    def stat(self, key: str) -> StorageStat:
        return self._run("stat", key, lambda: self._inner.stat(key))

    def rename(self, key: str, new_key: str) -> None:
        return self._run(
            "rename", key, lambda: self._inner.rename(key, new_key)
        )

    def stats(self) -> Dict[str, object]:
        # Nested, not merged: wrapper layers each contribute their own
        # counters under "inner" so stacking never collides keys.
        return {
            "driver": self.name,
            "n_retries": self.n_retries,
            "inner": self._inner.stats(),
        }


#: CLI driver-name registry (``--storage-driver``). URL-style specs
#: (``posix:///path``, ``memory://``, ``http://host:port/bucket``) are
#: additionally accepted by :func:`build_driver`.
DRIVER_NAMES = ("posix", "memory", "faulty")

#: URL schemes :func:`parse_driver_spec` understands.
DRIVER_SCHEMES = ("posix", "memory", "http", "https")


def parse_driver_spec(spec: str) -> Dict[str, object]:
    """Parse a ``--storage-driver`` value into its constituent parts.

    Accepts the legacy bare names (``posix``/``memory``/``faulty``) and
    URL-style specs:

    * ``posix:///abs/path`` — posix driver rooted at ``/abs/path``
      (overrides the store path for driver state);
    * ``memory://`` — hermetic in-process driver;
    * ``http://host:port/bucket`` — remote object-store driver
      talking to ``python -m repro.campaign serve``.

    Returns a dict with ``scheme`` plus scheme-specific fields
    (``root`` for posix, ``url`` for http). Round-trips: feeding a
    driver's ``spec`` attribute back through here reproduces the same
    configuration.

    >>> parse_driver_spec("memory://")["scheme"]
    'memory'
    >>> parse_driver_spec("posix:///tmp/store")["root"]
    '/tmp/store'
    >>> parse_driver_spec("http://127.0.0.1:8123/campaign")["url"]
    'http://127.0.0.1:8123/campaign'
    >>> parse_driver_spec("posix")["scheme"]
    'posix'
    """
    if "://" not in spec:
        if spec not in DRIVER_NAMES:
            raise ConfigurationError(
                f"unknown storage driver {spec!r}; pick one of "
                f"{DRIVER_NAMES} or a URL spec "
                f"({'|'.join(DRIVER_SCHEMES)}://...)"
            )
        return {"scheme": spec}
    parts = urlsplit(spec)
    scheme = parts.scheme.lower()
    if scheme not in DRIVER_SCHEMES:
        raise ConfigurationError(
            f"unknown storage driver scheme {scheme!r} in {spec!r}; "
            f"supported schemes: {DRIVER_SCHEMES}"
        )
    if scheme == "memory":
        if parts.netloc or parts.path.strip("/"):
            raise ConfigurationError(
                f"memory:// takes no host or path, got {spec!r}"
            )
        return {"scheme": "memory"}
    if scheme == "posix":
        if parts.netloc:
            raise ConfigurationError(
                f"posix:// is local-only (use posix:///path), got {spec!r}"
            )
        if not parts.path:
            raise ConfigurationError(f"posix:// needs a path, got {spec!r}")
        return {"scheme": "posix", "root": parts.path}
    # http / https: host plus a single-segment bucket path.
    if not parts.netloc:
        raise ConfigurationError(
            f"{scheme}:// needs host[:port]/bucket, got {spec!r}"
        )
    bucket = parts.path.strip("/")
    if not bucket or "/" in bucket:
        raise ConfigurationError(
            f"{scheme}:// needs exactly one bucket path segment, "
            f"got {spec!r}"
        )
    return {
        "scheme": scheme,
        "url": f"{scheme}://{parts.netloc}/{bucket}",
        "netloc": parts.netloc,
        "bucket": bucket,
    }


def build_driver(
    name: str,
    root=None,
    storage_fault_plan: Optional[StorageFaultPlan] = None,
    fsync: bool = True,
) -> StorageDriver:
    """Construct a driver from a ``--storage-driver`` spec.

    ``name`` is a legacy bare name from :data:`DRIVER_NAMES` or a
    URL-style spec (see :func:`parse_driver_spec`). ``"faulty"`` wraps
    posix with the given (or ambient ``REPRO_STORAGE_FAULT_PLAN``)
    fault plan; passing a plan with any other spec also wraps, so
    ``--storage-fault-plan`` alone implies client-side injection.
    ``http(s)://`` specs come wrapped in the circuit breaker
    (:class:`~repro.campaign.objectstore.CircuitBreakerDriver`) so
    persistent network failure degrades instead of wedging. ``root``
    backs posix-rooted specs and may be omitted for rootless ones
    (``memory://``, ``http(s)://``, ``posix:///path``).
    """
    parsed = parse_driver_spec(name)
    scheme = parsed["scheme"]
    base: StorageDriver
    if scheme == "memory":
        base = MemoryDriver()
    elif scheme in ("http", "https"):
        # Imported lazily: objectstore builds on this module.
        from repro.campaign.objectstore import (
            CircuitBreakerDriver,
            HttpDriver,
        )

        base = CircuitBreakerDriver(HttpDriver(parsed["url"]))
    else:
        posix_root = parsed.get("root", root)
        if posix_root is None:
            raise ConfigurationError(
                f"driver spec {name!r} needs a store root "
                f"(a directory, or a posix:///path spec)"
            )
        base = PosixDriver(posix_root, fsync=fsync)
    if scheme == "faulty" or storage_fault_plan is not None:
        base = FaultyDriver(base, storage_fault_plan)
    return base


__all__ = [
    "DRIVER_NAMES",
    "DRIVER_SCHEMES",
    "FaultyDriver",
    "MemoryDriver",
    "PosixDriver",
    "PrefixDriver",
    "RetryingDriver",
    "StorageDriver",
    "StorageRetryPolicy",
    "StorageStat",
    "build_driver",
    "parse_driver_spec",
]
