"""Builtin campaign specs mirroring the paper's figure sweeps.

Each preset derives its deployment/point seeds from the base RNG with
*exactly* the figure driver's draw order (:func:`repro.campaign.spec.
derive_seeds`), so a preset campaign computes bit-identical metrics to
the corresponding direct driver run — and, because points are
content-hashed, figures that share a sweep (Fig. 17 and Fig. 18 run
the same PHY points) share store entries instead of recomputing them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.campaign.spec import CampaignSpec, derive_seeds
from repro.constants import QUERY_BITS_CONFIG1
from repro.errors import ReproError
from repro.utils.rng import RngLike

#: The Fig. 17/18 sweep grid — the single source: the figure drivers
#: import it from here.
DEFAULT_DEVICE_COUNTS = (1, 16, 32, 64, 96, 128, 160, 192, 224, 256)

#: Full deployment every preset subsets (the paper's 256-device office).
DEPLOYMENT_DEVICES = 256

#: NetScatterConfig overrides shared by the sweep campaigns *and* the
#: fig17/fig18 drivers (which build ``NetScatterConfig(**SWEEP_CONFIG)``
#: from this same dict): the deployment experiments run every device
#: concurrently, so no association shifts are reserved.
SWEEP_CONFIG = {"n_association_shifts": 0}


def _paper_deployment_descriptor(seed: int) -> Dict[str, object]:
    return {
        "kind": "paper",
        "n_devices": DEPLOYMENT_DEVICES,
        "seed": int(seed),
    }


def fig17_campaign(
    rng: RngLike = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    n_rounds: int = 3,
    engine: str = "auto",
    noise_mode: str = "payload",
    float32_min_devices: Optional[int] = None,
    name: str = "fig17",
) -> CampaignSpec:
    """The Fig. 17 PHY-rate sweep as a campaign.

    With the same base seed this reproduces ``fig17_phy_rate.run``'s
    NetScatter metrics bit for bit (the driver itself routes through
    this spec when given a default deployment).
    """
    deployment_seed, point_seeds = derive_seeds(rng, device_counts)
    return CampaignSpec(
        name=name,
        description=(
            "Network PHY rate vs concurrent devices "
            "(Fig. 17 NetScatter sweep)"
        ),
        deployment=_paper_deployment_descriptor(deployment_seed),
        config=SWEEP_CONFIG,
        device_counts=tuple(device_counts),
        point_seeds=point_seeds,
        engines=(engine,),
        noise_modes=(noise_mode,),
        fading=(False,),
        n_rounds=n_rounds,
        query_bits=QUERY_BITS_CONFIG1,
        float32_min_devices=float32_min_devices,
    )


def fig18_campaign(
    rng: RngLike = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    n_rounds: int = 3,
    engine: str = "auto",
    noise_mode: str = "payload",
    float32_min_devices: Optional[int] = None,
) -> CampaignSpec:
    """The Fig. 18 link-layer sweep as a campaign.

    The PHY decode is query-length agnostic and Fig. 18 accounts both
    query configs from the same per-round goodput, so its points are
    *content-identical* to Fig. 17's under the same base seed — a store
    populated by either figure serves the other without recomputing.
    """
    spec = fig17_campaign(
        rng=rng,
        device_counts=device_counts,
        n_rounds=n_rounds,
        engine=engine,
        noise_mode=noise_mode,
        float32_min_devices=float32_min_devices,
        name="fig18",
    )
    return CampaignSpec.from_dict(
        {
            **spec.to_dict(),
            "description": (
                "Link-layer rate vs concurrent devices "
                "(Fig. 18; shares its PHY points with fig17)"
            ),
        }
    )


def noise_grid_campaign(
    rng: RngLike = None,
    device_counts: Sequence[int] = (16, 64, 256),
    n_rounds: int = 3,
    engine: str = "auto",
) -> CampaignSpec:
    """Scenario-diversity grid: noise streams × fading × device count.

    Four scenarios per count — both engine-noise streams (the located
    ``±1``-bin payload stream and the historical full-bin stream) with
    and without AR(1) shadow fading — paired on the same per-count
    seeds, so the axis effects are directly comparable row to row.
    """
    deployment_seed, point_seeds = derive_seeds(rng, device_counts)
    return CampaignSpec(
        name="noise-grid",
        description=(
            "noise_mode x fading scenario grid over the paper "
            "deployment (paired per-count seeds)"
        ),
        deployment=_paper_deployment_descriptor(deployment_seed),
        config=SWEEP_CONFIG,
        device_counts=tuple(device_counts),
        point_seeds=point_seeds,
        engines=(engine,),
        noise_modes=("payload", "full"),
        fading=(False, True),
        n_rounds=n_rounds,
        query_bits=QUERY_BITS_CONFIG1,
    )


#: Preset registry for the CLI (name → builder).
PRESETS: Dict[str, Callable[..., CampaignSpec]] = {
    "fig17": fig17_campaign,
    "fig18": fig18_campaign,
    "noise-grid": noise_grid_campaign,
}


def build_preset(name: str, **kwargs) -> CampaignSpec:
    """Build a preset campaign by name (CLI entry)."""
    if name not in PRESETS:
        raise ReproError(
            f"unknown campaign preset {name!r}; "
            f"choose from {', '.join(sorted(PRESETS))}"
        )
    return PRESETS[name](**kwargs)


__all__ = [
    "DEFAULT_DEVICE_COUNTS",
    "DEPLOYMENT_DEVICES",
    "SWEEP_CONFIG",
    "PRESETS",
    "build_preset",
    "fig17_campaign",
    "fig18_campaign",
    "noise_grid_campaign",
]
