"""Client for the campaign service node (:mod:`repro.campaign.service`).

:class:`CampaignServiceClient` drives the NDJSON submit/status/healthz
protocol end-to-end and degrades through the same machinery as the
storage layer: wire-level failures (refused connections, 5xx/429
responses, torn streams) surface as
:class:`~repro.errors.TransientStorageError` and are retried with the
:class:`~repro.campaign.storage.StorageRetryPolicy` seeded-jitter
backoff (``Retry-After`` hints floor the delay), a
:class:`~repro.campaign.objectstore.CircuitBreaker` fails fast once
the endpoint looks dead (:class:`~repro.errors.CircuitOpenError`), and
retry exhaustion raises
:class:`~repro.errors.PersistentStorageError` — so fault plans from
:mod:`repro.campaign.faults` apply to the service layer unchanged.

A mid-stream disconnect is safe to retry: the service deduplicates by
campaign id, so a re-submit either joins the still-running execution
or replays a finished one from the content-hash cache — each attempt's
subscription starts at event zero and receives the full stream, never
a partial suffix.

>>> from repro.campaign.client import parse_service_url
>>> parse_service_url("http://127.0.0.1:8124")
('http', '127.0.0.1:8124')
>>> parse_service_url("https://campaigns.example.org/")
('https', 'campaigns.example.org')
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException, HTTPSConnection
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.campaign.objectstore import CircuitBreaker
from repro.campaign.service import (
    CAMPAIGN_ID_HEADER,
    CREATED_HEADER,
    _canonical,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.storage import StorageRetryPolicy
from repro.errors import (
    CampaignExecutionError,
    CampaignServiceError,
    ConfigurationError,
    PersistentStorageError,
    TransientStorageError,
)
from repro.protocol.network import NetworkMetrics


def parse_service_url(url: str) -> Tuple[str, str]:
    """Validated ``(scheme, netloc)`` of a service base URL."""
    parsed = urlsplit(url)
    if parsed.scheme not in ("http", "https"):
        raise ConfigurationError(
            f"campaign service URL must be http(s)://host:port, "
            f"got {url!r}"
        )
    if not parsed.netloc:
        raise ConfigurationError(
            f"campaign service URL has no host: {url!r}"
        )
    if parsed.path.strip("/"):
        raise ConfigurationError(
            f"campaign service URL takes no path "
            f"(the service is not bucketed), got {url!r}"
        )
    return parsed.scheme, parsed.netloc


@dataclass
class CampaignServiceRun:
    """One successful ``submit`` round trip.

    ``events`` and ``raw_lines`` are aligned index-for-index — the
    parsed event and the exact bytes of its NDJSON line (the
    byte-identity unit of the service's determinism contract).
    """

    campaign_id: str
    created: bool
    events: List[Dict[str, object]] = field(default_factory=list)
    raw_lines: List[bytes] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    attempts: int = 1

    @property
    def point_events(self) -> List[Dict[str, object]]:
        return [e for e in self.events if e.get("event") == "point"]

    @property
    def point_lines(self) -> List[bytes]:
        """Raw bytes of the ``point`` lines, in spec order — compare
        across clients/attempts for byte-identical result streams."""
        return [
            self.raw_lines[i]
            for i, e in enumerate(self.events)
            if e.get("event") == "point"
        ]

    @property
    def metrics(self) -> List[NetworkMetrics]:
        return [
            NetworkMetrics(**e["metrics"]) for e in self.point_events
        ]

    @property
    def n_computed(self) -> int:
        return int(self.summary.get("points_computed", 0))

    @property
    def n_cached(self) -> int:
        return int(self.summary.get("points_cached", 0))

    @property
    def n_failed(self) -> int:
        return int(self.summary.get("points_failed", 0))


class CampaignServiceClient:
    """Retrying, circuit-broken client for a :class:`CampaignService`.

    ``retry`` is a :class:`StorageRetryPolicy` (same deterministic
    backoff the storage drivers use); ``timeout_s`` bounds each socket
    read — it must exceed the longest single-point computation, since
    the stream goes quiet while a point runs. ``breaker`` accepts a
    pre-built :class:`CircuitBreaker` to share failure state across
    clients of one endpoint.
    """

    def __init__(
        self,
        url: str,
        *,
        retry: Optional[StorageRetryPolicy] = None,
        timeout_s: float = 60.0,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._scheme, self._netloc = parse_service_url(url)
        self._url = f"{self._scheme}://{self._netloc}"
        self._retry = retry if retry is not None else StorageRetryPolicy()
        self._timeout_s = float(timeout_s)
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                self._url, failure_threshold, reset_after_s
            )
        )
        self._n_retries = 0

    @property
    def url(self) -> str:
        return self._url

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def n_retries(self) -> int:
        return self._n_retries

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _connect(self):
        cls = (
            HTTPSConnection if self._scheme == "https" else HTTPConnection
        )
        return cls(self._netloc, timeout=self._timeout_s)

    def _call(self, op: str, key: str, fn) -> Tuple[object, int]:
        """``fn()`` under the breaker with bounded retries; returns
        ``(result, attempts)``. Service-level answers (4xx rejections,
        failed campaigns) propagate without counting against the
        endpoint's health."""
        answers = (CampaignServiceError, CampaignExecutionError)
        attempt = 1
        while True:
            try:
                result = self._breaker.guard(
                    op, key, fn, answers=answers
                )
                return result, attempt
            except TransientStorageError as error:
                if attempt >= self._retry.max_attempts:
                    raise PersistentStorageError(
                        f"{op} against {self._url} failed after "
                        f"{attempt} attempts: {error}"
                    ) from error
                backoff = self._retry.backoff_s(op, key, attempt)
                if error.retry_after_s is not None:
                    backoff = max(
                        backoff,
                        min(
                            float(error.retry_after_s),
                            self._retry.max_delay_s,
                        ),
                    )
                time.sleep(backoff)
                self._n_retries += 1
                attempt += 1

    @staticmethod
    def _check_response(op: str, response) -> None:
        """Map a non-200 status exactly like the storage driver: 5xx
        and 429 are transient (with ``Retry-After`` honoured), other
        errors are definitive service answers."""
        if response.status == 200:
            return
        try:
            body = response.read(512)
        except (HTTPException, OSError, ValueError):
            body = b""
        detail = body.decode("utf-8", "replace").strip()
        if response.status >= 500 or response.status == 429:
            header = response.getheader("Retry-After")
            retry_after = None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise TransientStorageError(
                f"{op}: HTTP {response.status} from service: {detail}",
                retry_after_s=retry_after,
            )
        raise CampaignServiceError(
            f"{op}: HTTP {response.status} from service: {detail}"
        )

    def _get_json(self, path: str, op: str) -> Dict[str, object]:
        connection = self._connect()
        try:
            try:
                connection.request("GET", path)
                response = connection.getresponse()
            except (HTTPException, OSError, ValueError) as error:
                raise TransientStorageError(
                    f"{op} {self._url}{path} failed: "
                    f"{type(error).__name__}: {error}"
                ) from error
            self._check_response(op, response)
            try:
                body = response.read()
                payload = json.loads(body.decode("utf-8"))
            except (HTTPException, OSError, ValueError) as error:
                raise TransientStorageError(
                    f"{op}: response torn mid-body: "
                    f"{type(error).__name__}: {error}"
                ) from error
            if not isinstance(payload, dict):
                raise TransientStorageError(
                    f"{op}: non-object JSON response"
                )
            return payload
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def healthz(self) -> Dict[str, object]:
        result, _ = self._call(
            "healthz", "", lambda: self._get_json("/healthz", "healthz")
        )
        return result

    def status(self, campaign_id: str) -> Dict[str, object]:
        result, _ = self._call(
            "status",
            campaign_id,
            lambda: self._get_json(
                f"/campaigns/{campaign_id}/status", "status"
            ),
        )
        return result

    def list_campaigns(self) -> List[Dict[str, object]]:
        result, _ = self._call(
            "list_campaigns",
            "",
            lambda: self._get_json("/campaigns", "list_campaigns"),
        )
        return list(result.get("campaigns", []))

    def submit(
        self, spec, *, raise_on_failed: bool = True
    ) -> CampaignServiceRun:
        """Submit a campaign and stream it to completion.

        ``spec`` is a :class:`CampaignSpec` or its dict form. Transient
        transport failures re-submit (dedup/cache make that safe — see
        the module docstring). A server-side *execution* failure
        (summary status ``failed``) raises
        :class:`~repro.errors.CampaignExecutionError` when
        ``raise_on_failed`` (the endpoint answered; the breaker does
        not trip). A ``partial`` summary returns normally — inspect
        :attr:`CampaignServiceRun.n_failed`.
        """
        spec_dict = (
            spec.to_dict()
            if isinstance(spec, CampaignSpec)
            else dict(spec)
        )
        body = _canonical({"spec": spec_dict})
        run, attempts = self._call(
            "submit", "", lambda: self._submit_once(body)
        )
        run.attempts = attempts
        if raise_on_failed and run.summary.get("status") == "failed":
            raise CampaignExecutionError(
                f"campaign {run.campaign_id[:12]} failed server-side: "
                f"{run.summary.get('error', '?')}"
            )
        return run

    def _submit_once(self, body: bytes) -> CampaignServiceRun:
        connection = self._connect()
        try:
            try:
                connection.request(
                    "POST",
                    "/campaigns",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
            except (HTTPException, OSError, ValueError) as error:
                raise TransientStorageError(
                    f"submit to {self._url} failed: "
                    f"{type(error).__name__}: {error}"
                ) from error
            self._check_response("submit", response)
            run = CampaignServiceRun(
                campaign_id=response.getheader(CAMPAIGN_ID_HEADER, ""),
                created=response.getheader(CREATED_HEADER) == "1",
            )
            while True:
                try:
                    raw = response.readline()
                except (HTTPException, OSError, ValueError) as error:
                    raise TransientStorageError(
                        f"submit stream broke mid-read: "
                        f"{type(error).__name__}: {error}"
                    ) from error
                if not raw:
                    raise TransientStorageError(
                        "submit stream ended before the done event"
                    )
                try:
                    event = json.loads(raw.decode("utf-8"))
                except ValueError as error:
                    raise TransientStorageError(
                        f"submit stream line torn: {error}"
                    ) from error
                if event.get("event") == "error":
                    # Dropped subscriber — re-subscribe via retry.
                    raise TransientStorageError(
                        f"service dropped this subscriber: "
                        f"{event.get('error', '?')}"
                    )
                run.events.append(event)
                run.raw_lines.append(raw)
                if event.get("event") == "done":
                    run.summary = event
                    return run
        finally:
            connection.close()


__all__ = [
    "CampaignServiceClient",
    "CampaignServiceRun",
    "parse_service_url",
]
