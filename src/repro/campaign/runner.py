"""Sharded, resumable, fault-tolerant campaign execution.

The runner walks a :class:`~repro.campaign.spec.CampaignSpec`, skips
every point whose content hash is already present in the store, and
fans the remaining points out over the same process-pool plumbing the
network sweeps use (:func:`repro.protocol.network.resolve_pool_workers`
— serial on 1-CPU hosts, no redundant pool). Each point is
checkpointed to the store the moment it completes, so a killed run
loses at most the points in flight; re-running the same spec loads the
completed points bit-for-bit and computes only the remainder (pinned by
``tests/test_campaign.py``).

Fault tolerance (pinned by ``tests/test_campaign_faults.py``):

* **Leases** — with a store, pending points are claimed through the
  lease protocol (:mod:`repro.campaign.leases`), so N concurrent
  runners on one store partition the work without duplicating
  computations; a killed runner's leases expire and its points are
  reclaimed, and the final manifest is identical to a single-shot run.
* **Retries** — a failed attempt is retried with seeded-jitter
  exponential backoff up to :attr:`RetryPolicy.max_attempts`; every
  failed attempt is persisted as a failure record next to the chunks
  so ``status`` can tell failed from pending.
* **Timeouts** — ``point_timeout_s`` bounds each attempt; a hung
  worker (pool or serial) is abandoned and the attempt retried.
* **Degradation** — a broken process pool (killed worker) downgrades
  the remaining points to serial execution instead of aborting the
  campaign.
* **Fault injection** — a :class:`~repro.campaign.faults.FaultPlan`
  (or ``REPRO_FAULT_PLAN``) deterministically injects crashes, hangs,
  kills, and torn writes so every path above runs in CI.
* **Storage faults** — all store/lease I/O flows through a
  :class:`~repro.campaign.storage.StorageDriver` with bounded retries
  and seeded-jitter backoff; when writes fail *persistently* the
  runner degrades to read-only serving under ``allow_partial`` —
  remaining points compute (and are returned) without checkpointing,
  and lease coordination is bypassed so the run still converges —
  instead of wedging or losing the partial results.

Every stored point carries the provenance the engines already stamp on
their results — spectral ``backend``, ``noise_mode``/``noise_version``
— plus the host backend-calibration schema, so a store can be audited
long after the run: which physics produced each number is in the
record, not in the operator's memory.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.faults import FaultPlan
from repro.campaign.leases import (
    DEFAULT_TTL_S,
    HeartbeatThread,
    LeaseManager,
)
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.channel.deployment import Deployment, paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import (
    CampaignExecutionError,
    ConfigurationError,
    PersistentStorageError,
    PointTimeoutError,
)
from repro.protocol.network import (
    NetworkMetrics,
    NetworkSimulator,
    resolve_pool_workers,
)

log = logging.getLogger("repro.campaign.runner")

#: When set, every *completed* point execution appends one
#: ``"<hash> <pid>"`` line here (O_APPEND, atomic for short lines).
#: The fault-tolerance tests use it to prove that concurrent runners
#: never compute the same point twice.
EXEC_LOG_ENV = "REPRO_CAMPAIGN_EXEC_LOG"


def build_deployment(descriptor: Dict[str, object]) -> Deployment:
    """Rebuild the full deployment a point descriptor names."""
    kind = descriptor.get("kind")
    if kind == "paper":
        return paper_deployment(
            n_devices=int(descriptor["n_devices"]),
            rng=int(descriptor["seed"]),
        )
    raise ConfigurationError(f"unknown deployment kind {kind!r}")


def _calibration_schema() -> str:
    """The backend-calibration schema in force (stored as provenance)."""
    from repro.phy import backend_plan

    return backend_plan._SCHEMA


def execute_point(point: CampaignPoint) -> Tuple[Dict, Dict]:
    """Run one campaign point; returns ``(metrics_dict, provenance)``.

    Module-level (and taking only the picklable point) so process pools
    can ship it. The construction mirrors ``_run_sweep_point`` exactly:
    same deployment rebuild, same subset, same seeded generator — the
    campaign tests pin bit-identical metrics against the direct
    ``sweep_device_counts`` path.
    """
    deployment = build_deployment(dict(point.deployment))
    config = NetScatterConfig(**dict(point.config))
    dtype = np.complex64 if point.readout_dtype == "complex64" else None
    simulator = NetworkSimulator(
        deployment.subset(point.n_devices),
        config=config,
        query_bits=point.query_bits,
        rng=np.random.default_rng(point.seed),
        engine=point.engine,
        readout_dtype=dtype,
        noise_mode=point.noise_mode,
    )
    metrics = simulator.run_rounds(point.n_rounds, fading=point.fading)
    provenance = {
        "backend": metrics.backend,
        "noise_mode": metrics.noise_mode,
        "noise_version": metrics.noise_version,
        "calibration_schema": _calibration_schema(),
    }
    return asdict(metrics), provenance


def _log_execution(content_hash: str) -> None:
    """Append a completion line to the exec log, when one is configured."""
    log_path = os.environ.get(EXEC_LOG_ENV)
    if not log_path:
        return
    line = f"{content_hash} {os.getpid()}\n".encode()
    fd = os.open(log_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def _pool_execute(
    point: CampaignPoint,
    attempt: int = 1,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[Dict, Dict, float]:
    """Pool wrapper: inject faults and time the execution in the worker."""
    if fault_plan is not None:
        fault_plan.fire_execute(
            point.to_dict(), point.content_hash(), attempt
        )
    started = time.perf_counter()
    metrics_dict, provenance = execute_point(point)
    elapsed = time.perf_counter() - started
    _log_execution(point.content_hash())
    return metrics_dict, provenance, elapsed


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with seeded-jitter exponential backoff.

    The backoff for a given ``(content_hash, attempt)`` is a pure
    function of the policy seed, so retry schedules are reproducible
    across runs and hosts — no shared state, no wall-clock dependence.

    >>> policy = RetryPolicy(max_attempts=3, base_delay_s=0.1)
    >>> a = policy.backoff_s("deadbeef", 1)
    >>> a == policy.backoff_s("deadbeef", 1)  # deterministic
    True
    >>> policy.backoff_s("deadbeef", 2) >= a  # exponential growth
    True
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                "need 0 <= base_delay_s <= max_delay_s"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError("jitter must be within [0, 1]")

    def backoff_s(self, content_hash: str, attempt: int) -> float:
        """Deterministic delay before retrying ``attempt`` (1-based)."""
        digest = hashlib.sha256(
            f"{self.seed}:{content_hash}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        delay = self.base_delay_s * 2.0 ** (attempt - 1)
        return min(self.max_delay_s, delay) * (1.0 + self.jitter * unit)


class _PointFailed(Exception):
    """Internal: a point exhausted its retry budget (carries history)."""

    def __init__(self, attempts: List[Dict[str, object]]):
        super().__init__(attempts[-1]["message"] if attempts else "failed")
        self.attempts = attempts


def _call_with_timeout(fn, timeout_s: Optional[float]):
    """Run ``fn()`` bounded by ``timeout_s`` (None → unbounded).

    The bounded call runs in a daemon thread; on timeout the thread is
    abandoned (its eventual result discarded — completions are only
    logged/checkpointed from the caller) and
    :class:`~repro.errors.PointTimeoutError` is raised.
    """
    if not timeout_s:
        return fn()
    box: Dict[str, object] = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # re-raised in the caller
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise PointTimeoutError(
            f"point execution exceeded {timeout_s:g}s"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool whose worker hung or died: never wait on it."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - very old signature
        pool.shutdown(wait=False)
    for process in list(getattr(pool, "_processes", {}).values() or []):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best effort
            pass


@dataclass
class CampaignPointResult:
    """One executed (or cache-served) point of a campaign run."""

    point: CampaignPoint
    metrics: NetworkMetrics
    provenance: Dict[str, object]
    cached: bool
    elapsed_s: float
    attempts: int = 1


@dataclass
class CampaignPointFailure:
    """A point that exhausted its retries (present in ``allow_partial``
    runs; otherwise surfaced as :class:`CampaignExecutionError`)."""

    point: CampaignPoint
    content_hash: str
    attempts: List[Dict[str, object]]


@dataclass
class CampaignRun:
    """Outcome of :meth:`CampaignRunner.run`, in spec point order."""

    spec: CampaignSpec
    results: List[CampaignPointResult]
    failures: List[CampaignPointFailure] = field(default_factory=list)
    #: True when persistent storage-write failure forced the run into
    #: read-only serving (late points computed but not checkpointed).
    storage_degraded: bool = False

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_computed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def metrics(self) -> List[NetworkMetrics]:
        return [r.metrics for r in self.results]


class CampaignRunner:
    """Run campaign specs against an optional persistent store.

    Parameters
    ----------
    store:
        A :class:`CampaignStore`, a path to create one at, or ``None``
        for an ephemeral run (every point computed, nothing persisted).
    workers:
        Process-pool request for the *pending* points, resolved through
        :func:`resolve_pool_workers` (``None``/1-CPU hosts → serial).
    retry:
        :class:`RetryPolicy` for failed attempts (default: 3 attempts,
        seeded-jitter exponential backoff).
    point_timeout_s:
        Per-attempt wall-clock bound; a hung attempt is abandoned and
        retried. ``None`` disables the bound.
    use_leases / lease_ttl_s / owner:
        With a store, pending points are claimed through lease files so
        concurrent runners partition the work; ``use_leases=False``
        restores the PR-5 single-runner behaviour.
    fault_plan:
        Deterministic fault injection (default: ``REPRO_FAULT_PLAN``).
    wait_poll_s / wait_timeout_s:
        Poll cadence (and optional overall bound) while waiting for
        points another runner holds; expired leases are reclaimed.
    allow_partial:
        When True, permanently-failed points are reported on
        :attr:`CampaignRun.failures` instead of raising
        :class:`~repro.errors.CampaignExecutionError`.
    on_result:
        Optional progress callback ``(index, result)`` invoked from
        the runner thread the moment each point resolves (cache hit or
        fresh computation) — the in-process streaming hook the
        campaign service node uses to publish incremental results.
        Indices arrive in no particular order under a process pool;
        callers needing spec order must reorder. A raising callback is
        logged and ignored: an observer must never corrupt a run.
    """

    def __init__(
        self,
        store: Optional[CampaignStore] = None,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        point_timeout_s: Optional[float] = None,
        use_leases: bool = True,
        lease_ttl_s: float = DEFAULT_TTL_S,
        owner: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        wait_poll_s: float = 0.1,
        wait_timeout_s: Optional[float] = None,
        allow_partial: bool = False,
        on_result: Optional[
            Callable[[int, "CampaignPointResult"], None]
        ] = None,
    ) -> None:
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store, fault_plan=self._fault_plan)
        self._store = store
        self._workers = workers
        self._retry = retry or RetryPolicy()
        self._point_timeout_s = point_timeout_s
        self._use_leases = bool(use_leases) and store is not None
        self._lease_ttl_s = float(lease_ttl_s)
        self._owner = owner
        self._wait_poll_s = float(wait_poll_s)
        self._wait_timeout_s = wait_timeout_s
        self._allow_partial = bool(allow_partial)
        self._on_result = on_result
        self._storage_degraded = False

    @property
    def store(self) -> Optional[CampaignStore]:
        return self._store

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, spec: CampaignSpec) -> CampaignRun:
        """Execute ``spec``: cached points load, pending points run.

        Pending points are claimed (lease protocol), executed in shards
        over the process pool with per-attempt timeouts and retries,
        and checkpointed to the store as each one completes; points
        held by concurrent runners are awaited (and reclaimed if their
        lease expires). The full result list is assembled in spec order
        — returned metrics are independent of pool scheduling, lease
        races, and retry history.
        """
        self._storage_degraded = False
        points = list(spec.points())
        hashes = [point.content_hash() for point in points]
        outcome: Dict[int, CampaignPointResult] = {}
        failures: Dict[int, CampaignPointFailure] = {}
        attempts_done: Dict[int, int] = {}

        pending: List[int] = []
        for index, point in enumerate(points):
            cached = (
                self._cached_result(point)
                if self._store_has(point)
                else None
            )
            if cached is not None:
                self._resolve(outcome, index, cached)
            else:
                pending.append(index)

        leases = (
            LeaseManager(
                self._store.lease_backend,
                owner=self._owner,
                ttl_s=self._lease_ttl_s,
            )
            if self._use_leases
            else None
        )
        heartbeat = (
            HeartbeatThread(leases)
            if leases is not None
            else contextlib.nullcontext()
        )
        try:
            with heartbeat:
                pool_workers = resolve_pool_workers(self._workers)
                if pool_workers and len(pending) > 1:
                    pending = self._pool_phase(
                        points,
                        hashes,
                        pending,
                        pool_workers,
                        outcome,
                        attempts_done,
                        leases,
                    )
                self._serial_phase(
                    points,
                    hashes,
                    pending,
                    outcome,
                    failures,
                    attempts_done,
                    leases,
                )
        finally:
            if leases is not None:
                leases.release_all()

        if failures and not self._allow_partial:
            summary = "; ".join(
                f"{f.content_hash[:12]}… after "
                f"{len(f.attempts)} attempts "
                f"({f.attempts[-1]['error']}: {f.attempts[-1]['message']})"
                for f in failures.values()
            )
            raise CampaignExecutionError(
                f"{len(failures)} campaign point(s) failed permanently: "
                f"{summary}"
            )
        results = [
            outcome[index]
            for index in range(len(points))
            if index in outcome
        ]
        return CampaignRun(
            spec=spec,
            results=results,
            failures=[failures[i] for i in sorted(failures)],
            storage_degraded=self._storage_degraded,
        )

    def _resolve(
        self,
        outcome: Dict[int, CampaignPointResult],
        index: int,
        result: CampaignPointResult,
    ) -> None:
        """Record a resolved point and notify the progress observer."""
        outcome[index] = result
        if self._on_result is not None:
            try:
                self._on_result(index, result)
            except Exception:
                log.exception(
                    "on_result progress callback failed for point %d",
                    index,
                )

    def _cached_result(
        self, point: CampaignPoint
    ) -> Optional[CampaignPointResult]:
        """Load a stored point, or ``None`` when persistent storage
        failure degrades the run mid-read (circuit open, retry budget
        spent) — the caller then recomputes the point instead of
        crashing a partial run."""
        try:
            payload = self._store.load(point)
        except PersistentStorageError as error:
            self._degrade(error)
            return None
        return CampaignPointResult(
            point=point,
            metrics=NetworkMetrics(**payload["metrics"]),
            provenance=dict(payload["provenance"]),
            cached=True,
            elapsed_s=0.0,
            attempts=0,
        )

    def _pool_phase(
        self,
        points: List[CampaignPoint],
        hashes: List[str],
        pending: List[int],
        pool_workers: int,
        outcome: Dict[int, CampaignPointResult],
        attempts_done: Dict[int, int],
        leases: Optional[LeaseManager],
    ) -> List[int]:
        """First attempt of every claimable point over the pool.

        Returns the indices still unresolved: points another runner
        holds, plus points whose pool attempt crashed, timed out, or
        was aborted by a broken pool — those retry serially with their
        attempt count carried over. A hung or killed worker tears the
        pool down (never waited on); the campaign degrades to serial
        instead of dying.
        """
        claimable: List[int] = []
        deferred: List[int] = []
        for index in pending:
            if leases is None or leases.acquire(hashes[index]):
                claimable.append(index)
            else:
                deferred.append(index)
        if len(claimable) <= 1:
            return sorted(deferred + claimable)

        broken = False
        pool = ProcessPoolExecutor(max_workers=pool_workers)
        try:
            futures = [
                (
                    index,
                    pool.submit(
                        _pool_execute,
                        points[index],
                        1,
                        self._fault_plan,
                    ),
                )
                for index in claimable
            ]
            for index, future in futures:
                if broken:
                    self._note_attempt_failure(
                        points[index],
                        hashes[index],
                        attempts_done,
                        index,
                        "BrokenProcessPool",
                        "pool torn down after an earlier fault",
                        leases,
                    )
                    deferred.append(index)
                    continue
                try:
                    metrics_dict, provenance, elapsed = future.result(
                        timeout=self._point_timeout_s
                    )
                except FuturesTimeoutError:
                    broken = True
                    _terminate_pool(pool)
                    self._note_attempt_failure(
                        points[index],
                        hashes[index],
                        attempts_done,
                        index,
                        "PointTimeoutError",
                        f"pool attempt exceeded "
                        f"{self._point_timeout_s:g}s",
                        leases,
                    )
                    deferred.append(index)
                except BrokenProcessPool as error:
                    broken = True
                    self._note_attempt_failure(
                        points[index],
                        hashes[index],
                        attempts_done,
                        index,
                        type(error).__name__,
                        str(error) or "process pool broke",
                        leases,
                    )
                    deferred.append(index)
                except Exception as error:
                    self._note_attempt_failure(
                        points[index],
                        hashes[index],
                        attempts_done,
                        index,
                        type(error).__name__,
                        str(error),
                        leases,
                    )
                    deferred.append(index)
                else:
                    self._checkpoint(
                        points[index], metrics_dict, provenance, elapsed
                    )
                    if leases is not None:
                        leases.release(hashes[index])
                    self._resolve(
                        outcome,
                        index,
                        CampaignPointResult(
                            point=points[index],
                            metrics=NetworkMetrics(**metrics_dict),
                            provenance=provenance,
                            cached=False,
                            elapsed_s=elapsed,
                            attempts=1,
                        ),
                    )
        finally:
            if broken:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
        return sorted(deferred)

    def _note_attempt_failure(
        self,
        point: CampaignPoint,
        content_hash: str,
        attempts_done: Dict[int, int],
        index: int,
        error: str,
        message: str,
        leases: Optional[LeaseManager],
    ) -> None:
        attempts_done[index] = attempts_done.get(index, 0) + 1
        self._record_failure_guarded(
            point,
            [
                {
                    "attempt": attempts_done[index],
                    "error": error,
                    "message": message[:500],
                }
            ],
            status="retrying",
            owner=leases.owner if leases is not None else None,
        )
        if leases is not None:
            leases.release(content_hash)

    def _serial_phase(
        self,
        points: List[CampaignPoint],
        hashes: List[str],
        pending: List[int],
        outcome: Dict[int, CampaignPointResult],
        failures: Dict[int, CampaignPointFailure],
        attempts_done: Dict[int, int],
        leases: Optional[LeaseManager],
    ) -> None:
        """Serial execution + wait loop until every point resolves.

        Each pass claims what it can and executes with retries; points
        held by other runners are re-polled (a finished point loads
        from the store, an expired lease is reclaimed). The loop always
        terminates: every pass either makes progress or sleeps, and a
        dead runner's leases expire within the TTL.
        """
        started = time.monotonic()
        pending = list(pending)
        while pending:
            progressed = False
            waiting: List[int] = []
            for index in pending:
                point, content_hash = points[index], hashes[index]
                if self._store_has(point):
                    cached = self._cached_result(point)
                    if cached is not None:
                        self._resolve(outcome, index, cached)
                        progressed = True
                        continue
                # Degraded storage bypasses leases: claims go through
                # the same failing driver, so waiting on them would
                # never terminate — recomputation is safe (idempotent
                # points) and the only cost of losing coordination.
                if (
                    leases is not None
                    and not self._storage_degraded
                    and not leases.acquire(content_hash)
                ):
                    waiting.append(index)
                    continue
                if leases is not None and not self._storage_degraded:
                    # The claim can race a finishing runner: between
                    # the pending check above and the successful claim
                    # (which may stall on a slow backend), the holder
                    # can save and release. Re-check under the lease
                    # so the point is never computed twice.
                    if self._store_has(point):
                        cached = self._cached_result(point)
                        if cached is not None:
                            leases.release(content_hash)
                            self._resolve(outcome, index, cached)
                            progressed = True
                            continue
                start_attempt = attempts_done.get(index, 0) + 1
                try:
                    (
                        metrics_dict,
                        provenance,
                        elapsed,
                        n_attempts,
                    ) = self._execute_with_retries(
                        point, content_hash, start_attempt, leases
                    )
                    self._checkpoint(
                        point,
                        metrics_dict,
                        provenance,
                        elapsed,
                        attempt=n_attempts,
                    )
                    self._resolve(
                        outcome,
                        index,
                        CampaignPointResult(
                            point=point,
                            metrics=NetworkMetrics(**metrics_dict),
                            provenance=provenance,
                            cached=False,
                            elapsed_s=elapsed,
                            attempts=n_attempts,
                        ),
                    )
                except _PointFailed as failed:
                    failures[index] = CampaignPointFailure(
                        point=point,
                        content_hash=content_hash,
                        attempts=failed.attempts,
                    )
                finally:
                    if leases is not None:
                        leases.release(content_hash)
                progressed = True
            pending = waiting
            if pending and not progressed:
                if (
                    self._wait_timeout_s is not None
                    and time.monotonic() - started > self._wait_timeout_s
                ):
                    held = ", ".join(hashes[i][:12] + "…" for i in pending)
                    raise CampaignExecutionError(
                        f"timed out after {self._wait_timeout_s:g}s "
                        f"waiting for points held by other runners: "
                        f"{held}"
                    )
                time.sleep(self._wait_poll_s)

    def _execute_with_retries(
        self,
        point: CampaignPoint,
        content_hash: str,
        start_attempt: int,
        leases: Optional[LeaseManager],
    ) -> Tuple[Dict, Dict, float, int]:
        """One point through the retry loop; raises :class:`_PointFailed`
        once the attempt budget is spent."""
        attempts_record: List[Dict[str, object]] = []
        attempt = start_attempt
        point_fields = point.to_dict()
        owner = leases.owner if leases is not None else None
        while True:
            started = time.perf_counter()

            def attempt_once():
                if self._fault_plan is not None:
                    self._fault_plan.fire_execute(
                        point_fields, content_hash, attempt
                    )
                return execute_point(point)

            try:
                metrics_dict, provenance = _call_with_timeout(
                    attempt_once, self._point_timeout_s
                )
            except Exception as error:
                elapsed = time.perf_counter() - started
                attempts_record.append(
                    {
                        "attempt": attempt,
                        "error": type(error).__name__,
                        "message": str(error)[:500],
                        "elapsed_s": round(elapsed, 6),
                    }
                )
                # The budget counts *total* attempts on this point in
                # this run, pool attempts included.
                exhausted = attempt >= self._retry.max_attempts
                self._record_failure_guarded(
                    point,
                    attempts_record,
                    status="failed" if exhausted else "retrying",
                    owner=owner,
                )
                if exhausted:
                    raise _PointFailed(attempts_record) from error
                backoff = self._retry.backoff_s(content_hash, attempt)
                attempts_record[-1]["backoff_s"] = round(backoff, 6)
                time.sleep(backoff)
                attempt += 1
                continue
            elapsed = time.perf_counter() - started
            _log_execution(content_hash)
            # ``attempt`` is the global (pool + serial) attempt number
            # that succeeded — reported on the result and used as the
            # write-stage fault-injection attempt.
            return metrics_dict, provenance, elapsed, attempt

    # ------------------------------------------------------------------ #
    # storage degradation
    # ------------------------------------------------------------------ #

    def _degrade(self, error: Exception) -> None:
        """Handle persistent storage-write failure.

        Under ``allow_partial`` the run switches to read-only serving:
        later points still compute and are returned, but nothing more
        is persisted and leases are bypassed (their claims go through
        the same failing driver). Without ``allow_partial`` the fault
        is surfaced — computed points are already checkpointed, so the
        re-run resumes where this one stopped.
        """
        if not self._allow_partial:
            raise PersistentStorageError(
                f"campaign store writes are failing persistently "
                f"({error}); completed points are checkpointed — re-run "
                f"to resume, or pass allow_partial=True to keep "
                f"computing without persistence"
            ) from error
        if not self._storage_degraded:
            log.warning(
                "storage writes failing persistently (%s); degrading "
                "to read-only serving — remaining points compute "
                "without checkpointing, lease coordination bypassed",
                error,
            )
        self._storage_degraded = True

    def _store_has(self, point: CampaignPoint) -> bool:
        if self._store is None:
            return False
        try:
            return self._store.has(point)
        except PersistentStorageError as error:
            self._degrade(error)
            return False

    def _record_failure_guarded(self, point, attempts, status, owner):
        if self._store is None or self._storage_degraded:
            return
        try:
            self._store.record_failure(
                point, attempts, status=status, owner=owner
            )
        except PersistentStorageError as error:
            self._degrade(error)

    def _checkpoint(
        self,
        point: CampaignPoint,
        metrics_dict: Dict,
        provenance: Dict,
        elapsed_s: float,
        attempt: int = 1,
    ) -> None:
        if self._store is None or self._storage_degraded:
            return
        try:
            self._store.save(
                point,
                metrics_dict,
                provenance,
                elapsed_s=elapsed_s,
                attempt=attempt,
            )
        except PersistentStorageError as error:
            self._degrade(error)


def run_campaign_sweep(
    spec: CampaignSpec,
    store=None,
    workers: Optional[int] = None,
) -> List[NetworkMetrics]:
    """Convenience for drivers: run ``spec``, return metrics in order.

    This is the figure drivers' entry point into the campaign layer —
    same return shape as :func:`repro.protocol.network.
    sweep_device_counts`, with completed points served from ``store``
    when one is given (so e.g. Fig. 18 reuses Fig. 17's points).
    """
    return CampaignRunner(store=store, workers=workers).run(spec).metrics


__all__ = [
    "EXEC_LOG_ENV",
    "CampaignPointFailure",
    "CampaignPointResult",
    "CampaignRun",
    "CampaignRunner",
    "RetryPolicy",
    "build_deployment",
    "execute_point",
    "run_campaign_sweep",
]
