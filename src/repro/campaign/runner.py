"""Sharded, resumable campaign execution.

The runner walks a :class:`~repro.campaign.spec.CampaignSpec`, skips
every point whose content hash is already present in the store, and
fans the remaining points out over the same process-pool plumbing the
network sweeps use (:func:`repro.protocol.network.resolve_pool_workers`
— serial on 1-CPU hosts, no redundant pool). Each point is
checkpointed to the store the moment it completes, so a killed run
loses at most the points in flight; re-running the same spec loads the
completed points bit-for-bit and computes only the remainder (pinned by
``tests/test_campaign.py``).

Every stored point carries the provenance the engines already stamp on
their results — spectral ``backend``, ``noise_mode``/``noise_version``
— plus the host backend-calibration schema, so a store can be audited
long after the run: which physics produced each number is in the
record, not in the operator's memory.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.channel.deployment import Deployment, paper_deployment
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError
from repro.protocol.network import (
    NetworkMetrics,
    NetworkSimulator,
    resolve_pool_workers,
)


def build_deployment(descriptor: Dict[str, object]) -> Deployment:
    """Rebuild the full deployment a point descriptor names."""
    kind = descriptor.get("kind")
    if kind == "paper":
        return paper_deployment(
            n_devices=int(descriptor["n_devices"]),
            rng=int(descriptor["seed"]),
        )
    raise ConfigurationError(f"unknown deployment kind {kind!r}")


def _calibration_schema() -> str:
    """The backend-calibration schema in force (stored as provenance)."""
    from repro.phy import backend_plan

    return backend_plan._SCHEMA


def execute_point(point: CampaignPoint) -> Tuple[Dict, Dict]:
    """Run one campaign point; returns ``(metrics_dict, provenance)``.

    Module-level (and taking only the picklable point) so process pools
    can ship it. The construction mirrors ``_run_sweep_point`` exactly:
    same deployment rebuild, same subset, same seeded generator — the
    campaign tests pin bit-identical metrics against the direct
    ``sweep_device_counts`` path.
    """
    deployment = build_deployment(dict(point.deployment))
    config = NetScatterConfig(**dict(point.config))
    dtype = np.complex64 if point.readout_dtype == "complex64" else None
    simulator = NetworkSimulator(
        deployment.subset(point.n_devices),
        config=config,
        query_bits=point.query_bits,
        rng=np.random.default_rng(point.seed),
        engine=point.engine,
        readout_dtype=dtype,
        noise_mode=point.noise_mode,
    )
    metrics = simulator.run_rounds(point.n_rounds, fading=point.fading)
    provenance = {
        "backend": metrics.backend,
        "noise_mode": metrics.noise_mode,
        "noise_version": metrics.noise_version,
        "calibration_schema": _calibration_schema(),
    }
    return asdict(metrics), provenance


def _execute_point_timed(
    point: CampaignPoint,
) -> Tuple[Dict, Dict, float]:
    """Pool wrapper: time the execution inside the worker process."""
    started = time.perf_counter()
    metrics_dict, provenance = execute_point(point)
    return metrics_dict, provenance, time.perf_counter() - started


@dataclass
class CampaignPointResult:
    """One executed (or cache-served) point of a campaign run."""

    point: CampaignPoint
    metrics: NetworkMetrics
    provenance: Dict[str, object]
    cached: bool
    elapsed_s: float


@dataclass
class CampaignRun:
    """Outcome of :meth:`CampaignRunner.run`, in spec point order."""

    spec: CampaignSpec
    results: List[CampaignPointResult]

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_computed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def metrics(self) -> List[NetworkMetrics]:
        return [r.metrics for r in self.results]


class CampaignRunner:
    """Run campaign specs against an optional persistent store.

    Parameters
    ----------
    store:
        A :class:`CampaignStore`, a path to create one at, or ``None``
        for an ephemeral run (every point computed, nothing persisted).
    workers:
        Process-pool request for the *pending* points, resolved through
        :func:`resolve_pool_workers` (``None``/1-CPU hosts → serial).
    """

    def __init__(
        self,
        store: Optional[CampaignStore] = None,
        workers: Optional[int] = None,
    ) -> None:
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        self._store = store
        self._workers = workers

    @property
    def store(self) -> Optional[CampaignStore]:
        return self._store

    def run(self, spec: CampaignSpec) -> CampaignRun:
        """Execute ``spec``: cached points load, pending points run.

        Pending points are executed in shards over the process pool and
        checkpointed to the store as each one completes (completion
        order), then the full result list is assembled in spec order —
        so the returned metrics are independent of pool scheduling and
        a killed run resumes from whatever finished.
        """
        points = list(spec.points())
        pending: List[Tuple[int, CampaignPoint]] = []
        cached_payloads: Dict[int, Dict] = {}
        for index, point in enumerate(points):
            if self._store is not None and self._store.has(point):
                cached_payloads[index] = self._store.load(point)
            else:
                pending.append((index, point))

        computed: Dict[int, Tuple[Dict, Dict, float]] = {}
        pool_workers = resolve_pool_workers(self._workers)
        if pool_workers and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                futures = {
                    pool.submit(_execute_point_timed, point): (index, point)
                    for index, point in pending
                }
                for future in as_completed(futures):
                    index, point = futures[future]
                    metrics_dict, provenance, elapsed = future.result()
                    computed[index] = (metrics_dict, provenance, elapsed)
                    self._checkpoint(
                        point, metrics_dict, provenance, elapsed
                    )
        else:
            for index, point in pending:
                started = time.perf_counter()
                metrics_dict, provenance = execute_point(point)
                elapsed = time.perf_counter() - started
                computed[index] = (metrics_dict, provenance, elapsed)
                self._checkpoint(point, metrics_dict, provenance, elapsed)

        results: List[CampaignPointResult] = []
        for index, point in enumerate(points):
            if index in cached_payloads:
                payload = cached_payloads[index]
                results.append(
                    CampaignPointResult(
                        point=point,
                        metrics=NetworkMetrics(**payload["metrics"]),
                        provenance=dict(payload["provenance"]),
                        cached=True,
                        elapsed_s=0.0,
                    )
                )
            else:
                metrics_dict, provenance, elapsed = computed[index]
                results.append(
                    CampaignPointResult(
                        point=point,
                        metrics=NetworkMetrics(**metrics_dict),
                        provenance=provenance,
                        cached=False,
                        elapsed_s=elapsed,
                    )
                )
        return CampaignRun(spec=spec, results=results)

    def _checkpoint(
        self,
        point: CampaignPoint,
        metrics_dict: Dict,
        provenance: Dict,
        elapsed_s: float,
    ) -> None:
        if self._store is not None:
            self._store.save(
                point, metrics_dict, provenance, elapsed_s=elapsed_s
            )


def run_campaign_sweep(
    spec: CampaignSpec,
    store=None,
    workers: Optional[int] = None,
) -> List[NetworkMetrics]:
    """Convenience for drivers: run ``spec``, return metrics in order.

    This is the figure drivers' entry point into the campaign layer —
    same return shape as :func:`repro.protocol.network.
    sweep_device_counts`, with completed points served from ``store``
    when one is given (so e.g. Fig. 18 reuses Fig. 17's points).
    """
    return CampaignRunner(store=store, workers=workers).run(spec).metrics


__all__ = [
    "CampaignPointResult",
    "CampaignRun",
    "CampaignRunner",
    "build_deployment",
    "execute_point",
    "run_campaign_sweep",
]
