"""Entry point: ``python -m repro.campaign``."""

import sys

from repro.campaign.cli import entrypoint

if __name__ == "__main__":
    sys.exit(entrypoint())
