"""Point leases: atomic claim/heartbeat/expiry over a shared store.

This is the worker claim protocol the ROADMAP's multi-host campaign
direction calls for: N concurrent :class:`~repro.campaign.runner.
CampaignRunner`\\ s pointed at one :class:`~repro.campaign.store.
CampaignStore` partition the pending points without duplicating work,
and a killed worker's points become reclaimable once its lease expires.
Because points are content-addressed and execution is deterministic,
*correctness never depends on the leases* — a lost race at worst
recomputes a point whose chunk write is idempotent (bit-identical
content under the same hash). Leases only prevent wasted duplicate
computation and give ``status`` a live "running" view.

Protocol (one key per claimed point, ``<hash>.lease``), expressed
entirely in :class:`~repro.campaign.storage.StorageDriver` primitives
so it works unchanged over posix, memory, or a future remote backend:

* **Claim** — ``put_exclusive`` (atomic create-if-absent): exactly one
  worker wins a vacant point.
* **Heartbeat** — the owner periodically rewrites the lease with
  ``replace`` pushing the deadline forward; deadlines only ever move
  forward (monotone renewal), never backward.
* **Expiry/steal** — a lease whose deadline has passed (or that is
  unreadable) is dead: a claimant ``replace``\\ s it atomically and
  then reads the key back; whoever's owner id survived the replace
  owns the point. Replace-then-read-back means two simultaneous
  stealers resolve to exactly one winner (the driver contract's
  read-your-writes guarantee makes the read-back decisive).
* **Release** — the owner ``delete``\\ s the key after checkpointing
  the chunk (or on failure, so other workers may try).

Storage faults never corrupt the protocol: a claim that hits a
transient driver error is simply *not acquired* (the point is skipped
this pass and revisited), and a torn lease payload reads as expired.
The heartbeat thread survives transient faults too — it logs once and
retries every tick, giving up only after a full TTL of continuous
failure (at which point the lease is legitimately stealable anyway).

Deadlines are wall-clock (:func:`time.time`): lease payloads must be
comparable *across processes and hosts*, where monotonic clocks have
no common epoch. The TTL should comfortably exceed the heartbeat
interval (the runner heartbeats at ``ttl/3``), so ordinary clock skew
is absorbed by the margin.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.storage import PosixDriver, StorageDriver
from repro.errors import StorageError, StorageMissingError

log = logging.getLogger("repro.campaign.leases")

LEASE_SCHEMA = "repro-campaign-lease-v1"

#: Default lease time-to-live. Long enough that a healthy worker's
#: heartbeat (ttl/3) never lets its own lease lapse; short enough that
#: a killed worker's points come back quickly.
DEFAULT_TTL_S = 30.0


def default_owner_id() -> str:
    """A process-unique owner id: host, pid, and a random tail."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _deadline(payload: Dict[str, object]) -> float:
    """A lease payload's deadline as a float; 0.0 (expired) when the
    field is missing or not a number — a mangled deadline must read as
    stealable, never crash the claim path."""
    value = payload.get("deadline", 0.0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0.0
    return float(value)


def parse_lease(data: bytes) -> Optional[Dict[str, object]]:
    """Decode one lease payload, or ``None`` when torn/foreign.

    An undecodable payload is treated as expired by callers — the
    claim protocol then replaces it atomically.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != LEASE_SCHEMA
    ):
        return None
    return payload


def read_lease(path) -> Optional[Dict[str, object]]:
    """The lease payload at filesystem ``path``, or ``None`` if
    missing/unreadable (kept for posix tooling; the manager itself
    reads through its driver)."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    return parse_lease(data)


def scan_leases(directory) -> List[Dict[str, object]]:
    """All readable leases under a posix ``directory`` (may include
    expired)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    leases = []
    for path in sorted(directory.glob("*.lease")):
        payload = read_lease(path)
        if payload is not None:
            leases.append(payload)
    return leases


def scan_lease_backend(driver: StorageDriver) -> List[Dict[str, object]]:
    """All readable leases in a lease-scoped driver (may include
    expired). Torn or concurrently-deleted entries are skipped."""
    leases = []
    try:
        keys = driver.list()
    except StorageError:
        return []
    for key in keys:
        if not key.endswith(".lease"):
            continue
        try:
            payload = parse_lease(driver.get(key))
        except StorageError:
            continue
        if payload is not None:
            leases.append(payload)
    return leases


class LeaseManager:
    """Claim, renew, and release point leases in one backend.

    Parameters
    ----------
    backend:
        Either a lease-scoped :class:`~repro.campaign.storage.
        StorageDriver` (the store hands out its ``lease_backend``), or
        a filesystem directory (``<store>/leases``) which is wrapped
        in a :class:`~repro.campaign.storage.PosixDriver` — the
        pre-driver call sites keep working.
    owner:
        Stable id stamped into every lease this manager writes.
    ttl_s:
        Seconds a lease stays valid past its last (re)write.
    """

    def __init__(
        self,
        backend: Union[StorageDriver, str, "os.PathLike[str]"],
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        if isinstance(backend, StorageDriver):
            self._driver = backend
        else:
            self._driver = PosixDriver(backend)
        self._owner = owner or default_owner_id()
        self._ttl_s = float(ttl_s)
        self._held: Dict[str, int] = {}  # hash -> renewal count
        self._lock = threading.Lock()

    @property
    def owner(self) -> str:
        return self._owner

    @property
    def ttl_s(self) -> float:
        return self._ttl_s

    @property
    def backend(self) -> StorageDriver:
        return self._driver

    @property
    def held(self) -> List[str]:
        with self._lock:
            return sorted(self._held)

    def _key(self, content_hash: str) -> str:
        return f"{content_hash}.lease"

    def _payload(self, content_hash: str, renewals: int) -> bytes:
        now = time.time()
        text = json.dumps(
            {
                "schema": LEASE_SCHEMA,
                "content_hash": content_hash,
                "owner": self._owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": now,
                "deadline": now + self._ttl_s,
                "renewals": renewals,
            },
            sort_keys=True,
        )
        return (text + "\n").encode("utf-8")

    def _read(self, content_hash: str) -> Optional[Dict[str, object]]:
        """Current lease payload, or ``None`` when vacant/torn/unreadable."""
        try:
            data = self._driver.get(self._key(content_hash))
        except StorageMissingError:
            return None
        except StorageError:
            return None
        return parse_lease(data)

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #

    def acquire(self, content_hash: str) -> bool:
        """Try to claim ``content_hash``; True when this owner now holds it.

        Vacant points are claimed with an exclusive create. A live
        lease by another owner loses the claim. An expired or
        unreadable lease is stolen with replace-then-read-back: after
        the atomic replace the key is read back, and only the owner
        whose payload survived wins — simultaneous stealers resolve to
        one. A storage fault mid-claim simply loses the claim (the
        point is revisited on a later pass); it never corrupts state.
        """
        key = self._key(content_hash)
        try:
            if self._driver.put_exclusive(
                key, self._payload(content_hash, 0)
            ):
                with self._lock:
                    self._held[content_hash] = 0
                return True

            current = self._read(content_hash)
            if (
                current is not None
                and _deadline(current) > time.time()
                and current.get("owner") != self._owner
            ):
                return False  # live lease held elsewhere
            # Expired, torn, or our own stale entry: steal and verify.
            self._driver.replace(key, self._payload(content_hash, 0))
            winner = self._read(content_hash)
        except StorageError as error:
            log.debug(
                "lease claim on %s lost to storage fault: %s",
                content_hash,
                error,
            )
            return False
        if winner is not None and winner.get("owner") == self._owner:
            with self._lock:
                self._held[content_hash] = 0
            return True
        return False

    def renew(self, content_hash: str) -> bool:
        """Heartbeat one held lease; False when it was lost (stolen).

        Storage faults propagate to the caller (the heartbeat thread
        absorbs and retries them) — a fault is *not* evidence the
        lease was lost.
        """
        current = self._read(content_hash)
        if current is None or current.get("owner") != self._owner:
            with self._lock:
                self._held.pop(content_hash, None)
            return False
        with self._lock:
            renewals = self._held.get(content_hash, 0) + 1
            self._held[content_hash] = renewals
        self._driver.replace(
            self._key(content_hash), self._payload(content_hash, renewals)
        )
        return True

    def renew_held(self) -> None:
        """Heartbeat every lease this manager still holds.

        Every held lease is attempted even when some fail; the last
        storage fault (if any) is re-raised so the heartbeat thread
        can track continuous-failure duration.
        """
        last_error: Optional[StorageError] = None
        for content_hash in self.held:
            try:
                self.renew(content_hash)
            except StorageError as error:
                last_error = error
        if last_error is not None:
            raise last_error

    def release(self, content_hash: str) -> None:
        """Drop a held lease (after checkpoint or failure record)."""
        with self._lock:
            self._held.pop(content_hash, None)
        current = self._read(content_hash)
        if current is not None and current.get("owner") == self._owner:
            try:
                self._driver.delete(self._key(content_hash))
            except StorageError:
                pass  # expires on its own; never block completion on it

    def release_all(self) -> None:
        for content_hash in self.held:
            self.release(content_hash)

    def holder(self, content_hash: str) -> Optional[Dict[str, object]]:
        """The live lease on a point, or ``None`` if vacant/expired."""
        current = self._read(content_hash)
        if current is None:
            return None
        if _deadline(current) <= time.time():
            return None
        return current


class HeartbeatThread:
    """Daemon thread renewing a :class:`LeaseManager`'s held leases.

    Runs at ``ttl/3`` so a healthy worker never lets its own leases
    lapse, even while a long point computes; stops promptly when asked.

    Transient storage faults do not kill the thread: the first failure
    is logged once, and renewal is retried on every subsequent tick.
    Only after a full lease TTL of *continuous* failure does the
    thread give up — by then the leases have expired and are fair game
    for other workers, so continuing would only spam the backend.
    """

    def __init__(self, leases: LeaseManager) -> None:
        self._leases = leases
        self._stop = threading.Event()
        self._gave_up = False
        self._thread = threading.Thread(
            target=self._run, name="campaign-lease-heartbeat", daemon=True
        )

    @property
    def gave_up(self) -> bool:
        """True when the thread exited after TTL-long storage failure."""
        return self._gave_up

    def _run(self) -> None:
        interval = self._leases.ttl_s / 3.0
        failing_since: Optional[float] = None
        while not self._stop.wait(interval):
            try:
                self._leases.renew_held()
            except StorageError as error:
                now = time.monotonic()
                if failing_since is None:
                    failing_since = now
                    log.warning(
                        "lease heartbeat hit a storage fault (%s); "
                        "will keep retrying every %.1fs tick",
                        error,
                        interval,
                    )
                if now - failing_since >= self._leases.ttl_s:
                    log.error(
                        "lease heartbeat failing continuously for a "
                        "full ttl (%.1fs); giving up — held leases "
                        "have expired and may be stolen",
                        self._leases.ttl_s,
                    )
                    self._gave_up = True
                    return
            else:
                failing_since = None

    def __enter__(self) -> "HeartbeatThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._leases.ttl_s)


__all__ = [
    "DEFAULT_TTL_S",
    "LEASE_SCHEMA",
    "HeartbeatThread",
    "LeaseManager",
    "default_owner_id",
    "parse_lease",
    "read_lease",
    "scan_lease_backend",
    "scan_leases",
]
