"""Point leases: atomic claim/heartbeat/expiry over a shared store.

This is the worker claim protocol the ROADMAP's multi-host campaign
direction calls for: N concurrent :class:`~repro.campaign.runner.
CampaignRunner`\\ s pointed at one :class:`~repro.campaign.store.
CampaignStore` partition the pending points without duplicating work,
and a killed worker's points become reclaimable once its lease expires.
Because points are content-addressed and execution is deterministic,
*correctness never depends on the leases* — a lost race at worst
recomputes a point whose chunk write is idempotent (bit-identical
content under the same hash). Leases only prevent wasted duplicate
computation and give ``status`` a live "running" view.

Protocol (one file per claimed point, ``leases/<hash>.lease``):

* **Claim** — create the lease file with ``O_CREAT | O_EXCL`` (atomic
  on POSIX and NT): exactly one worker wins a vacant point.
* **Heartbeat** — the owner periodically rewrites the lease (tmp +
  ``os.replace``) pushing the deadline forward; deadlines only ever
  move forward (monotone renewal), never backward.
* **Expiry/steal** — a lease whose deadline has passed (or that is
  unreadable) is dead: a claimant *replaces* it atomically and then
  reads the file back; whoever's owner id survived the replace owns
  the point. Replace-then-verify means two simultaneous stealers
  resolve to exactly one winner.
* **Release** — the owner unlinks the file after checkpointing the
  chunk (or on failure, so other workers may try).

Deadlines are wall-clock (:func:`time.time`): lease files must be
comparable *across processes and hosts*, where monotonic clocks have
no common epoch. The TTL should comfortably exceed the heartbeat
interval (the runner heartbeats at ``ttl/3``), so ordinary clock skew
is absorbed by the margin.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional

LEASE_SCHEMA = "repro-campaign-lease-v1"

#: Default lease time-to-live. Long enough that a healthy worker's
#: heartbeat (ttl/3) never lets its own lease lapse; short enough that
#: a killed worker's points come back quickly.
DEFAULT_TTL_S = 30.0


def default_owner_id() -> str:
    """A process-unique owner id: host, pid, and a random tail."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def read_lease(path) -> Optional[Dict[str, object]]:
    """The lease payload at ``path``, or ``None`` if missing/unreadable.

    An unreadable (torn) lease is treated as expired by callers — the
    claim protocol then replaces it atomically.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != LEASE_SCHEMA:
        return None
    return data


def scan_leases(directory) -> List[Dict[str, object]]:
    """All readable leases under ``directory`` (may include expired)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    leases = []
    for path in sorted(directory.glob("*.lease")):
        payload = read_lease(path)
        if payload is not None:
            leases.append(payload)
    return leases


class LeaseManager:
    """Claim, renew, and release point leases in one directory.

    Parameters
    ----------
    directory:
        The lease directory (``<store>/leases``), created on demand.
    owner:
        Stable id stamped into every lease this manager writes.
    ttl_s:
        Seconds a lease stays valid past its last (re)write.
    """

    def __init__(
        self,
        directory,
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        self._dir = Path(directory)
        self._owner = owner or default_owner_id()
        self._ttl_s = float(ttl_s)
        self._held: Dict[str, int] = {}  # hash -> renewal count
        self._lock = threading.Lock()

    @property
    def owner(self) -> str:
        return self._owner

    @property
    def ttl_s(self) -> float:
        return self._ttl_s

    @property
    def held(self) -> List[str]:
        with self._lock:
            return sorted(self._held)

    def _path(self, content_hash: str) -> Path:
        return self._dir / f"{content_hash}.lease"

    def _payload(self, content_hash: str, renewals: int) -> str:
        now = time.time()
        return json.dumps(
            {
                "schema": LEASE_SCHEMA,
                "content_hash": content_hash,
                "owner": self._owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": now,
                "deadline": now + self._ttl_s,
                "renewals": renewals,
            },
            sort_keys=True,
        )

    def _replace(self, content_hash: str, renewals: int) -> None:
        """Atomically (re)write the lease file with a fresh deadline."""
        path = self._path(content_hash)
        tmp = path.with_name(
            f"{path.name}.{self._owner}.{uuid.uuid4().hex[:6]}.tmp"
        )
        tmp.write_text(self._payload(content_hash, renewals) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #

    def acquire(self, content_hash: str) -> bool:
        """Try to claim ``content_hash``; True when this owner now holds it.

        Vacant points are claimed with an exclusive create. A live
        lease by another owner loses the claim. An expired or
        unreadable lease is stolen with replace-then-verify: after the
        atomic replace the file is read back, and only the owner whose
        payload survived wins — simultaneous stealers resolve to one.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(content_hash)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(self._payload(content_hash, 0) + "\n")
            with self._lock:
                self._held[content_hash] = 0
            return True

        current = read_lease(path)
        if (
            current is not None
            and float(current.get("deadline", 0.0)) > time.time()
            and current.get("owner") != self._owner
        ):
            return False  # live lease held elsewhere
        # Expired, torn, or our own stale file: steal and verify.
        self._replace(content_hash, 0)
        winner = read_lease(path)
        if winner is not None and winner.get("owner") == self._owner:
            with self._lock:
                self._held[content_hash] = 0
            return True
        return False

    def renew(self, content_hash: str) -> bool:
        """Heartbeat one held lease; False when it was lost (stolen)."""
        current = read_lease(self._path(content_hash))
        if current is None or current.get("owner") != self._owner:
            with self._lock:
                self._held.pop(content_hash, None)
            return False
        with self._lock:
            renewals = self._held.get(content_hash, 0) + 1
            self._held[content_hash] = renewals
        self._replace(content_hash, renewals)
        return True

    def renew_held(self) -> None:
        """Heartbeat every lease this manager still holds."""
        for content_hash in self.held:
            self.renew(content_hash)

    def release(self, content_hash: str) -> None:
        """Drop a held lease (after checkpoint or failure record)."""
        with self._lock:
            self._held.pop(content_hash, None)
        path = self._path(content_hash)
        current = read_lease(path)
        if current is not None and current.get("owner") == self._owner:
            try:
                path.unlink()
            except OSError:
                pass

    def release_all(self) -> None:
        for content_hash in self.held:
            self.release(content_hash)

    def holder(self, content_hash: str) -> Optional[Dict[str, object]]:
        """The live lease on a point, or ``None`` if vacant/expired."""
        current = read_lease(self._path(content_hash))
        if current is None:
            return None
        if float(current.get("deadline", 0.0)) <= time.time():
            return None
        return current


class HeartbeatThread:
    """Daemon thread renewing a :class:`LeaseManager`'s held leases.

    Runs at ``ttl/3`` so a healthy worker never lets its own leases
    lapse, even while a long point computes; stops promptly when asked.
    """

    def __init__(self, leases: LeaseManager) -> None:
        self._leases = leases
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="campaign-lease-heartbeat", daemon=True
        )

    def _run(self) -> None:
        interval = self._leases.ttl_s / 3.0
        while not self._stop.wait(interval):
            self._leases.renew_held()

    def __enter__(self) -> "HeartbeatThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._leases.ttl_s)


__all__ = [
    "DEFAULT_TTL_S",
    "LEASE_SCHEMA",
    "HeartbeatThread",
    "LeaseManager",
    "default_owner_id",
    "read_lease",
    "scan_leases",
]
